"""Cross-backend equivalence: same seed => identical logical metrics.

The tentpole guarantee of the unified execution kernel — for every
execution path (OCB transactions, the extended generic operation set,
multi-user interleaving), the *logical* workload (objects visited,
transaction/operation mix, objects touched) is a function of the seed
and the generated graph alone, never of the storage engine.  These
tests run each path on every registered backend and compare signatures.
"""

from __future__ import annotations

import pytest

from repro.backends import available_backends, create_backend
from repro.core.generation import generate_database
from repro.core.generic_ops import GenericOperationsRunner
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.core.workload import WorkloadRunner
from repro.multiuser.runner import MultiClientRunner
from repro.store.storage import StoreConfig

CONFIG = StoreConfig(page_size=512, buffer_pages=16)


def backend_names_under_test():
    return [info.name for info in available_backends()]


def _loaded(name, database):
    backend = create_backend(name, CONFIG)
    records = database.to_records()
    backend.bulk_load(records.values(), order=sorted(records))
    backend.reset_stats()
    return backend


@pytest.fixture(scope="module")
def equivalence_database():
    params = DatabaseParameters(num_classes=6, max_nref=4, base_size=25,
                                num_objects=220, num_ref_types=4, seed=1998)
    database, _ = generate_database(params, validate=True)
    return database


class TestTransactionEquivalence:
    def _signature(self, name, database, params):
        backend = _loaded(name, database)
        report = WorkloadRunner(database, backend, params).run()
        backend.close()
        signature = []
        for phase in (report.cold, report.warm):
            for kind, stats in sorted(phase.per_kind.items()):
                signature.append((phase.name, kind.value, stats.count,
                                  stats.visits, stats.distinct_objects,
                                  stats.truncated))
        return tuple(signature)

    def test_per_kind_metrics_identical(self, equivalence_database):
        params = WorkloadParameters(set_depth=2, simple_depth=2,
                                    hierarchy_depth=3, stochastic_depth=8,
                                    cold_n=4, hot_n=16, max_visits=300)
        signatures = {name: self._signature(name, equivalence_database,
                                            params)
                      for name in backend_names_under_test()}
        assert len(set(signatures.values())) == 1, signatures

    def test_reversed_traversals_identical(self, equivalence_database):
        params = WorkloadParameters(set_depth=2, simple_depth=2,
                                    hierarchy_depth=2, stochastic_depth=6,
                                    cold_n=2, hot_n=12, max_visits=300,
                                    reverse_probability=0.5)
        signatures = {name: self._signature(name, equivalence_database,
                                            params)
                      for name in backend_names_under_test()}
        assert len(set(signatures.values())) == 1, signatures

    def test_backend_name_accepted_directly(self, equivalence_database):
        params = WorkloadParameters(set_depth=2, simple_depth=2,
                                    hierarchy_depth=2, stochastic_depth=5,
                                    cold_n=1, hot_n=6, max_visits=200)
        runner = WorkloadRunner(equivalence_database, "memory", params)
        report = runner.run()
        assert report.warm.totals.count == 6
        runner.session.close()

    def test_sqlite_batched_equals_unbatched(self, equivalence_database):
        params = WorkloadParameters(set_depth=3, simple_depth=2,
                                    hierarchy_depth=2, stochastic_depth=6,
                                    cold_n=2, hot_n=10, max_visits=400,
                                    p_set=0.7, p_simple=0.1,
                                    p_hierarchy=0.1, p_stochastic=0.1)
        signatures = []
        for batch in (True, False):
            backend = _loaded("sqlite", equivalence_database)
            report = WorkloadRunner(equivalence_database, backend, params,
                                    batch=batch).run()
            totals = report.warm.totals
            signatures.append((totals.count, totals.visits,
                               totals.distinct_objects))
            backend.close()
        assert signatures[0] == signatures[1]


class TestGenericOperationEquivalence:
    def _signature(self, name):
        # Mutating workload: every backend gets its own generated graph.
        params = DatabaseParameters(num_classes=5, max_nref=3, base_size=25,
                                    num_objects=120, seed=77)
        database, _ = generate_database(params)
        runner = GenericOperationsRunner(database, name)
        results = runner.run_mix(18)
        database.validate()
        assert set(runner.store.iter_oids()) == set(database.objects)
        signature = tuple((r.operation.value, r.objects_touched)
                          for r in results)
        close = getattr(runner.store, "close", None)
        if close is not None:
            close()
        return signature

    def test_operation_stream_identical(self):
        signatures = {name: self._signature(name)
                      for name in backend_names_under_test()}
        assert len(set(signatures.values())) == 1, signatures

    def test_sharded_final_state_matches_single_file(self):
        """Same seed on one file and on four shards => identical store.

        The partitioned engine must be invisible above the Backend
        protocol: after the same mutating stream, every surviving object
        — refs, back refs, filler — reads back identical from both.
        """
        stores = {}
        for name in ("sqlite", "sharded-sqlite"):
            params = DatabaseParameters(num_classes=5, max_nref=3,
                                        base_size=25, num_objects=120,
                                        seed=77)
            database, _ = generate_database(params)
            runner = GenericOperationsRunner(database, name)
            runner.run_mix(24)
            stores[name] = runner.store
        single, sharded = stores["sqlite"], stores["sharded-sqlite"]
        assert set(single.iter_oids()) == set(sharded.iter_oids())
        for oid in sorted(single.iter_oids()):
            assert single.read_object(oid) == sharded.read_object(oid)
        single.close()
        sharded.close()

    def test_store_database_lockstep_on_sqlite(self):
        params = DatabaseParameters(num_classes=5, max_nref=3, base_size=25,
                                    num_objects=100, seed=13)
        database, _ = generate_database(params)
        runner = GenericOperationsRunner(database, "sqlite")
        for _ in range(6):
            runner.insert()
            runner.update()
        runner.delete()
        database.validate()
        for oid, obj in database.objects.items():
            record = runner.store.read_object(oid)
            assert record.refs == tuple(obj.oref)
            assert sorted(record.back_refs) == \
                sorted(tuple(p) for p in obj.back_refs)
        runner.store.close()


class TestMultiUserEquivalence:
    def _signature(self, name, database):
        params = WorkloadParameters(clients=3, cold_n=2, hot_n=6,
                                    set_depth=2, simple_depth=2,
                                    hierarchy_depth=2, stochastic_depth=5,
                                    max_visits=150)
        runner = MultiClientRunner(database, name, params)
        report = runner.run()
        signature = tuple((c.warm.totals.count, c.warm.totals.visits,
                           c.warm.totals.distinct_objects)
                          for c in report.clients)
        close = getattr(runner.store, "close", None)
        if close is not None:
            close()
        return signature, report

    def test_per_client_metrics_identical(self, equivalence_database):
        signatures = {}
        for name in backend_names_under_test():
            signature, _report = self._signature(name, equivalence_database)
            signatures[name] = signature
        assert len(set(signatures.values())) == 1, signatures

    def test_merged_percentiles_on_every_backend(self, equivalence_database):
        for name in backend_names_under_test():
            _signature, report = self._signature(name, equivalence_database)
            wall = report.warm_wall_percentiles
            assert wall.count == report.merged_warm.transaction_count
            assert 0.0 < wall.p50 <= wall.p95 <= wall.p99
            assert report.backend_name == name

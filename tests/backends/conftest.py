"""Backend fixtures: every test parametrized over all built-in engines.

The ``backend`` fixture yields a fresh, empty instance of each engine in
turn, so one test body exercises the whole matrix; ``loaded_backend``
pre-loads the session's small generated database in oid order.
"""

from __future__ import annotations

from typing import Callable, Dict

import pytest

from repro.backends import (
    Backend,
    MemoryBackend,
    ShardedSQLiteBackend,
    SimulatedBackend,
    SQLiteBackend,
)
from repro.store.storage import StoreConfig

BACKEND_FACTORIES: Dict[str, Callable[[], Backend]] = {
    "simulated": lambda: SimulatedBackend(
        store_config=StoreConfig(page_size=512, buffer_pages=16)),
    "memory": MemoryBackend,
    "sqlite": lambda: SQLiteBackend(page_size=512, cache_pages=16),
    "sharded-sqlite": lambda: ShardedSQLiteBackend(
        shards=3, page_size=512, cache_pages=16),
}


@pytest.fixture(params=sorted(BACKEND_FACTORIES))
def backend(request) -> Backend:
    """A fresh, empty instance of each registered engine."""
    instance = BACKEND_FACTORIES[request.param]()
    yield instance
    instance.close()


@pytest.fixture
def loaded_backend(backend, small_database) -> Backend:
    """Each engine pre-loaded with the shared small database."""
    records = small_database.to_records()
    backend.bulk_load(records.values(), order=sorted(records))
    backend.reset_stats()
    return backend

"""Lifecycle tests of the bounded connection pool and its gauges.

The pool is the concurrency substrate of the I/O layer — every engine
that overlaps reads leans on exactly three guarantees proved here:
exhaustion *blocks* (and the blocked time is counted, never dropped),
``close()`` drains in-flight work before returning, and a crashed
acquirer can never leak a slot (the context manager returns the
connection on exception, the factory failure path releases the
reserved slot).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.backends.pool import ConnectionPool, DeferredHandle, \
    InflightGauge
from repro.errors import BackendError


class FakeConnection:
    def __init__(self, number):
        self.number = number
        self.closed = False

    def close(self):
        self.closed = True


class Factory:
    def __init__(self, fail_first=0):
        self.opened = []
        self._fail_remaining = fail_first

    def __call__(self):
        if self._fail_remaining > 0:
            self._fail_remaining -= 1
            raise OSError("database file is broken")
        conn = FakeConnection(len(self.opened))
        self.opened.append(conn)
        return conn


def test_connections_open_lazily_and_are_reused():
    factory = Factory()
    pool = ConnectionPool(factory, size=3)
    assert factory.opened == []  # nothing opened before first demand
    with pool.acquire() as first:
        pass
    with pool.acquire() as second:
        pass
    assert second is first  # idle connection reused, not reopened
    assert len(factory.opened) == 1
    assert pool.stats()["acquires"] == 2
    assert pool.stats()["connections_opened"] == 1


def test_invalid_size_is_refused():
    with pytest.raises(BackendError):
        ConnectionPool(Factory(), size=0)


def test_exhaustion_blocks_counts_the_wait_and_recovers():
    pool = ConnectionPool(Factory(), size=1)
    release = threading.Event()
    holder_in = threading.Event()
    got = []

    def holder():
        with pool.acquire():
            holder_in.set()
            release.wait(timeout=5.0)

    def waiter():
        with pool.acquire() as conn:
            got.append(conn)

    first = threading.Thread(target=holder)
    first.start()
    assert holder_in.wait(timeout=5.0)
    second = threading.Thread(target=waiter)
    second.start()
    time.sleep(0.05)  # let the waiter genuinely block on the condition
    assert got == []  # exhausted pool blocks instead of overcommitting
    release.set()
    first.join(timeout=5.0)
    second.join(timeout=5.0)
    assert len(got) == 1
    stats = pool.stats()
    assert stats["connections_opened"] == 1  # never a second connection
    assert stats["pool_wait_seconds"] > 0.0  # the blocked time is counted
    pool.reset_stats()
    assert pool.stats()["pool_wait_seconds"] == 0.0
    assert pool.stats()["acquires"] == 0


def test_close_drains_inflight_work_before_returning():
    factory = Factory()
    pool = ConnectionPool(factory, size=2)
    entered = threading.Event()
    release = threading.Event()
    order = []

    def worker():
        with pool.acquire():
            entered.set()
            release.wait(timeout=5.0)
            order.append("work-done")

    thread = threading.Thread(target=worker)
    thread.start()
    assert entered.wait(timeout=5.0)

    def closer():
        pool.close()
        order.append("close-returned")

    closing = threading.Thread(target=closer)
    closing.start()
    time.sleep(0.05)
    assert order == []  # close() is still waiting on the checked-out conn
    release.set()
    thread.join(timeout=5.0)
    closing.join(timeout=5.0)
    assert order == ["work-done", "close-returned"]
    assert all(conn.closed for conn in factory.opened)
    with pytest.raises(BackendError):
        with pool.acquire():
            pass
    pool.close()  # idempotent


def test_crashed_acquirer_returns_its_connection():
    pool = ConnectionPool(Factory(), size=1)
    with pytest.raises(RuntimeError):
        with pool.acquire():
            raise RuntimeError("acquirer died mid-read")
    # The slot came home: the next acquire is immediate, same connection.
    with pool.acquire():
        pass
    assert pool.stats()["in_use"] == 0
    assert pool.stats()["open_connections"] == 1


def test_factory_failure_releases_the_reserved_slot():
    factory = Factory(fail_first=1)
    pool = ConnectionPool(factory, size=1)
    with pytest.raises(OSError):
        with pool.acquire():
            pass
    # The failed open did not leak the pool's only slot.
    with pool.acquire() as conn:
        assert isinstance(conn, FakeConnection)
    assert pool.stats()["connections_opened"] == 1


def test_context_manager_closes_the_pool():
    factory = Factory()
    with ConnectionPool(factory, size=2) as pool:
        with pool.acquire():
            pass
    assert all(conn.closed for conn in factory.opened)


def test_inflight_gauge_tracks_peak_and_reset():
    gauge = InflightGauge()
    gauge.enter(3)
    gauge.enter()
    assert gauge.current == 4
    assert gauge.peak == 4
    gauge.exit(2)
    assert gauge.current == 2
    assert gauge.peak == 4  # peak survives the drain
    gauge.reset()
    assert gauge.peak == 2  # anything still in flight keeps counting
    gauge.exit(2)
    assert gauge.current == 0


def test_deferred_handle_collects_once_and_caches():
    calls = []

    def collect():
        calls.append(1)
        return {"answer": 42}

    handle = DeferredHandle(collect)
    assert calls == []  # nothing runs until the caller asks
    assert handle.result() == {"answer": 42}
    assert handle.result() is handle.result()
    assert calls == [1]

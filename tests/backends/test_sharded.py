"""ShardedSQLiteBackend specifics: routing, affinity accounting, sharing.

The generic protocol/roundtrip/equivalence matrices already run the
sharded engine alongside every other backend; this module pins what is
unique to it — the shard function contract, home-shard fan-out order,
the remote/cross-shard counters, worker connection sets and the
statement-scoped commit discipline.
"""

from __future__ import annotations

import os

import pytest

from repro.backends.sharded import (
    DEFAULT_SHARDS,
    SHARD_FILE_FORMAT,
    ShardedSQLiteBackend,
    shard_of,
)
from repro.errors import BackendError, StorageError
from repro.store.serializer import StoredObject


def make_records(count, refs=None):
    refs = refs or {}
    return [StoredObject(oid=oid, cid=1 + oid % 3, filler=32,
                         refs=tuple(refs.get(oid, ())))
            for oid in range(1, count + 1)]


def loaded(backend, count=10, refs=None):
    records = make_records(count, refs)
    backend.bulk_load(records, order=[r.oid for r in records])
    backend.reset_stats()
    return {r.oid: r for r in records}


class TestShardFunction:
    def test_contract_is_oid_modulo_shards(self):
        for shards in (1, 2, 4, 7):
            for oid in range(1, 40):
                assert shard_of(oid, shards) == oid % shards

    def test_engine_routes_by_contract(self):
        backend = ShardedSQLiteBackend(shards=4)
        loaded(backend, count=10)
        for oid in range(1, 11):
            assert backend.shard_of(oid) == oid % 4
            assert oid in backend
        stats = backend.stats()
        # oids 1..10 over 4 residue classes: 0 -> {4, 8}, 1 -> {1, 5, 9},
        # 2 -> {2, 6, 10}, 3 -> {3, 7}.
        assert stats["objects_per_shard"] == [2, 3, 3, 2]
        backend.close()

    def test_rejects_bad_shape(self):
        with pytest.raises(BackendError):
            ShardedSQLiteBackend(shards=0)
        with pytest.raises(BackendError):
            ShardedSQLiteBackend(shards=4, home_shard=4)
        with pytest.raises(BackendError):
            ShardedSQLiteBackend(shards=4, home_shard=-1)

    def test_default_shard_count(self):
        backend = ShardedSQLiteBackend()
        assert backend.shards == DEFAULT_SHARDS
        backend.close()


class TestAffinityAccounting:
    def test_reads_off_home_are_remote(self):
        backend = ShardedSQLiteBackend(shards=4, home_shard=1)
        loaded(backend, count=10)
        backend.read_many([1, 5, 9])       # All home (oid % 4 == 1).
        assert backend.remote_reads == 0
        backend.read_many([2, 3, 4])       # All off-home.
        assert backend.remote_reads == 3
        backend.read_object(6)
        assert backend.remote_reads == 4
        backend.close()

    def test_writes_off_home_are_remote(self):
        backend = ShardedSQLiteBackend(shards=4, home_shard=1)
        records = loaded(backend, count=10)
        backend.write_object(records[5])   # Home lane.
        assert backend.remote_writes == 0
        backend.write_many([records[2], records[5], records[7]])
        assert backend.remote_writes == 2
        backend.close()

    def test_no_home_no_remote_counts(self):
        backend = ShardedSQLiteBackend(shards=4)
        records = loaded(backend, count=10)
        backend.read_many(list(records))
        backend.write_many(list(records.values()))
        assert backend.remote_reads == 0
        assert backend.remote_writes == 0
        backend.close()

    def test_cross_shard_refs_counted_home_independent(self):
        # 1 -> 5 stays on shard 1; 1 -> 2 and 2 -> 7 cross shards.
        refs = {1: (5, 2), 2: (7,)}
        backend = ShardedSQLiteBackend(shards=4, home_shard=1)
        loaded(backend, count=10, refs=refs)
        resolved = backend.traverse_refs_many([1, 2])
        assert resolved[1] == (5, 2)
        assert resolved[2] == (7,)
        assert backend.cross_shard_refs == 2
        # Remote reads: the off-home lookup of oid 2, plus the frontier
        # edge 1 -> 2 that leaves the home shard.  2 -> 7 starts off-home
        # and is therefore not a *home* departure.
        assert backend.remote_reads == 1 + 1
        backend.close()

    def test_reset_stats_clears_counters(self):
        backend = ShardedSQLiteBackend(shards=4, home_shard=0)
        records = loaded(backend, count=8)
        backend.read_many(list(records))
        backend.write_many(list(records.values()))
        backend.reset_stats()
        assert backend.remote_reads == 0
        assert backend.remote_writes == 0
        assert backend.cross_shard_refs == 0
        assert backend.stats()["object_accesses"] == 0
        backend.close()


class TestCommitDiscipline:
    def test_writes_commit_per_shard_immediately(self):
        backend = ShardedSQLiteBackend(shards=3)
        records = loaded(backend, count=9)
        backend.write_many(list(records.values()))
        # Statement-scoped transactions: nothing is left open, so the
        # session-level flush after an operation touches no engine.
        assert backend._dirty_shards == set()
        assert backend.flush() == 0
        backend.close()

    def test_fanout_order_puts_home_first(self):
        backend = ShardedSQLiteBackend(shards=4, home_shard=2)
        assert backend.connection_order == (2, 0, 1, 3)
        assert backend._fanout_order([3, 1, 2]) == [2, 1, 3]
        assert backend._fanout_order([0, 3]) == [0, 3]
        backend.close()


class TestSharedDirectories:
    def test_directory_path_materializes_shard_files(self, tmp_path):
        root = os.path.join(str(tmp_path), "shards")
        backend = ShardedSQLiteBackend(path=root, shards=3)
        loaded(backend, count=6)
        for shard in range(3):
            assert os.path.exists(
                os.path.join(root, SHARD_FILE_FORMAT.format(index=shard)))
        backend.close()

    def test_connect_worker_shares_and_overrides_home(self, tmp_path):
        root = os.path.join(str(tmp_path), "shards")
        backend = ShardedSQLiteBackend(path=root, shards=4)
        records = loaded(backend, count=8)
        worker = backend.connect_worker(home_shard=1)
        assert worker.home_shard == 1
        assert worker.connection_order == (1, 0, 2, 3)
        assert worker.read_object(3) == records[3]
        inherited = worker.connect_worker()
        assert inherited.home_shard == 1
        worker.close()
        inherited.close()
        backend.close()

    def test_worker_writes_visible_to_sibling(self, tmp_path):
        root = os.path.join(str(tmp_path), "shards")
        backend = ShardedSQLiteBackend(path=root, shards=2)
        records = loaded(backend, count=4)
        worker = backend.connect_worker(home_shard=0)
        changed = StoredObject(oid=2, cid=records[2].cid, filler=64,
                               refs=records[2].refs)
        worker.write_object(changed)
        assert backend.read_object(2) == changed
        worker.close()
        backend.close()

    def test_in_memory_cannot_be_shared(self):
        backend = ShardedSQLiteBackend(shards=2)
        with pytest.raises(BackendError):
            backend.connect_worker()
        backend.close()

    def test_bulk_load_requires_empty(self):
        backend = ShardedSQLiteBackend(shards=2)
        loaded(backend, count=4)
        with pytest.raises(StorageError):
            backend.bulk_load(make_records(2))
        backend.close()

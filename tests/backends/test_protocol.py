"""Protocol conformance: every engine honours the Backend contract."""

from __future__ import annotations

import pytest

from repro.backends import SimulatedBackend
from repro.errors import StorageError, UnknownObject
from repro.store.serializer import StoredObject


def make_records(count, cid=1, filler=20):
    return [StoredObject(oid=i + 1, cid=cid,
                         refs=(None if i == 0 else i, (i % count) + 1),
                         filler=filler)
            for i in range(count)]


class TestBulkLoad:
    def test_returns_positive_units(self, backend):
        assert backend.bulk_load(make_records(10)) > 0

    def test_requires_empty_backend(self, backend):
        backend.bulk_load(make_records(5))
        with pytest.raises(StorageError):
            backend.bulk_load(make_records(5))

    def test_rejects_duplicate_oids(self, backend):
        records = make_records(4) + [make_records(1)[0]]
        with pytest.raises(StorageError):
            backend.bulk_load(records)

    def test_rejects_non_permutation_order(self, backend):
        with pytest.raises(StorageError):
            backend.bulk_load(make_records(4), order=[1, 2, 3, 9])

    def test_order_becomes_current_order(self, backend):
        order = [3, 1, 4, 2, 5]
        backend.bulk_load(make_records(5), order=order)
        if backend.name in ("sqlite", "sharded-sqlite"):
            # An INTEGER PRIMARY KEY table is clustered by oid (the
            # sharded engine's canonical order is global oid order).
            assert backend.current_order() == sorted(order)
        else:
            assert backend.current_order() == order


class TestAccessPaths:
    def test_read_returns_identical_record(self, loaded_backend,
                                           small_database):
        records = small_database.to_records()
        oid = sorted(records)[0]
        assert loaded_backend.read_object(oid) == records[oid]

    def test_read_unknown_raises(self, loaded_backend):
        with pytest.raises(UnknownObject):
            loaded_backend.read_object(999_999)

    def test_write_persists(self, loaded_backend, small_database):
        records = small_database.to_records()
        oid = sorted(records)[0]
        changed = records[oid].with_back_refs(((42, 0),))
        loaded_backend.write_object(changed)
        assert loaded_backend.read_object(oid) == changed

    def test_write_unknown_raises(self, backend):
        backend.bulk_load(make_records(3))
        with pytest.raises(UnknownObject):
            backend.write_object(StoredObject(oid=77, cid=1))

    def test_insert_then_read(self, loaded_backend):
        record = StoredObject(oid=500_000, cid=1, refs=(1,), filler=8)
        loaded_backend.insert_object(record)
        assert loaded_backend.read_object(500_000) == record

    def test_insert_duplicate_raises(self, loaded_backend, small_database):
        oid = sorted(small_database.to_records())[0]
        with pytest.raises(StorageError):
            loaded_backend.insert_object(StoredObject(oid=oid, cid=1))

    def test_delete_removes(self, loaded_backend, small_database):
        oid = sorted(small_database.to_records())[0]
        before = loaded_backend.object_count
        loaded_backend.delete_object(oid)
        assert loaded_backend.object_count == before - 1
        assert oid not in loaded_backend
        with pytest.raises(UnknownObject):
            loaded_backend.read_object(oid)

    def test_delete_unknown_raises(self, loaded_backend):
        with pytest.raises(UnknownObject):
            loaded_backend.delete_object(999_999)


class TestBatchedAccess:
    def test_read_many_matches_point_reads(self, loaded_backend,
                                           small_database):
        records = small_database.to_records()
        oids = sorted(records)[:25]
        batch = loaded_backend.read_many(oids)
        assert set(batch) == set(oids)
        for oid in oids:
            assert batch[oid] == records[oid]

    def test_read_many_dedupes(self, loaded_backend, small_database):
        oid = sorted(small_database.to_records())[0]
        before = loaded_backend.snapshot().object_accesses
        batch = loaded_backend.read_many([oid, oid, oid])
        assert list(batch) == [oid]
        # Duplicates are fetched (and charged) once.
        assert loaded_backend.snapshot().object_accesses == before + 1

    def test_read_many_unknown_raises(self, loaded_backend):
        with pytest.raises(UnknownObject):
            loaded_backend.read_many([999_999])

    def test_read_many_empty(self, loaded_backend):
        assert loaded_backend.read_many([]) == {}

    def test_write_many_persists(self, loaded_backend, small_database):
        records = small_database.to_records()
        changed = [records[oid].with_back_refs(((1000 + oid, 0),))
                   for oid in sorted(records)[:10]]
        loaded_backend.write_many(changed)
        for record in changed:
            assert loaded_backend.read_object(record.oid) == record

    def test_write_many_unknown_raises(self, backend):
        backend.bulk_load(make_records(3))
        with pytest.raises(UnknownObject):
            backend.write_many([StoredObject(oid=77, cid=1)])

    def test_batched_flags_are_consistent(self, backend):
        # Engines declaring native batching must override the loop.
        from repro.backends import Backend
        if backend.supports_batched_reads:
            assert type(backend).read_many is not Backend.read_many
        if backend.supports_batched_writes:
            assert type(backend).write_many is not Backend.write_many


class TestColdCacheControl:
    def test_drop_caches_reports_bool(self, loaded_backend):
        result = loaded_backend.drop_caches()
        assert isinstance(result, bool)

    def test_memory_reports_no_cache(self):
        from repro.backends import MemoryBackend
        backend = MemoryBackend()
        backend.bulk_load(make_records(3))
        assert backend.drop_caches() is False

    def test_engines_with_cache_report_true(self, loaded_backend):
        if loaded_backend.name == "memory":
            pytest.skip("the dict backend has no cache")
        assert loaded_backend.drop_caches() is True

    def test_data_survives_cache_drop(self, loaded_backend, small_database):
        records = small_database.to_records()
        loaded_backend.drop_caches()
        assert loaded_backend.object_count == len(records)
        oid = sorted(records)[0]
        assert loaded_backend.read_object(oid) == records[oid]

    def test_mutations_survive_cache_drop(self, loaded_backend,
                                          small_database):
        oid = sorted(small_database.to_records())[0]
        changed = small_database.to_records()[oid].with_back_refs(((7, 1),))
        loaded_backend.write_object(changed)
        loaded_backend.drop_caches()
        assert loaded_backend.read_object(oid) == changed


class TestSQLiteBatching:
    """The native set-oriented access path saves real round trips."""

    def _loaded(self, small_database):
        from repro.backends import SQLiteBackend
        backend = SQLiteBackend(page_size=512, cache_pages=16)
        records = small_database.to_records()
        backend.bulk_load(records.values(), order=sorted(records))
        backend.reset_stats()
        return backend

    def test_read_many_is_one_round_trip(self, small_database):
        backend = self._loaded(small_database)
        oids = sorted(small_database.objects)[:50]
        before = backend.sql_round_trips
        backend.read_many(oids)
        assert backend.sql_round_trips == before + 1
        backend.close()

    def test_read_many_chunks_above_variable_limit(self, small_database):
        from repro.backends.sqlite import _MAX_BATCH_VARIABLES
        backend = self._loaded(small_database)
        # Duplicate the oid list beyond the chunk size; uniques fit in 1.
        oids = sorted(small_database.objects)
        wanted = (oids * ((_MAX_BATCH_VARIABLES // len(oids)) + 2))
        before = backend.sql_round_trips
        batch = backend.read_many(wanted)
        assert set(batch) == set(oids)
        assert backend.sql_round_trips == before + 1
        backend.close()

    def test_write_many_is_one_round_trip(self, small_database):
        backend = self._loaded(small_database)
        records = small_database.to_records()
        changed = [records[oid].with_back_refs(((42, 0),))
                   for oid in sorted(records)[:20]]
        before = backend.sql_round_trips
        backend.write_many(changed)
        assert backend.sql_round_trips == before + 1
        backend.close()

    def test_round_trips_reset_with_stats(self, small_database):
        backend = self._loaded(small_database)
        backend.read_object(sorted(small_database.objects)[0])
        assert backend.sql_round_trips > 0
        backend.reset_stats()
        assert backend.sql_round_trips == 0
        backend.close()


class TestTraverseRefs:
    def test_matches_record_refs(self, loaded_backend, small_database):
        records = small_database.to_records()
        for oid in sorted(records)[:20]:
            assert loaded_backend.traverse_refs(oid) == \
                records[oid].non_null_refs()

    def test_unknown_raises(self, loaded_backend):
        with pytest.raises(UnknownObject):
            loaded_backend.traverse_refs(999_999)


class TestAccounting:
    def test_object_count_and_len(self, backend):
        backend.bulk_load(make_records(7))
        assert backend.object_count == 7
        assert len(backend) == 7

    def test_iter_oids_complete(self, backend):
        backend.bulk_load(make_records(6))
        assert sorted(backend.iter_oids()) == [1, 2, 3, 4, 5, 6]

    def test_contains(self, backend):
        backend.bulk_load(make_records(3))
        assert 2 in backend
        assert 99 not in backend

    def test_object_accesses_counted(self, loaded_backend, small_database):
        oid = sorted(small_database.to_records())[0]
        loaded_backend.read_object(oid)
        loaded_backend.read_object(oid)
        assert loaded_backend.snapshot().object_accesses == 2

    def test_reset_stats(self, loaded_backend, small_database):
        loaded_backend.read_object(sorted(small_database.to_records())[0])
        loaded_backend.reset_stats()
        assert loaded_backend.snapshot().object_accesses == 0

    def test_snapshot_deltas_subtract(self, loaded_backend, small_database):
        oids = sorted(small_database.to_records())[:5]
        before = loaded_backend.snapshot()
        for oid in oids:
            loaded_backend.read_object(oid)
        delta = loaded_backend.snapshot() - before
        assert delta.object_accesses == 5

    def test_stats_is_dict(self, loaded_backend):
        stats = loaded_backend.stats()
        assert isinstance(stats, dict)
        assert stats["objects"] == loaded_backend.object_count


class TestSimulatedDelegation:
    """The simulated adapter must mirror its wrapped store exactly."""

    def test_shares_clock_and_counters(self, small_database):
        from repro.store.storage import StoreConfig
        backend = SimulatedBackend(
            store_config=StoreConfig(page_size=512, buffer_pages=4))
        records = small_database.to_records()
        backend.bulk_load(records.values(), order=sorted(records))
        backend.reset_stats()
        for oid in sorted(records)[:10]:
            backend.read_object(oid)
        assert backend.snapshot() == backend.store.snapshot()
        assert backend.clock is backend.store.clock
        assert backend.object_accesses == backend.store.object_accesses
        assert backend.snapshot().io_reads > 0

    def test_supports_clustering_flag(self):
        assert SimulatedBackend(store_config=None).supports_clustering


class TestTraverseRefsMany:
    """Batched reference traversal: loop fallback + SQLite link index."""

    def _ref_indexed(self, small_database):
        from repro.backends import SQLiteBackend
        backend = SQLiteBackend(page_size=512, cache_pages=16,
                                ref_index=True)
        records = small_database.to_records()
        backend.bulk_load(records.values(), order=sorted(records))
        backend.reset_stats()
        return backend

    def test_fallback_matches_per_object_traversal(self, loaded_backend,
                                                   small_database):
        oids = sorted(small_database.objects)[:30]
        batched = loaded_backend.traverse_refs_many(oids)
        assert batched == {oid: loaded_backend.traverse_refs(oid)
                           for oid in oids}

    def test_fallback_missing_oid_raises(self, loaded_backend):
        from repro.errors import UnknownObject
        with pytest.raises(UnknownObject):
            loaded_backend.traverse_refs_many([999999])

    def test_link_index_one_round_trip_no_decode(self, small_database):
        backend = self._ref_indexed(small_database)
        assert backend.supports_ref_index
        oids = sorted(small_database.objects)[:50]
        expected = {oid: small_database.to_records()[oid].non_null_refs()
                    for oid in oids}
        before = backend.sql_round_trips
        answered = backend.traverse_refs_many(oids)
        assert backend.sql_round_trips == before + 1
        assert answered == expected
        backend.close()

    def test_link_index_covers_zero_ref_objects(self, small_database):
        backend = self._ref_indexed(small_database)
        oids = sorted(small_database.objects)
        answered = backend.traverse_refs_many(oids)
        assert set(answered) == set(oids)
        backend.close()

    def test_link_index_missing_oid_raises(self, small_database):
        from repro.errors import UnknownObject
        backend = self._ref_indexed(small_database)
        with pytest.raises(UnknownObject):
            backend.traverse_refs_many([1, 999999])
        backend.close()

    def test_link_index_maintained_across_mutations(self, small_database):
        backend = self._ref_indexed(small_database)
        records = small_database.to_records()
        oids = sorted(records)
        first, second = oids[0], oids[1]
        # Update: rewrite first's references to point at second only.
        changed = records[first].with_refs((second,))
        backend.write_object(changed)
        assert backend.traverse_refs_many([first])[first] == (second,)
        # Insert: a brand-new object referencing first.
        from repro.store.serializer import StoredObject
        fresh = StoredObject(oid=max(oids) + 1, cid=1,
                             refs=(first, None), filler=16)
        backend.insert_object(fresh)
        assert backend.traverse_refs_many([fresh.oid])[fresh.oid] == (first,)
        # Delete: the victim's link rows disappear with it.
        backend.delete_object(fresh.oid)
        from repro.errors import UnknownObject
        with pytest.raises(UnknownObject):
            backend.traverse_refs_many([fresh.oid])
        backend.close()

    def test_default_engine_has_no_index_and_unchanged_write_cost(
            self, small_database):
        from repro.backends import SQLiteBackend
        backend = SQLiteBackend(page_size=512, cache_pages=16)
        assert not backend.supports_ref_index
        records = small_database.to_records()
        backend.bulk_load(records.values(), order=sorted(records))
        backend.reset_stats()
        oid = sorted(records)[0]
        before = backend.sql_round_trips
        backend.write_object(records[oid])
        assert backend.sql_round_trips == before + 1
        backend.close()

    def test_connect_worker_inherits_ref_index(self, small_database,
                                               tmp_path):
        from repro.backends import SQLiteBackend
        backend = SQLiteBackend(path=str(tmp_path / "refidx.db"),
                                page_size=512, cache_pages=16,
                                ref_index=True, journal_mode="WAL",
                                synchronous="NORMAL")
        records = small_database.to_records()
        backend.bulk_load(records.values(), order=sorted(records))
        worker = backend.connect_worker()
        try:
            assert worker.ref_index
            oids = sorted(records)[:10]
            assert worker.traverse_refs_many(oids) == \
                {oid: records[oid].non_null_refs() for oid in oids}
        finally:
            worker.close()
            backend.close()

    def test_session_passthrough(self, small_database):
        from repro.core.session import Session
        backend = self._ref_indexed(small_database)
        session = Session(backend)
        oids = sorted(small_database.objects)[:10]
        expected = {oid: small_database.to_records()[oid].non_null_refs()
                    for oid in oids}
        assert session.traverse_refs_many(oids) == expected
        session.close()

    def test_link_index_consistent_after_partial_write_many(
            self, small_database):
        """A write_many batch that hits a missing oid must still leave
        the link index in lockstep with every blob it did update."""
        from repro.errors import UnknownObject
        backend = self._ref_indexed(small_database)
        records = small_database.to_records()
        first, second = sorted(records)[:2]
        changed = records[first].with_refs((second,))
        missing = records[second].with_refs(())
        missing = type(missing)(oid=max(records) + 1, cid=1,
                                refs=(first,), filler=8)
        with pytest.raises(UnknownObject):
            backend.write_many([changed, missing])
        # The row that did update answers identically via both paths.
        assert backend.read_object(first).non_null_refs() == (second,)
        assert backend.traverse_refs_many([first])[first] == (second,)
        backend.close()

    def test_no_phantom_round_trips_for_leaf_records(self, small_database):
        """Link maintenance with nothing to insert must not inflate the
        round-trip counter the benchmarks compare."""
        from repro.store.serializer import StoredObject
        backend = self._ref_indexed(small_database)
        leaf = StoredObject(oid=max(small_database.objects) + 1, cid=1,
                            refs=(None, None), filler=8)
        before = backend.sql_round_trips
        backend.insert_object(leaf)
        assert backend.sql_round_trips == before + 1  # objects INSERT only
        before = backend.sql_round_trips
        backend.write_object(leaf)
        # objects UPDATE + links DELETE; no empty links INSERT counted.
        assert backend.sql_round_trips == before + 2
        backend.close()

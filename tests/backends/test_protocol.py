"""Protocol conformance: every engine honours the Backend contract."""

from __future__ import annotations

import pytest

from repro.backends import SimulatedBackend
from repro.errors import StorageError, UnknownObject
from repro.store.serializer import StoredObject


def make_records(count, cid=1, filler=20):
    return [StoredObject(oid=i + 1, cid=cid,
                         refs=(None if i == 0 else i, (i % count) + 1),
                         filler=filler)
            for i in range(count)]


class TestBulkLoad:
    def test_returns_positive_units(self, backend):
        assert backend.bulk_load(make_records(10)) > 0

    def test_requires_empty_backend(self, backend):
        backend.bulk_load(make_records(5))
        with pytest.raises(StorageError):
            backend.bulk_load(make_records(5))

    def test_rejects_duplicate_oids(self, backend):
        records = make_records(4) + [make_records(1)[0]]
        with pytest.raises(StorageError):
            backend.bulk_load(records)

    def test_rejects_non_permutation_order(self, backend):
        with pytest.raises(StorageError):
            backend.bulk_load(make_records(4), order=[1, 2, 3, 9])

    def test_order_becomes_current_order(self, backend):
        order = [3, 1, 4, 2, 5]
        backend.bulk_load(make_records(5), order=order)
        if backend.name == "sqlite":
            # An INTEGER PRIMARY KEY table is clustered by oid.
            assert backend.current_order() == sorted(order)
        else:
            assert backend.current_order() == order


class TestAccessPaths:
    def test_read_returns_identical_record(self, loaded_backend,
                                           small_database):
        records = small_database.to_records()
        oid = sorted(records)[0]
        assert loaded_backend.read_object(oid) == records[oid]

    def test_read_unknown_raises(self, loaded_backend):
        with pytest.raises(UnknownObject):
            loaded_backend.read_object(999_999)

    def test_write_persists(self, loaded_backend, small_database):
        records = small_database.to_records()
        oid = sorted(records)[0]
        changed = records[oid].with_back_refs(((42, 0),))
        loaded_backend.write_object(changed)
        assert loaded_backend.read_object(oid) == changed

    def test_write_unknown_raises(self, backend):
        backend.bulk_load(make_records(3))
        with pytest.raises(UnknownObject):
            backend.write_object(StoredObject(oid=77, cid=1))

    def test_insert_then_read(self, loaded_backend):
        record = StoredObject(oid=500_000, cid=1, refs=(1,), filler=8)
        loaded_backend.insert_object(record)
        assert loaded_backend.read_object(500_000) == record

    def test_insert_duplicate_raises(self, loaded_backend, small_database):
        oid = sorted(small_database.to_records())[0]
        with pytest.raises(StorageError):
            loaded_backend.insert_object(StoredObject(oid=oid, cid=1))

    def test_delete_removes(self, loaded_backend, small_database):
        oid = sorted(small_database.to_records())[0]
        before = loaded_backend.object_count
        loaded_backend.delete_object(oid)
        assert loaded_backend.object_count == before - 1
        assert oid not in loaded_backend
        with pytest.raises(UnknownObject):
            loaded_backend.read_object(oid)

    def test_delete_unknown_raises(self, loaded_backend):
        with pytest.raises(UnknownObject):
            loaded_backend.delete_object(999_999)


class TestTraverseRefs:
    def test_matches_record_refs(self, loaded_backend, small_database):
        records = small_database.to_records()
        for oid in sorted(records)[:20]:
            assert loaded_backend.traverse_refs(oid) == \
                records[oid].non_null_refs()

    def test_unknown_raises(self, loaded_backend):
        with pytest.raises(UnknownObject):
            loaded_backend.traverse_refs(999_999)


class TestAccounting:
    def test_object_count_and_len(self, backend):
        backend.bulk_load(make_records(7))
        assert backend.object_count == 7
        assert len(backend) == 7

    def test_iter_oids_complete(self, backend):
        backend.bulk_load(make_records(6))
        assert sorted(backend.iter_oids()) == [1, 2, 3, 4, 5, 6]

    def test_contains(self, backend):
        backend.bulk_load(make_records(3))
        assert 2 in backend
        assert 99 not in backend

    def test_object_accesses_counted(self, loaded_backend, small_database):
        oid = sorted(small_database.to_records())[0]
        loaded_backend.read_object(oid)
        loaded_backend.read_object(oid)
        assert loaded_backend.snapshot().object_accesses == 2

    def test_reset_stats(self, loaded_backend, small_database):
        loaded_backend.read_object(sorted(small_database.to_records())[0])
        loaded_backend.reset_stats()
        assert loaded_backend.snapshot().object_accesses == 0

    def test_snapshot_deltas_subtract(self, loaded_backend, small_database):
        oids = sorted(small_database.to_records())[:5]
        before = loaded_backend.snapshot()
        for oid in oids:
            loaded_backend.read_object(oid)
        delta = loaded_backend.snapshot() - before
        assert delta.object_accesses == 5

    def test_stats_is_dict(self, loaded_backend):
        stats = loaded_backend.stats()
        assert isinstance(stats, dict)
        assert stats["objects"] == loaded_backend.object_count


class TestSimulatedDelegation:
    """The simulated adapter must mirror its wrapped store exactly."""

    def test_shares_clock_and_counters(self, small_database):
        from repro.store.storage import StoreConfig
        backend = SimulatedBackend(
            store_config=StoreConfig(page_size=512, buffer_pages=4))
        records = small_database.to_records()
        backend.bulk_load(records.values(), order=sorted(records))
        backend.reset_stats()
        for oid in sorted(records)[:10]:
            backend.read_object(oid)
        assert backend.snapshot() == backend.store.snapshot()
        assert backend.clock is backend.store.clock
        assert backend.object_accesses == backend.store.object_accesses
        assert backend.snapshot().io_reads > 0

    def test_supports_clustering_flag(self):
        assert SimulatedBackend(store_config=None).supports_clustering

"""The full OCB protocol against every engine, plus the equivalence
guarantees the tentpole promises:

* driving the simulated store *through* the backend adapter is
  bit-identical to driving it directly;
* the logical workload (visits, distinct objects, transaction mix) is
  identical across all engines;
* only the simulated engine reports simulated I/O; everyone reports
  wall-clock percentiles.
"""

from __future__ import annotations

import pytest

from repro.backends import (
    MemoryBackend,
    SimulatedBackend,
    SQLiteBackend,
    create_backend,
)
from repro.clustering.dstc import DSTCPolicy
from repro.core.benchmark import OCBBenchmark
from repro.core.parameters import DatabaseParameters
from repro.core.workload import WorkloadRunner
from repro.errors import WorkloadError
from repro.store.storage import StoreConfig


def _loaded(backend, database):
    records = database.to_records()
    backend.bulk_load(records.values(), order=sorted(records))
    backend.reset_stats()
    return backend


def _run(database, store_or_backend, params):
    runner = WorkloadRunner(database, store_or_backend, params)
    return runner.run()


class TestBitIdenticalSimulated:
    def test_adapter_equals_direct_store(self, small_database,
                                         small_workload):
        config = StoreConfig(page_size=512, buffer_pages=16)
        records = small_database.to_records()

        direct = config.build()
        direct.bulk_load(records.values(), order=sorted(records))
        direct.reset_stats()
        direct_report = _run(small_database, direct, small_workload)

        adapted = _loaded(SimulatedBackend(store_config=config),
                          small_database)
        adapted_report = _run(small_database, adapted, small_workload)

        for phase_direct, phase_adapted in (
                (direct_report.cold, adapted_report.cold),
                (direct_report.warm, adapted_report.warm)):
            t_direct = phase_direct.totals
            t_adapted = phase_adapted.totals
            assert t_direct.count == t_adapted.count
            assert t_direct.visits == t_adapted.visits
            assert t_direct.io_reads == t_adapted.io_reads
            assert t_direct.io_writes == t_adapted.io_writes
            assert t_direct.buffer_hits == t_adapted.buffer_hits
            assert t_direct.buffer_misses == t_adapted.buffer_misses
            assert t_direct.sim_time == t_adapted.sim_time


class TestCrossBackendEquivalence:
    def test_logical_workload_identical(self, small_database,
                                        small_workload):
        config = StoreConfig(page_size=512, buffer_pages=16)
        signatures = {}
        for name in ("simulated", "memory", "sqlite"):
            backend = _loaded(create_backend(name, config), small_database)
            report = _run(small_database, backend, small_workload)
            totals = report.warm.totals
            signatures[name] = (totals.count, totals.visits,
                                totals.distinct_objects)
            backend.close()
        assert len(set(signatures.values())) == 1, signatures

    def test_real_engines_report_no_simulated_io(self, small_database,
                                                 small_workload):
        for factory in (MemoryBackend,
                        lambda: SQLiteBackend(page_size=512, cache_pages=8)):
            backend = _loaded(factory(), small_database)
            report = _run(small_database, backend, small_workload)
            totals = report.warm.totals
            assert totals.io_reads == 0
            assert totals.sim_time == 0.0
            assert totals.visits > 0
            backend.close()

    def test_wall_percentiles_populated(self, small_database,
                                        small_workload):
        backend = _loaded(MemoryBackend(), small_database)
        report = _run(small_database, backend, small_workload)
        wall = report.warm.wall_percentiles()
        assert wall.count == small_workload.hot_n
        assert 0.0 < wall.p50 <= wall.p95 <= wall.p99

    def test_think_time_not_reported_as_simulated_cost(self, small_database):
        from repro.core.parameters import WorkloadParameters
        params = WorkloadParameters(set_depth=1, simple_depth=1,
                                    hierarchy_depth=1, stochastic_depth=2,
                                    cold_n=1, hot_n=5, max_visits=50,
                                    think_time=0.5)
        backend = _loaded(MemoryBackend(), small_database)
        report = _run(small_database, backend, params)
        assert report.warm.totals.sim_time == 0.0


class TestClusteringGuard:
    def test_clustering_policy_needs_simulated(self, small_database,
                                               small_workload):
        backend = _loaded(MemoryBackend(), small_database)
        with pytest.raises(WorkloadError, match="clustering"):
            WorkloadRunner(small_database, backend, small_workload,
                           policy=DSTCPolicy())

    def test_simulated_backend_allows_clustering(self, small_database,
                                                 small_workload):
        backend = _loaded(
            SimulatedBackend(
                store_config=StoreConfig(page_size=512, buffer_pages=16)),
            small_database)
        runner = WorkloadRunner(small_database, backend, small_workload,
                                policy=DSTCPolicy())
        report = runner.run()
        assert report.warm.totals.count == small_workload.hot_n


class TestBenchmarkFacade:
    @pytest.fixture(scope="class")
    def tiny_db_params(self):
        return DatabaseParameters(num_classes=5, max_nref=3, base_size=20,
                                  num_objects=150, num_ref_types=3, seed=7)

    def test_run_with_backend_name(self, tiny_db_params, small_workload):
        bench = OCBBenchmark(tiny_db_params, small_workload,
                             backend="sqlite")
        result = bench.run()
        assert result.backend_name == "sqlite"
        assert result.report.warm.totals.count == small_workload.hot_n
        assert "P95" in result.describe()
        bench.backend.close()

    def test_run_with_backend_instance(self, tiny_db_params, small_workload):
        bench = OCBBenchmark(tiny_db_params, small_workload,
                             backend=MemoryBackend())
        result = bench.run()
        assert result.backend_name == "memory"

    def test_default_backend_is_simulated(self, tiny_db_params,
                                          small_workload):
        bench = OCBBenchmark(tiny_db_params, small_workload,
                             StoreConfig(page_size=512, buffer_pages=4))
        result = bench.run()
        assert result.backend_name == "simulated"
        assert bench.store is not None
        assert result.store_pages == bench.store.page_count
        assert result.report.warm.totals.io_reads > 0

    def test_clustering_experiment_rejects_real_engines(self, tiny_db_params,
                                                        small_workload):
        bench = OCBBenchmark(tiny_db_params, small_workload,
                             backend="memory", policy=DSTCPolicy())
        with pytest.raises(WorkloadError, match="simulated"):
            bench.run_clustering_experiment()

"""Registry behaviour: registration, lookup, creation, errors."""

from __future__ import annotations

import pytest

from repro.backends import (
    MemoryBackend,
    SimulatedBackend,
    SQLiteBackend,
    available_backends,
    backend_names,
    create_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.errors import BackendError
from repro.store.storage import StoreConfig


class TestBuiltins:
    def test_at_least_three_backends(self):
        assert len(available_backends()) >= 3

    def test_builtin_names(self):
        names = backend_names()
        for expected in ("simulated", "memory", "sqlite"):
            assert expected in names

    def test_create_each_builtin(self):
        assert isinstance(create_backend("simulated"), SimulatedBackend)
        assert isinstance(create_backend("memory"), MemoryBackend)
        sqlite = create_backend("sqlite")
        assert isinstance(sqlite, SQLiteBackend)
        sqlite.close()

    def test_names_are_case_insensitive(self):
        assert isinstance(create_backend("  Memory "), MemoryBackend)

    def test_descriptions_present(self):
        for info in available_backends():
            assert info.description

    def test_only_simulated_has_cost_model(self):
        for info in available_backends():
            if info.name in ("memory", "sqlite"):
                assert info.wall_clock_only
            if info.name == "simulated":
                assert not info.wall_clock_only


class TestStoreConfigForwarding:
    def test_simulated_honours_config(self):
        config = StoreConfig(page_size=1024, buffer_pages=7)
        backend = create_backend("simulated", config)
        assert backend.store.page_size == 1024
        assert backend.store.buffer.capacity == 7

    def test_sqlite_honours_config(self):
        config = StoreConfig(page_size=1024, buffer_pages=7)
        backend = create_backend("sqlite", config)
        try:
            assert backend.stats()["page_size"] == 1024
            assert backend.cache_pages == 7
        finally:
            backend.close()


class TestErrors:
    def test_unknown_backend(self):
        with pytest.raises(BackendError, match="unknown backend"):
            create_backend("does-not-exist")

    def test_duplicate_registration_rejected(self):
        register_backend("registry-test", lambda config, **kw: MemoryBackend(),
                         "temporary")
        try:
            with pytest.raises(BackendError, match="already registered"):
                register_backend("registry-test",
                                 lambda config, **kw: MemoryBackend(),
                                 "duplicate")
        finally:
            unregister_backend("registry-test")

    def test_overwrite_allowed(self):
        register_backend("registry-test", lambda config, **kw: MemoryBackend(),
                         "first")
        try:
            info = register_backend("registry-test",
                                    lambda config, **kw: MemoryBackend(),
                                    "second", overwrite=True)
            assert info.description == "second"
        finally:
            unregister_backend("registry-test")

    def test_empty_name_rejected(self):
        with pytest.raises(BackendError):
            register_backend("  ", lambda config, **kw: MemoryBackend(), "x")

    def test_unregister_is_idempotent(self):
        unregister_backend("never-registered")


class TestResolve:
    def test_none_means_simulated(self):
        assert isinstance(resolve_backend(None), SimulatedBackend)

    def test_instance_passes_through(self):
        instance = MemoryBackend()
        assert resolve_backend(instance) is instance

    def test_name_resolves(self):
        assert isinstance(resolve_backend("memory"), MemoryBackend)

    def test_sqlite_options_forwarded(self, tmp_path):
        path = str(tmp_path / "ocb.db")
        backend = resolve_backend("sqlite", path=path)
        try:
            assert backend.path == path
        finally:
            backend.close()

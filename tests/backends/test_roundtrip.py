"""Serializer round-trip property, shared across every backend.

The satellite guarantee: the same object graph bulk-loaded into the
simulated, memory and SQLite engines reads back as the *identical*
graph — every oid, class id, reference slot (including NILs), back
reference and filler byte count survives each engine's storage format.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import (
    MemoryBackend,
    ShardedSQLiteBackend,
    SimulatedBackend,
    SQLiteBackend,
)
from repro.store.serializer import StoredObject
from repro.store.storage import StoreConfig

BACKEND_FACTORIES = {
    "simulated": lambda: SimulatedBackend(
        store_config=StoreConfig(page_size=512, buffer_pages=8)),
    "memory": MemoryBackend,
    "sqlite": lambda: SQLiteBackend(page_size=512, cache_pages=8),
    "sharded-sqlite": lambda: ShardedSQLiteBackend(
        shards=3, page_size=512, cache_pages=8),
}


@st.composite
def object_graphs(draw):
    """A small random object graph with intra-graph references."""
    count = draw(st.integers(min_value=1, max_value=12))
    records = []
    for position in range(count):
        oid = position + 1
        nref = draw(st.integers(min_value=0, max_value=4))
        refs = tuple(
            draw(st.one_of(st.none(),
                           st.integers(min_value=1, max_value=count)))
            for _ in range(nref))
        nback = draw(st.integers(min_value=0, max_value=3))
        back_refs = tuple(
            (draw(st.integers(min_value=1, max_value=count)),
             draw(st.integers(min_value=0, max_value=4)))
            for _ in range(nback))
        filler = draw(st.integers(min_value=0, max_value=150))
        cid = draw(st.integers(min_value=0, max_value=9))
        records.append(StoredObject(oid=oid, cid=cid, refs=refs,
                                    back_refs=back_refs, filler=filler))
    return records


@pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=object_graphs())
def test_graph_roundtrips_identically(backend_name, graph):
    backend = BACKEND_FACTORIES[backend_name]()
    try:
        backend.bulk_load(list(graph))
        for record in graph:
            assert backend.read_object(record.oid) == record
    finally:
        backend.close()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=object_graphs())
def test_all_backends_agree_on_graph(graph):
    """Cross-engine agreement: every backend returns the same objects."""
    backends = {name: factory() for name, factory
                in BACKEND_FACTORIES.items()}
    try:
        for backend in backends.values():
            backend.bulk_load(list(graph))
        for record in graph:
            views = {name: backend.read_object(record.oid)
                     for name, backend in backends.items()}
            first = next(iter(views.values()))
            assert all(view == first for view in views.values()), views
            assert first == record
    finally:
        for backend in backends.values():
            backend.close()


@pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=object_graphs())
def test_traverse_refs_matches_graph(backend_name, graph):
    backend = BACKEND_FACTORIES[backend_name]()
    try:
        backend.bulk_load(list(graph))
        for record in graph:
            assert backend.traverse_refs(record.oid) == \
                record.non_null_refs()
    finally:
        backend.close()

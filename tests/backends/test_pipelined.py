"""Pipelined SQLite engine: equivalence, overlap counters, lifecycle.

The concurrent sub-batch fan-out must be invisible in every *answer*
(byte-identical records, identical first-occurrence ordering, the same
missing-oid errors) and visible only in the overlap counters
(``max_inflight_reads``, ``concurrent_batches``) and the honestly
higher round-trip count.  Degraded configurations — ``:memory:``, a
pool of one — must keep the exact sequential behaviour and construct
none of the pool machinery.
"""

from __future__ import annotations

import pytest

from repro.backends.pipelined import PipelinedSQLiteBackend
from repro.backends.registry import backend_info, create_backend
from repro.backends.sqlite import SQLiteBackend
from repro.errors import BackendError, UnknownObject
from repro.store.serializer import StoredObject


def _records(count=60):
    return [StoredObject(oid=oid, cid=1 + oid % 5,
                         refs=(oid % count + 1, (oid * 7) % count + 1),
                         filler=16)
            for oid in range(1, count + 1)]


@pytest.fixture
def loaded(tmp_path):
    """The same records in a sequential engine and a pipelined one."""
    sequential = SQLiteBackend(path=str(tmp_path / "seq.db"))
    pipelined = PipelinedSQLiteBackend(path=str(tmp_path / "pipe.db"),
                                       pool_size=3)
    records = _records()
    sequential.bulk_load(records)
    pipelined.bulk_load(records)
    yield sequential, pipelined
    sequential.close()
    pipelined.close()


def test_read_many_answers_match_the_sequential_engine(loaded):
    sequential, pipelined = loaded
    oids = [7, 3, 3, 41, 60, 1, 19]
    expected = sequential.read_many(oids)
    got = pipelined.read_many(oids)
    # The pipelined engine normalizes to first-occurrence order — a
    # deterministic answer regardless of sub-batch completion order.
    assert list(got) == [7, 3, 41, 60, 1, 19]
    assert set(got) == set(expected)
    for oid in expected:
        assert got[oid].cid == expected[oid].cid
        assert got[oid].refs == expected[oid].refs
    stats = pipelined.stats()
    assert stats["pipelined"] is True
    assert stats["max_inflight_reads"] > 1
    assert stats["concurrent_batches"] >= 2
    # Lazy opening: connections materialize only as tasks genuinely
    # overlap, so the count is timing-dependent — but never zero.
    assert stats["pool_connections_opened"] >= 1


def test_traverse_refs_many_matches_and_counts_overlap(loaded):
    sequential, pipelined = loaded
    oids = list(range(1, 61))
    assert pipelined.traverse_refs_many(oids) \
        == sequential.traverse_refs_many(oids)
    assert pipelined.stats()["max_inflight_reads"] == 3
    # Structure-only answers never decode a record.
    assert pipelined.stats()["records_decoded"] == 0
    assert pipelined.stats()["decodes_avoided"] == 60


def test_lazy_reads_through_the_pool_avoid_decodes(loaded):
    sequential, pipelined = loaded
    oids = list(range(1, 31))
    expected = sequential.read_many(oids)
    got = pipelined.read_many(oids, lazy=True)
    assert {oid: record.refs for oid, record in got.items()} \
        == {oid: expected[oid].refs for oid in expected}
    assert pipelined.stats()["decodes_avoided"] == 30


def test_unknown_oid_raises_like_the_sequential_engine(loaded):
    sequential, pipelined = loaded
    with pytest.raises(UnknownObject):
        sequential.read_many([1, 2, 999])
    with pytest.raises(UnknownObject):
        pipelined.read_many([1, 2, 999])
    with pytest.raises(UnknownObject):
        pipelined.traverse_refs_many([999, 1])


def test_buffered_writes_are_published_to_the_pooled_readers(loaded):
    _, pipelined = loaded
    fresh = [StoredObject(oid=oid, cid=9, refs=(1,)) for oid in (101, 102)]
    for record in fresh:
        pipelined.insert_object(record)
    # No explicit flush: the submit path must commit before the pooled
    # readers (separate connections) run, or they read a stale file.
    got = pipelined.read_many([101, 102, 1])
    assert got[101].cid == 9 and got[102].cid == 9


def test_single_oid_batches_skip_the_fanout(loaded):
    _, pipelined = loaded
    pipelined.reset_stats()
    assert pipelined.read_many([5])[5].cid == 1
    assert pipelined.read_many([5, 5, 5])[5].cid == 1  # one unique oid
    assert pipelined.stats()["max_inflight_reads"] == 0
    assert pipelined.stats()["concurrent_batches"] == 0


def test_memory_and_pool_of_one_degrade_to_sequential(tmp_path):
    records = _records(20)
    memory = PipelinedSQLiteBackend()  # :memory: cannot pool
    memory.bulk_load(records)
    assert not memory.supports_async_reads
    assert memory.read_many([3, 4])[3].cid == 4
    assert memory.stats()["pipelined"] is False
    assert memory._pool is None and memory._executor is None
    memory.close()

    narrow = PipelinedSQLiteBackend(path=str(tmp_path / "one.db"),
                                    pool_size=1)
    narrow.bulk_load(records)
    assert not narrow.supports_async_reads
    assert narrow.traverse_refs_many([1, 2, 3]) \
        == {1: (2, 8), 2: (3, 15), 3: (4, 2)}
    # Zero-overhead proof: the sequential path constructed no pool
    # machinery at all, not merely an idle one.
    assert narrow._pool is None and narrow._executor is None
    assert narrow.stats()["max_inflight_reads"] == 0
    narrow.close()

    with pytest.raises(BackendError):
        PipelinedSQLiteBackend(pool_size=0)


def test_submit_collect_protocol_defers_the_counter_fold(loaded):
    _, pipelined = loaded
    pipelined.reset_stats()
    handle = pipelined.submit_traverse_refs_many(list(range(1, 31)))
    # Submitted: the batches are in flight but nothing folded yet.
    assert pipelined.stats()["object_accesses"] == 0
    answers = handle.result()
    assert len(answers) == 30
    assert handle.result() is answers  # cached, no double fold
    assert pipelined.stats()["object_accesses"] == 30


def test_reset_and_drop_caches_recycle_the_pool(loaded):
    sequential, pipelined = loaded
    before = pipelined.read_many(list(range(1, 41)))
    pipelined.reset_stats()
    stats = pipelined.stats()
    assert stats["max_inflight_reads"] == 0
    assert stats["concurrent_batches"] == 0
    assert stats["pool_wait_seconds"] == 0.0
    assert pipelined.drop_caches() is True
    assert pipelined._pool is None  # cold means cold on every connection
    after = pipelined.read_many(list(range(1, 41)))
    assert list(after) == list(before)
    assert {oid: record.refs for oid, record in after.items()} \
        == {oid: record.refs for oid, record in before.items()}


def test_connect_worker_carries_the_pool_config(loaded):
    _, pipelined = loaded
    worker = pipelined.connect_worker()
    try:
        assert isinstance(worker, PipelinedSQLiteBackend)
        assert worker.pool_size == pipelined.pool_size
        assert worker.supports_async_reads
        assert worker.read_many([1, 2])[1].cid == 2
    finally:
        worker.close()


def test_registry_builds_and_tags_the_backend(tmp_path):
    assert backend_info("pipelined-sqlite").has_capability("pipelined")
    assert backend_info("sharded-sqlite").has_capability("pipelined")
    backend = create_backend("pipelined-sqlite",
                             path=str(tmp_path / "reg.db"), pool_size=2)
    try:
        assert isinstance(backend, PipelinedSQLiteBackend)
        assert backend.supports_async_reads
        assert backend.stats()["pool_size"] == 2
    finally:
        backend.close()

"""Discrete-event engine tests."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment


class TestTimeouts:
    def test_single_timeout_advances_clock(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5.0)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [5.0]

    def test_sequential_timeouts_accumulate(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(1.0)
            log.append(env.now)
            yield env.timeout(2.0)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [1.0, 3.0]

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_zero_timeout_fires_immediately(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(0.0)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [0.0]


class TestProcessInterleaving:
    def test_two_processes_interleave_by_time(self):
        env = Environment()
        log = []

        def worker(name, delay):
            yield env.timeout(delay)
            log.append((name, env.now))

        env.process(worker("slow", 10.0))
        env.process(worker("fast", 1.0))
        env.run()
        assert log == [("fast", 1.0), ("slow", 10.0)]

    def test_simultaneous_events_fire_in_schedule_order(self):
        env = Environment()
        log = []

        def worker(name):
            yield env.timeout(1.0)
            log.append(name)

        env.process(worker("a"))
        env.process(worker("b"))
        env.run()
        assert log == ["a", "b"]

    def test_run_until_stops_early(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(100.0)
            log.append("late")

        env.process(proc())
        env.run(until=10.0)
        assert log == []
        assert env.now == 10.0

    def test_process_return_value_on_completion_event(self):
        env = Environment()

        def child():
            yield env.timeout(1.0)
            return 42

        results = []

        def parent():
            proc = env.process(child())
            yield proc
            results.append(proc.value)

        env.process(parent())
        env.run()
        assert results == [42]

    def test_yielding_non_event_raises(self):
        env = Environment()

        def bad():
            yield 7  # type: ignore[misc]

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()


class TestManualEvents:
    def test_succeed_wakes_waiter(self):
        env = Environment()
        gate = env.event()
        log = []

        def waiter():
            yield gate
            log.append(("woke", env.now, gate.value))

        def opener():
            yield env.timeout(3.0)
            gate.succeed("open")

        env.process(waiter())
        env.process(opener())
        env.run()
        assert log == [("woke", 3.0, "open")]

    def test_double_succeed_rejected(self):
        env = Environment()
        gate = env.event()
        gate.succeed()
        with pytest.raises(SimulationError):
            gate.succeed()


class TestResources:
    def test_fifo_queueing(self):
        env = Environment()
        disk = env.resource(capacity=1, name="disk")
        log = []

        def client(name, service):
            request = disk.request()
            yield request
            start = env.now
            yield env.timeout(service)
            disk.release()
            log.append((name, start, env.now))

        env.process(client("a", 2.0))
        env.process(client("b", 1.0))
        env.run()
        assert log == [("a", 0.0, 2.0), ("b", 2.0, 3.0)]

    def test_capacity_two_serves_in_parallel(self):
        env = Environment()
        pool = env.resource(capacity=2)
        done = []

        def client(name):
            request = pool.request()
            yield request
            yield env.timeout(1.0)
            pool.release()
            done.append((name, env.now))

        for name in ("a", "b", "c"):
            env.process(client(name))
        env.run()
        assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0)]

    def test_mean_wait_tracked(self):
        env = Environment()
        disk = env.resource(capacity=1)

        def client(service):
            request = disk.request()
            yield request
            yield env.timeout(service)
            disk.release()

        env.process(client(4.0))
        env.process(client(1.0))
        env.run()
        assert disk.total_served == 2
        assert disk.mean_wait == pytest.approx(2.0)  # (0 + 4) / 2.

    def test_release_idle_rejected(self):
        env = Environment()
        disk = env.resource()
        with pytest.raises(SimulationError):
            disk.release()

    def test_queue_length_visible(self):
        env = Environment()
        disk = env.resource(capacity=1)
        observed = []

        def hog():
            request = disk.request()
            yield request
            yield env.timeout(5.0)
            disk.release()

        def prober():
            yield env.timeout(1.0)
            request = disk.request()
            observed.append(disk.queue_length)
            yield request
            disk.release()

        env.process(hog())
        env.process(prober())
        env.run()
        assert observed == [1]

    def test_bad_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.resource(capacity=0)

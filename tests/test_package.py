"""Package-level sanity: public API surface, version, error hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    ClusteringError,
    GenerationError,
    ParameterError,
    PageFull,
    ReportingError,
    ReproError,
    SimulationError,
    StorageError,
    UnknownObject,
    WorkloadError,
)


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_matches_metadata(self):
        from repro._version import __version__
        assert repro.__version__ == __version__
        assert repro.__version__.count(".") == 2

    def test_key_entry_points_importable(self):
        from repro import (
            DSTCPolicy, OCBBenchmark, ObjectStore, WorkloadRunner)
        from repro.core import GenericOperationsRunner
        from repro.comparators import OO1Benchmark, OO7Benchmark
        from repro.multiuser import MultiClientRunner, SimulatedMultiUser
        from repro.sim import Environment
        assert all((DSTCPolicy, OCBBenchmark, ObjectStore, WorkloadRunner,
                    GenericOperationsRunner, OO1Benchmark, OO7Benchmark,
                    MultiClientRunner, SimulatedMultiUser, Environment))


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        ParameterError, GenerationError, StorageError, PageFull,
        UnknownObject, ClusteringError, WorkloadError, SimulationError,
        ReportingError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_parameter_error_is_value_error(self):
        assert issubclass(ParameterError, ValueError)

    def test_unknown_object_is_key_error(self):
        assert issubclass(UnknownObject, KeyError)

    def test_page_full_is_storage_error(self):
        assert issubclass(PageFull, StorageError)

    def test_single_except_clause_catches_everything(self):
        caught = []
        for exc in (ParameterError("x"), StorageError("y"),
                    WorkloadError("z")):
            try:
                raise exc
            except ReproError as err:
                caught.append(err)
        assert len(caught) == 3

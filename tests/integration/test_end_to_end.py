"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import pytest

from repro import (
    DSTCParameters,
    DSTCPolicy,
    DROPolicy,
    NoClustering,
    OCBBenchmark,
    StaticPolicy,
    StoreConfig,
)
from repro.clustering.dro import DROParameters
from repro.core.experiment import ClusteringExperiment
from repro.core.generation import generate_database
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.core.presets import preset
from repro.core.workload import WorkloadRunner
from repro.multiuser.runner import MultiClientRunner


def traversal_setup(seed=31):
    """A locality-rich database + traversal workload (clustering-friendly)."""
    db_params = DatabaseParameters(
        num_classes=1, max_nref=3, base_size=30, num_objects=800,
        num_ref_types=3, fixed_tref=((3, 3, 3),), fixed_cref=((1, 1, 1),),
        ref_zone=12, seed=seed)
    database, _ = generate_database(db_params)
    workload = WorkloadParameters(
        p_set=0.0, p_simple=1.0, p_hierarchy=0.0, p_stochastic=0.0,
        simple_depth=4, cold_n=2, hot_n=12, max_visits=400)
    return database, workload


def load(database, buffer_pages=32, scrambled=False):
    """Bulk-load in oid order, or in a scrambled order.

    Creation order is already zone-local for RefZone databases, so tests
    that must demonstrate a clustering *win* start from a scrambled
    layout (a database that aged badly), while layout-validity tests use
    the plain order.
    """
    store = StoreConfig(page_size=512, buffer_pages=buffer_pages).build()
    records = database.to_records()
    order = sorted(records)
    if scrambled:
        from repro.rand.lewis_payne import LewisPayne
        LewisPayne(999).shuffle(order)
    store.bulk_load(records.values(), order=order)
    store.reset_stats()
    return store


class TestFullPipeline:
    def test_generate_load_run_report(self):
        database, workload = traversal_setup()
        store = load(database)
        report = WorkloadRunner(database, store, workload).run()
        assert report.warm.transaction_count == 12
        assert report.warm_reads_per_transaction > 0.0

    def test_presets_run_end_to_end(self):
        db_params, _ = preset("default-small")
        workload = WorkloadParameters(cold_n=2, hot_n=6, set_depth=2,
                                      simple_depth=2, hierarchy_depth=2,
                                      stochastic_depth=5, max_visits=200)
        bench = OCBBenchmark(db_params, workload,
                             StoreConfig(buffer_pages=64))
        result = bench.run()
        assert result.report.warm.transaction_count == 6


class TestPolicyShootout:
    """Every policy must produce a valid layout; DSTC must beat none."""

    def run_policy(self, policy, seed=31):
        database, workload = traversal_setup(seed)
        store = load(database, scrambled=True)
        experiment = ClusteringExperiment(database, store, policy, workload,
                                          label=policy.name)
        return experiment.run()

    def test_dstc_beats_no_clustering(self):
        dstc = self.run_policy(DSTCPolicy(DSTCParameters(
            observation_period=14, selection_threshold=1,
            unit_weight_threshold=1.0)))
        assert dstc.gain_factor > 1.0

    def test_dro_improves_layout(self):
        dro = self.run_policy(DROPolicy(DROParameters(
            min_heat=1, min_transition=1)))
        assert dro.after is not None
        assert dro.gain_factor > 0.8  # Must at least not wreck the layout.

    def test_static_depth_first_is_valid(self):
        database, workload = traversal_setup()
        store = load(database)
        policy = StaticPolicy(database.to_records(), strategy="depth_first")
        result = ClusteringExperiment(database, store, policy, workload,
                                      label="static").run()
        assert result.after is not None
        assert sorted(store.current_order()) == sorted(database.objects)

    def test_no_clustering_baseline(self):
        result = self.run_policy(NoClustering())
        assert result.after is None
        assert result.gain_factor == 1.0


class TestMultiUserIntegration:
    def test_multi_client_over_clustered_store(self):
        database, workload = traversal_setup()
        store = load(database)
        policy = DSTCPolicy(DSTCParameters(observation_period=14,
                                           selection_threshold=1,
                                           unit_weight_threshold=1.0))
        ClusteringExperiment(database, store, policy, workload).run()
        multi = WorkloadParameters(
            clients=2, cold_n=1, hot_n=4, p_set=0.0, p_simple=1.0,
            p_hierarchy=0.0, p_stochastic=0.0, simple_depth=3,
            max_visits=200)
        report = MultiClientRunner(database, store, multi).run()
        assert report.merged_warm.transaction_count == 8


class TestCrossSeedStability:
    """The clustering win is not an artefact of one seed."""

    @pytest.mark.parametrize("seed", [7, 101, 4242])
    def test_dstc_gain_across_seeds(self, seed):
        database, workload = traversal_setup(seed)
        store = load(database, scrambled=True)
        policy = DSTCPolicy(DSTCParameters(observation_period=14,
                                           selection_threshold=1,
                                           unit_weight_threshold=1.0))
        result = ClusteringExperiment(database, store, policy,
                                      workload).run()
        assert result.gain_factor > 1.2, f"seed {seed}"

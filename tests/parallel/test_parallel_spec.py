"""WorkerSpec / ParallelConfig / WorkerResult: validation and pickling."""

from __future__ import annotations

import pickle

import pytest

from repro.core.metrics import PhaseReport
from repro.core.workload import WorkloadReport
from repro.errors import ParameterError
from repro.parallel import ParallelConfig, WorkerResult, WorkerSpec


class TestParallelConfig:
    def test_defaults_are_wal_with_busy_budget(self):
        config = ParallelConfig()
        assert config.journal_mode == "WAL"
        assert config.busy_timeout_ms > 0
        assert config.parallel is True
        assert config.synchronous == "NORMAL"

    def test_rejects_negative_busy_timeout(self):
        with pytest.raises(ParameterError):
            ParallelConfig(busy_timeout_ms=-1)

    def test_rejects_unknown_start_method(self):
        with pytest.raises(ParameterError):
            ParallelConfig(start_method="teleport")

    def test_rejects_zero_max_workers(self):
        with pytest.raises(ParameterError):
            ParallelConfig(max_workers=0)

    def test_accepts_standard_start_methods(self):
        for method in (None, "fork", "spawn", "forkserver"):
            assert ParallelConfig(start_method=method).start_method == method


class TestWorkerSpec:
    def test_rejects_negative_client_id(self, small_database,
                                        small_workload):
        with pytest.raises(ParameterError):
            WorkerSpec(client_id=-1, database=small_database,
                       parameters=small_workload, backend="sqlite")

    def test_round_trips_through_pickle(self, small_database,
                                        small_workload):
        """The spec must survive every multiprocessing start method,
        which all ship arguments as pickles."""
        spec = WorkerSpec(client_id=2, database=small_database,
                          parameters=small_workload, backend="sqlite",
                          backend_options={"path": "/tmp/x.db",
                                           "journal_mode": "WAL"},
                          shared=True)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.client_id == 2
        assert clone.backend == "sqlite"
        assert clone.backend_options["journal_mode"] == "WAL"
        assert clone.shared is True
        assert clone.database.num_objects == small_database.num_objects
        assert clone.database.catalog() == small_database.catalog()
        assert clone.parameters == small_workload


class TestWorkerResult:
    def test_transactions_counts_both_phases(self):
        report = WorkloadReport(cold=PhaseReport(name="cold"),
                                warm=PhaseReport(name="warm"))
        result = WorkerResult(client_id=0, pid=123, report=report,
                              wall_seconds=0.5, setup_seconds=0.1)
        assert result.transactions == 0
        assert result.busy_retries == 0

    def test_round_trips_through_pickle(self):
        report = WorkloadReport(cold=PhaseReport(name="cold"),
                                warm=PhaseReport(name="warm"))
        result = WorkerResult(client_id=1, pid=99, report=report,
                              wall_seconds=1.0, setup_seconds=0.2,
                              busy_retries=3, busy_wait_seconds=0.01,
                              backend_stats={"journal_mode": "wal"})
        clone = pickle.loads(pickle.dumps(result))
        assert clone.busy_retries == 3
        assert clone.backend_stats["journal_mode"] == "wal"

"""ParallelRunner: determinism vs the in-process runner, report shape.

The subsystem's contract is pinned here: a process-parallel run produces
byte-identical *logical* metrics (per-client transaction mix, objects
visited, truncations) to the in-process
:class:`~repro.multiuser.runner.MultiClientRunner` on the same seed —
for a shared SQLite file and for per-worker simulated replicas alike.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.core.generation import generate_database
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.errors import WorkloadError
from repro.multiuser.runner import MultiClientRunner, MultiUserReport
from repro.parallel import ParallelConfig, ParallelRunner

PARAMS = WorkloadParameters(clients=3, cold_n=2, hot_n=8,
                            set_depth=2, simple_depth=2,
                            hierarchy_depth=2, stochastic_depth=5,
                            max_visits=150)

#: Config used throughout: small busy budget, platform start method.
CONFIG = ParallelConfig(busy_timeout_ms=2000)


@pytest.fixture(scope="module")
def parallel_database():
    params = DatabaseParameters(num_classes=6, max_nref=4, base_size=25,
                                num_objects=220, num_ref_types=4, seed=1998)
    database, _ = generate_database(params, validate=True)
    return database


def _exit_hard(spec):
    """Worker body that dies without reporting (see crash-cleanup test)."""
    import multiprocessing

    if multiprocessing.parent_process() is None:
        # Sequential fallback: we ARE the test process — fail loudly
        # instead of killing pytest.
        raise RuntimeError("worker failure (sequential fallback)")
    os._exit(13)


def _logical_signature(reports):
    """Per-client logical metrics, phase by phase, kind by kind."""
    signature = []
    for report in reports:
        for phase in (report.cold, report.warm):
            for kind, stats in sorted(phase.per_kind.items()):
                signature.append((phase.name, kind.value, stats.count,
                                  stats.visits, stats.distinct_objects,
                                  stats.truncated))
    return tuple(signature)


class TestDeterminism:
    @pytest.mark.parametrize("backend", ["sqlite", "simulated"])
    def test_parallel_equals_in_process(self, parallel_database, backend):
        parallel = ParallelRunner(parallel_database, backend, PARAMS,
                                  config=CONFIG).run()
        runner = MultiClientRunner(parallel_database, backend, PARAMS)
        in_process = runner.run()
        close = getattr(runner.store, "close", None)
        if close is not None:
            close()
        assert _logical_signature([w.report for w in parallel.workers]) \
            == _logical_signature(in_process.clients)

    def test_sequential_fallback_equals_parallel(self, parallel_database):
        """parallel=False runs the same specs in-process — same metrics."""
        contended = ParallelRunner(parallel_database, "sqlite", PARAMS,
                                   config=CONFIG).run()
        sequential = ParallelRunner(
            parallel_database, "sqlite", PARAMS,
            config=ParallelConfig(busy_timeout_ms=2000,
                                  parallel=False)).run()
        assert sequential.executed_parallel is False
        assert _logical_signature([w.report for w in contended.workers]) \
            == _logical_signature([w.report for w in sequential.workers])

    def test_repeated_runs_identical(self, parallel_database):
        first = ParallelRunner(parallel_database, "sqlite", PARAMS,
                               config=CONFIG).run()
        second = ParallelRunner(parallel_database, "sqlite", PARAMS,
                                config=CONFIG).run()
        assert _logical_signature([w.report for w in first.workers]) \
            == _logical_signature([w.report for w in second.workers])


class TestExecutionModes:
    def test_sqlite_runs_shared_with_wal(self, parallel_database):
        report = ParallelRunner(parallel_database, "sqlite", PARAMS,
                                config=CONFIG).run()
        assert report.mode == "shared"
        assert report.worker_count == PARAMS.clients
        for worker in report.workers:
            assert worker.backend_stats["journal_mode"] == "wal"
            assert worker.backend_stats["busy_timeout_ms"] == 2000

    def test_workers_ran_as_distinct_processes(self, parallel_database):
        report = ParallelRunner(parallel_database, "sqlite", PARAMS,
                                config=CONFIG).run()
        if report.executed_parallel:
            pids = {worker.pid for worker in report.workers}
            assert os.getpid() not in pids
            assert len(pids) == PARAMS.clients

    def test_simulated_runs_replicated(self, parallel_database):
        report = ParallelRunner(parallel_database, "simulated", PARAMS,
                                config=CONFIG).run()
        assert report.mode == "replicated"
        # Cost-model engines keep their simulated counters in parallel
        # (the small database is fully buffer-resident, so the evidence
        # is buffer traffic, not page faults).
        totals = report.merged_warm.totals
        assert totals.buffer_hits + totals.buffer_misses > 0

    def test_memory_runs_replicated(self, parallel_database):
        report = ParallelRunner(parallel_database, "memory", PARAMS,
                                config=CONFIG).run()
        assert report.mode == "replicated"
        assert report.total_transactions == \
            PARAMS.clients * (PARAMS.cold_n + PARAMS.hot_n)

    def test_explicit_path_is_kept_and_loaded_once(self, parallel_database,
                                                   tmp_path):
        path = str(tmp_path / "explicit.db")
        report = ParallelRunner(
            parallel_database, "sqlite", PARAMS, config=CONFIG,
            backend_options={"path": path}).run()
        assert report.mode == "shared"
        assert os.path.exists(path)
        # A second run attaches to the existing file instead of reloading.
        again = ParallelRunner(
            parallel_database, "sqlite", PARAMS, config=CONFIG,
            backend_options={"path": path}).run()
        assert again.total_transactions == report.total_transactions

    def test_temp_storage_is_cleaned_up(self, parallel_database):
        import tempfile
        before = set(glob.glob(os.path.join(tempfile.gettempdir(),
                                            "ocb-parallel-*")))
        ParallelRunner(parallel_database, "sqlite", PARAMS,
                       config=CONFIG).run()
        after = set(glob.glob(os.path.join(tempfile.gettempdir(),
                                           "ocb-parallel-*")))
        assert after == before

    def test_dead_worker_does_not_leak_temp_storage(self, parallel_database,
                                                    monkeypatch):
        """A worker killed mid-run still tears the temp directory down.

        The temp shared-storage directory is managed by a context
        manager around the whole load/spawn/execute body, so even a
        broken pool — here every worker ``os._exit``\\ s before
        reporting — unwinds through the cleanup instead of leaking
        ``ocb-parallel-*`` directories.
        """
        import multiprocessing
        import tempfile

        from repro.parallel import runner as runner_module

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        created = []
        real_mkdtemp = tempfile.mkdtemp

        def capturing_mkdtemp(*args, **kwargs):
            path = real_mkdtemp(*args, **kwargs)
            created.append(path)
            return path

        monkeypatch.setattr(runner_module.tempfile, "mkdtemp",
                            capturing_mkdtemp)
        # Forked children inherit the patched module, so every worker
        # dies without ever returning a result.
        monkeypatch.setattr(runner_module, "run_worker", _exit_hard)
        runner = ParallelRunner(
            parallel_database, "sqlite", PARAMS,
            config=ParallelConfig(busy_timeout_ms=2000,
                                  start_method="fork"))
        with pytest.raises(Exception):
            runner.run()
        assert len(created) == 1
        assert not os.path.exists(created[0])

    def test_memory_path_falls_back_to_replicated(self, parallel_database):
        report = ParallelRunner(
            parallel_database, "sqlite", PARAMS, config=CONFIG,
            backend_options={"path": ":memory:"}).run()
        assert report.mode == "replicated"

    def test_rejects_backend_instances(self, parallel_database):
        from repro.backends import MemoryBackend
        with pytest.raises(WorkloadError, match="name"):
            ParallelRunner(parallel_database, MemoryBackend(), PARAMS)

    def test_rejects_unknown_backend(self, parallel_database):
        with pytest.raises(WorkloadError, match="unknown backend"):
            ParallelRunner(parallel_database, "teleport", PARAMS).run()

    def test_mistagged_concurrent_backend_fails_loudly(self,
                                                       parallel_database):
        """A backend registered 'concurrent' whose engine cannot share
        storage must fail before any worker spawns, not run workers
        against freshly-created empty replicas."""
        from repro.backends import (
            MemoryBackend,
            register_backend,
            unregister_backend,
        )
        register_backend("mistagged", lambda config, **opts: MemoryBackend(),
                         "claims concurrency it does not implement",
                         capabilities=("concurrent",), overwrite=True)
        try:
            with pytest.raises(WorkloadError,
                               match="supports_concurrent_access"):
                ParallelRunner(parallel_database, "mistagged", PARAMS,
                               config=CONFIG).run()
        finally:
            unregister_backend("mistagged")

    def test_stale_same_size_storage_refused(self, parallel_database,
                                             tmp_path):
        """A file with the right object *count* but different content
        (another seed) must be refused, not silently benchmarked."""
        other_params = DatabaseParameters(num_classes=6, max_nref=4,
                                          base_size=25, num_objects=220,
                                          num_ref_types=4, seed=2024)
        other, _ = generate_database(other_params)
        path = str(tmp_path / "seeded.db")
        ParallelRunner(other, "sqlite", PARAMS, config=CONFIG,
                       backend_options={"path": path}).run()
        with pytest.raises(WorkloadError, match="stale"):
            ParallelRunner(parallel_database, "sqlite", PARAMS,
                           config=CONFIG,
                           backend_options={"path": path}).run()

    def test_mismatched_existing_storage_refused(self, parallel_database,
                                                 tmp_path):
        from repro.backends import SQLiteBackend
        from repro.store.serializer import StoredObject
        path = str(tmp_path / "stale.db")
        stale = SQLiteBackend(path=path, journal_mode="WAL")
        stale.bulk_load([StoredObject(oid=1, cid=1, filler=4)])
        stale.close()
        with pytest.raises(WorkloadError, match="mismatched"):
            ParallelRunner(parallel_database, "sqlite", PARAMS,
                           config=CONFIG,
                           backend_options={"path": path}).run()


class TestParallelReport:
    @pytest.fixture(scope="class")
    def report(self, parallel_database):
        return ParallelRunner(parallel_database, "sqlite", PARAMS,
                              config=CONFIG).run()

    def test_folds_into_multiuser_shape(self, report):
        multiuser = report.to_multiuser()
        assert isinstance(multiuser, MultiUserReport)
        assert multiuser.client_count == PARAMS.clients
        assert multiuser.backend_name == "sqlite"
        assert multiuser.merged_warm.transaction_count == \
            PARAMS.clients * PARAMS.hot_n

    def test_merged_percentiles_cover_every_transaction(self, report):
        warm = report.warm_wall_percentiles
        assert warm.count == PARAMS.clients * PARAMS.hot_n
        assert 0.0 < warm.p50 <= warm.p95 <= warm.p99
        cold = report.cold_wall_percentiles
        assert cold.count == PARAMS.clients * PARAMS.cold_n

    def test_per_worker_percentiles(self, report):
        for index in range(report.worker_count):
            wall = report.worker_wall_percentiles(index)
            assert wall.count == PARAMS.hot_n

    def test_throughput_and_describe(self, report):
        assert report.total_transactions == \
            PARAMS.clients * (PARAMS.cold_n + PARAMS.hot_n)
        assert report.throughput > 0.0
        text = report.describe()
        assert "workers" in text and "busy retries" in text

    def test_contention_counters_aggregate(self, report):
        assert report.busy_retries == \
            sum(worker.busy_retries for worker in report.workers)
        assert report.busy_wait_seconds >= 0.0

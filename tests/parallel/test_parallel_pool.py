"""ProcessPool: ordered fan-out, fallbacks, error propagation."""

from __future__ import annotations

import os

import pytest

from repro.errors import ParameterError
from repro.parallel import ProcessPool


def _square(x):
    return x * x


def _pid_of(_):
    return os.getpid()


def _explode(x):
    raise ValueError(f"boom {x}")


def _explode_oserror(x):
    raise OSError(f"work failed {x}")


class TestProcessPool:
    def test_rejects_zero_processes(self):
        with pytest.raises(ParameterError):
            ProcessPool(processes=0)

    def test_results_in_submission_order(self):
        pool = ProcessPool(processes=3)
        assert pool.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_items(self):
        pool = ProcessPool(processes=2)
        assert pool.map(_square, []) == []
        assert pool.executed_parallel is False

    def test_single_item_still_uses_a_worker_process(self):
        """The one-worker scaling point must pay the same spawn cost as
        every wider point, or the speedup baseline lies."""
        pool = ProcessPool(processes=4)
        (pid,) = pool.map(_pid_of, [0])
        assert pool.executed_parallel is True
        assert pid != os.getpid()

    def test_parallel_false_runs_sequentially(self):
        pool = ProcessPool(processes=4, parallel=False)
        assert pool.map(_pid_of, [0, 1]) == [os.getpid(), os.getpid()]
        assert pool.executed_parallel is False

    def test_parallel_map_uses_worker_processes(self):
        pool = ProcessPool(processes=2)
        pids = pool.map(_pid_of, [0, 1])
        assert pool.executed_parallel is True
        assert all(pid != os.getpid() for pid in pids)

    def test_worker_exception_propagates(self):
        pool = ProcessPool(processes=2)
        with pytest.raises(ValueError, match="boom"):
            pool.map(_explode, [1, 2])

    def test_sequential_exception_propagates(self):
        pool = ProcessPool(processes=2, parallel=False)
        with pytest.raises(ValueError, match="boom 1"):
            pool.map(_explode, [1, 2])

    def test_executed_parallel_resets_between_maps(self):
        pool = ProcessPool(processes=2)
        pool.map(_square, [1, 2])
        assert pool.executed_parallel is True
        pool.parallel = False
        pool.map(_square, [5])
        assert pool.executed_parallel is False

    def test_worker_exception_is_not_masked_by_fallback(self):
        """An OSError raised by the *work* propagates — it must never be
        mistaken for pool-creation failure and silently re-run."""
        pool = ProcessPool(processes=2)
        with pytest.raises(OSError, match="work failed"):
            pool.map(_explode_oserror, [1, 2])
        assert pool.executed_parallel is False

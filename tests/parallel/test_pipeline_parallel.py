"""Lazy and pipelined flags across the process boundary.

``Scenario.lazy`` / ``Scenario.pipeline`` must survive the trip through
:class:`WorkerSpec` into every worker's session — process runs used to
refuse lazy mode outright — and the merged :class:`ParallelReport`
must surface what only the engines saw: decodes avoided, the widest
concurrent fan-out, the pooled wait time.
"""

from __future__ import annotations

from repro.core.generation import generate_database
from repro.core.presets import default_database_parameters
from repro.core.scenario import MixEntry, Scenario, ScenarioRunner, \
    WorkloadMix
from repro.parallel.report import ParallelReport
from repro.parallel.spec import ParallelConfig, WorkerSpec, WorkerResult


def _worker_result(client_id, stats):
    return WorkerResult(client_id=client_id, pid=1000 + client_id,
                        report=None, wall_seconds=0.1, setup_seconds=0.01,
                        backend_stats=stats)


def test_parallel_report_folds_the_concurrency_counters():
    report = ParallelReport(workers=[
        _worker_result(0, {"decodes_avoided": 30, "max_inflight_reads": 2,
                           "pool_wait_seconds": 0.25}),
        _worker_result(1, {"decodes_avoided": 12, "max_inflight_reads": 4,
                           "pool_wait_seconds": 0.5}),
        _worker_result(2, {}),  # an engine without the concurrent layer
    ])
    assert report.decodes_avoided == 42
    assert report.max_inflight_reads == 4  # widest single worker, not a sum
    assert report.pool_wait_seconds == 0.75


def test_parallel_report_counters_default_to_zero():
    report = ParallelReport(workers=[])
    assert report.decodes_avoided == 0
    assert report.max_inflight_reads == 0
    assert report.pool_wait_seconds == 0.0


def test_worker_spec_carries_the_session_flags():
    spec = WorkerSpec(client_id=0, database=None, parameters=None,
                      backend="sqlite")
    assert spec.lazy is False and spec.pipeline is False
    spec = WorkerSpec(client_id=0, database=None, parameters=None,
                      backend="sqlite", lazy=True, pipeline=True)
    assert spec.lazy is True and spec.pipeline is True


def _walk_scenario(tmp_path, **flags):
    return Scenario(
        mix=WorkloadMix(name="walk", entries=(
            MixEntry("structure_traversal", weight=1.0, depth=4),)),
        clients=2, cold_ops=1, warm_ops=6, seed=11,
        backend="sqlite",
        backend_options={"path": str(tmp_path / "walk.db"),
                         "ref_index": True},
        **flags)


def test_run_processes_accepts_lazy_scenarios(tmp_path):
    """The old lazy refusal is gone: the flag rides the WorkerSpec and
    the merged report carries the avoided decodes."""
    database, _ = generate_database(
        default_database_parameters(scale=0.02, seed=11))
    runner = ScenarioRunner(database,
                            _walk_scenario(tmp_path, lazy=True))
    # Sequential fallback: same specs and worker code path, no fork —
    # deterministic in CI while still exercising the spec plumbing.
    report = runner.run_processes(config=ParallelConfig(parallel=False))
    assert report.decodes_avoided > 0
    assert report.records_decoded == 0
    assert report.total_operations == 2 * 7


def test_run_processes_threads_the_pipeline_flag(tmp_path):
    database, _ = generate_database(
        default_database_parameters(scale=0.02, seed=11))
    scenario = Scenario(
        mix=WorkloadMix(name="walk", entries=(
            MixEntry("structure_traversal", weight=1.0, depth=4),)),
        clients=2, cold_ops=1, warm_ops=6, seed=11,
        backend="pipelined-sqlite", pipeline=True,
        backend_options={"path": str(tmp_path / "pipe.db"),
                         "ref_index": True, "pool_size": 2})
    runner = ScenarioRunner(database, scenario)
    report = runner.run_processes(config=ParallelConfig(parallel=False))
    assert report.total_operations == 2 * 7
    baseline = ScenarioRunner(
        database, Scenario(mix=scenario.mix, clients=2, cold_ops=1,
                           warm_ops=6, seed=11, backend="sqlite",
                           backend_options={"ref_index": True})).run()
    # Pipelined process run and plain in-process run visit the same
    # objects per class — the traversal results are mode-invariant.
    def visits(scenario_report):
        return [(row["class"], row["count"], row["objects"])
                for row in scenario_report.merged_warm.to_dict()["per_class"]]
    assert visits(report) == visits(baseline)

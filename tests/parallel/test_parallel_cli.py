"""CLI surface of the parallel subsystem: --processes and ocb scale."""

from __future__ import annotations

import json

from repro.cli import main


class TestMultiuserProcesses:
    def test_processes_runs_and_reports_contention(self, capsys):
        assert main(["multiuser", "--backend", "sqlite",
                     "--processes", "2"]) == 0
        out = capsys.readouterr().out
        assert "worker processes" in out
        assert "shared storage" in out
        assert "busy retries" in out
        assert "merged warm wall-clock" in out

    def test_processes_on_simulated_replicates(self, capsys):
        assert main(["multiuser", "--backend", "simulated",
                     "--processes", "2"]) == 0
        out = capsys.readouterr().out
        assert "replicated storage" in out


class TestScale:
    def test_sweep_table(self, capsys):
        assert main(["scale", "--workers", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Throughput scaling" in out
        assert "speedup" in out
        assert "busy retries" in out

    def test_sweep_json(self, capsys):
        assert main(["scale", "--workers", "1", "--json"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out[out.index("{"):])
        assert document["schema_version"] == 1
        assert document["kind"] == "scale_sweep"
        assert document["system"]["python"]
        assert document["config"]["backend"] == "sqlite"
        points = document["cells"]
        assert len(points) == 1
        point = points[0]
        assert point["workers"] == 1
        assert point["backend"] == "sqlite"
        assert point["transactions"] > 0
        assert point["throughput"] > 0.0
        assert "busy_retries" in point and "warm_p95_ms" in point

"""The tentpole's proof: mutating multi-user mixes genuinely contend.

PR 3 built the busy-retry accounting but could only replay the read-only
transaction mix, so the counters never fired.  The scenario layer runs
*mutating* mixes through the same worker harness — these tests pin the
three properties the ISSUE names:

* a ``write_heavy`` scenario on one shared WAL SQLite file with >= 2
  worker processes records **> 0 busy retries** (real write-write lock
  collisions, counted by the engine);
* the same seed executed in-process (round-robin, one connection)
  records **0** — a single connection cannot collide with itself;
* per-client *logical* metrics are deterministic: identical between the
  in-process and multi-process runs and across repeated multi-process
  runs, because every client's logical decisions derive from its own
  oid partition and RNG substream, never from what concurrent clients
  committed.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.generation import generate_database
from repro.core.parameters import DatabaseParameters
from repro.core.presets import scenario_preset
from repro.core.scenario import ScenarioRunner
from repro.parallel import ParallelConfig

#: Heavily contended shape: 3 writers, enough operations that the WAL
#: write locks overlap on any scheduler.
CLIENTS = 3
COLD_OPS = 2
WARM_OPS = 40

CONFIG = ParallelConfig(busy_timeout_ms=10000)


def make_database():
    params = DatabaseParameters(num_classes=6, max_nref=4, base_size=25,
                                num_objects=220, num_ref_types=4, seed=1998)
    database, _ = generate_database(params, validate=True)
    return database


def make_scenario():
    return replace(scenario_preset("write_heavy"), clients=CLIENTS,
                   cold_ops=COLD_OPS, warm_ops=WARM_OPS)


def logical_signature(report):
    """Per-client per-class logical metrics — nothing wall-clock."""
    signature = []
    for client in report.clients:
        for phase in (client.cold, client.warm):
            for op_class, stats in sorted(phase.per_class.items()):
                signature.append((client.client_id, phase.name, op_class,
                                  stats.count, stats.objects))
    return tuple(signature)


@pytest.fixture(scope="module")
def process_report():
    report = ScenarioRunner(make_database(),
                            make_scenario()).run_processes(config=CONFIG)
    return report


@pytest.fixture(scope="module")
def interleaved_report():
    return ScenarioRunner(make_database(), make_scenario()).run()


class TestBusyRetriesFire:
    def test_every_worker_ran_the_full_protocol(self, process_report):
        assert process_report.client_count == CLIENTS
        for client in process_report.clients:
            assert client.operations == COLD_OPS + WARM_OPS
        assert process_report.write_operations > 0

    def test_shared_storage_mode(self, process_report):
        assert process_report.mode == "shared"
        assert process_report.backend_name == "sqlite"

    def test_processes_record_busy_retries(self, process_report):
        if not process_report.executed_parallel:
            pytest.skip("worker processes unavailable in this environment")
        assert process_report.busy_retries > 0
        assert process_report.busy_wait_seconds > 0.0

    def test_in_process_records_zero(self, interleaved_report):
        assert interleaved_report.mode == "interleaved"
        assert interleaved_report.busy_retries == 0


class TestLogicalDeterminism:
    def test_process_equals_in_process(self, process_report,
                                       interleaved_report):
        assert logical_signature(process_report) == \
            logical_signature(interleaved_report)

    def test_repeated_process_runs_identical(self, process_report):
        again = ScenarioRunner(make_database(),
                               make_scenario()).run_processes(config=CONFIG)
        assert logical_signature(again) == logical_signature(process_report)

    def test_distinct_client_streams(self, process_report):
        per_client = [
            tuple((op_class, stats.count, stats.objects)
                  for op_class, stats
                  in sorted(client.warm.per_class.items()))
            for client in process_report.clients]
        assert len(set(per_client)) == CLIENTS

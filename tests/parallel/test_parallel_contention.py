"""Contention accounting: connect_worker, busy retries, pragma knobs."""

from __future__ import annotations

import os

import pytest

from repro.backends import MemoryBackend, SimulatedBackend, SQLiteBackend
from repro.backends.registry import available_backends
from repro.errors import BackendError
from repro.store.serializer import StoredObject
from repro.store.storage import StoreConfig


def _file_backend(tmp_path, **kwargs):
    kwargs.setdefault("journal_mode", "WAL")
    kwargs.setdefault("synchronous", "NORMAL")
    kwargs.setdefault("busy_timeout_ms", 2000)
    return SQLiteBackend(path=str(tmp_path / "shared.db"), **kwargs)


def _records(n):
    return [StoredObject(oid=i, cid=1, filler=16) for i in range(1, n + 1)]


class TestConnectWorker:
    def test_default_refuses(self):
        for backend in (MemoryBackend(),
                        SimulatedBackend(store_config=StoreConfig(
                            page_size=512, buffer_pages=16))):
            assert backend.supports_concurrent_access is False
            with pytest.raises(BackendError, match="concurrent"):
                backend.connect_worker()

    def test_memory_sqlite_refuses(self):
        backend = SQLiteBackend()
        with pytest.raises(BackendError, match="memory"):
            backend.connect_worker()
        backend.close()

    def test_file_sqlite_shares_data_not_stats(self, tmp_path):
        parent = _file_backend(tmp_path)
        parent.bulk_load(_records(10))
        worker = parent.connect_worker()
        try:
            assert worker.object_count == 10
            assert worker.path == parent.path
            assert worker.journal_mode == parent.journal_mode
            assert worker.busy_timeout_ms == parent.busy_timeout_ms
            # Independent statistics: the worker's reads do not show up
            # on the parent connection.
            worker.read_object(1)
            assert worker.object_accesses == 1
            assert parent.object_accesses == 0
        finally:
            worker.close()
            parent.close()

    def test_worker_sees_parents_committed_writes(self, tmp_path):
        parent = _file_backend(tmp_path)
        parent.bulk_load(_records(5))
        parent.write_object(StoredObject(oid=3, cid=9, filler=16))
        worker = parent.connect_worker()  # connect_worker commits first
        try:
            assert worker.read_object(3).cid == 9
        finally:
            worker.close()
            parent.close()

    def test_concurrent_capability_registered(self):
        tagged = {info.name: info.capabilities
                  for info in available_backends()}
        assert "concurrent" in tagged["sqlite"]
        assert "concurrent" not in tagged["simulated"]
        assert "concurrent" not in tagged["memory"]


class TestBusyRetryAccounting:
    def test_collision_is_counted_then_succeeds(self, tmp_path):
        """A writer that finds the database locked retries inside its
        busy budget, counts every retry, and succeeds once the lock
        holder commits."""
        holder = _file_backend(tmp_path)
        holder.bulk_load(_records(8))
        contender = holder.connect_worker()
        try:
            holder._execute("BEGIN IMMEDIATE")
            holder._execute("UPDATE objects SET cid = 2 WHERE oid = 1")

            # The budget expires while the lock is held: counted + raised.
            short = SQLiteBackend(path=holder.path, journal_mode="WAL",
                                  synchronous="NORMAL", busy_timeout_ms=50)
            with pytest.raises(BackendError, match="locked"):
                short.write_object(StoredObject(oid=2, cid=5, filler=16))
            assert short.busy_retries > 0
            assert short.busy_wait_seconds > 0.0
            short.close()

            holder._commit()
            # With the lock released the contender succeeds cleanly.
            contender.write_object(StoredObject(oid=2, cid=5, filler=16))
            assert contender.read_object(2).cid == 5
        finally:
            contender.close()
            holder.close()

    def test_write_many_retry_applies_the_full_batch(self, tmp_path):
        """A batched write that collides must re-run the *whole* batch
        on retry — a consumed generator would silently update nothing
        (the regression this test pins)."""
        import sqlite3
        import threading

        backend = _file_backend(tmp_path, busy_timeout_ms=5000)
        backend.bulk_load(_records(6))
        # A raw connection holds the write lock, then releases it from
        # a timer thread while the backend is mid-retry.
        raw = sqlite3.connect(backend.path, check_same_thread=False)
        raw.execute("BEGIN IMMEDIATE")
        raw.execute("UPDATE objects SET cid = 9 WHERE oid = 6")
        release = threading.Timer(0.3, raw.commit)
        release.start()
        try:
            batch = [StoredObject(oid=oid, cid=7, filler=16)
                     for oid in (1, 2, 3)]
            backend.write_many(batch)
            assert backend.busy_retries > 0
            for oid in (1, 2, 3):
                assert backend.read_object(oid).cid == 7
        finally:
            release.join()
            raw.close()
            backend.close()

    def test_zero_budget_raises_immediately(self, tmp_path):
        holder = _file_backend(tmp_path)
        holder.bulk_load(_records(4))
        impatient = SQLiteBackend(path=holder.path, journal_mode="WAL",
                                  synchronous="NORMAL", busy_timeout_ms=0)
        try:
            holder._execute("BEGIN IMMEDIATE")
            holder._execute("UPDATE objects SET cid = 2 WHERE oid = 1")
            with pytest.raises(BackendError):
                impatient.write_object(
                    StoredObject(oid=2, cid=5, filler=16))
            assert impatient.busy_retries == 0
            holder._commit()
        finally:
            impatient.close()
            holder.close()

    def test_negative_budget_rejected(self):
        with pytest.raises(BackendError):
            SQLiteBackend(busy_timeout_ms=-1)


class TestStatsExposure:
    def test_stats_report_journal_and_busy_knobs(self, tmp_path):
        backend = _file_backend(tmp_path, busy_timeout_ms=1234)
        try:
            stats = backend.stats()
            assert stats["journal_mode"] == "wal"
            assert stats["busy_timeout_ms"] == 1234
            assert stats["busy_retries"] == 0
            assert stats["busy_wait_seconds"] == 0.0
        finally:
            backend.close()

    def test_store_config_knobs_reach_the_engine(self, tmp_path):
        from repro.backends import create_backend

        config = StoreConfig(page_size=512, buffer_pages=16,
                             journal_mode="WAL", busy_timeout_ms=777)
        backend = create_backend("sqlite", config,
                                 path=str(tmp_path / "cfg.db"))
        try:
            stats = backend.stats()
            assert stats["journal_mode"] == "wal"
            assert stats["busy_timeout_ms"] == 777
        finally:
            backend.close()

    def test_explicit_options_override_store_config(self, tmp_path):
        from repro.backends import create_backend

        config = StoreConfig(journal_mode="WAL", busy_timeout_ms=777)
        backend = create_backend("sqlite", config,
                                 path=str(tmp_path / "ovr.db"),
                                 journal_mode="DELETE",
                                 busy_timeout_ms=55)
        try:
            stats = backend.stats()
            assert stats["journal_mode"] == "delete"
            assert stats["busy_timeout_ms"] == 55
        finally:
            backend.close()

    def test_reset_stats_zeroes_contention_counters(self, tmp_path):
        backend = _file_backend(tmp_path)
        backend.bulk_load(_records(3))
        backend.busy_retries = 7
        backend.busy_wait_seconds = 0.5
        backend.reset_stats()
        assert backend.busy_retries == 0
        assert backend.busy_wait_seconds == 0.0
        backend.close()

    def test_wal_survives_drop_caches(self, tmp_path):
        """The cold-restart path reopens the file with the same pragmas."""
        backend = _file_backend(tmp_path)
        backend.bulk_load(_records(3))
        assert backend.drop_caches() is True
        assert backend.stats()["journal_mode"] == "wal"
        assert backend.read_object(1).oid == 1
        backend.close()

"""Shard affinity's proof: aligned lanes never collide, never leave home.

The tentpole guarantee of the sharded engine — run with
``shards == clients`` on a reference-free database and a partitioned
update-only mix, every worker's mutation lane (``oid % clients``) *is*
its home shard, so:

* ``remote_writes == 0`` for every worker — no mutation ever routed to
  a file another worker writes;
* ``busy_retries == 0`` — with disjoint writer lanes there is no lock
  to collide on, deterministically, not just on a quiet host;
* misaligning the shard count (``shards != clients``) makes the same
  counters fire, which proves the accounting measures placement rather
  than always reading zero.

The cross-backend throughput story lives in
``benchmarks/bench_parallel.py``; these tests pin the invariants that
hold on any host, single-core included.
"""

from __future__ import annotations

import pytest

from repro.core.generation import generate_database
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.core.scenario import MixEntry, WorkloadMix
from repro.parallel import ParallelConfig
from repro.parallel.runner import ParallelRunner

CLIENTS = 3
COLD_OPS = 2
WARM_OPS = 30

#: Update-only and reference-free: every operation reads and rewrites
#: exactly one object of the worker's own lane — the fully partitioned
#: write workload the shard function is aligned with.
UPDATE_ONLY = WorkloadMix(name="update_only",
                          entries=(MixEntry("update", weight=1.0),))


def make_database():
    params = DatabaseParameters(num_classes=6, max_nref=0, base_size=25,
                                num_objects=240, num_ref_types=4, seed=1998)
    database, _ = generate_database(params, validate=True)
    return database


def run_sharded(shards):
    runner = ParallelRunner(
        make_database(), "sharded-sqlite",
        WorkloadParameters(cold_n=COLD_OPS, hot_n=WARM_OPS,
                           clients=CLIENTS, seed=1998),
        config=ParallelConfig(busy_timeout_ms=10000, shards=shards),
        backend_options={"ref_index": False},
        mix=UPDATE_ONLY)
    assert runner.shard_count == shards
    return runner.run()


@pytest.fixture(scope="module")
def aligned_report():
    return run_sharded(shards=CLIENTS)


@pytest.fixture(scope="module")
def misaligned_report():
    return run_sharded(shards=CLIENTS + 1)


class TestAlignedLanes:
    def test_full_protocol_ran(self, aligned_report):
        assert aligned_report.worker_count == CLIENTS
        assert aligned_report.mode == "shared"
        for worker in aligned_report.workers:
            assert worker.scenario_report is not None
            assert worker.scenario_report.operations == \
                COLD_OPS + WARM_OPS
            updates = worker.scenario_report.warm.per_class.get("update")
            assert updates is not None and updates.count > 0

    def test_every_worker_homed_on_its_lane(self, aligned_report):
        for worker in aligned_report.workers:
            stats = worker.backend_stats or {}
            assert stats.get("shards") == CLIENTS
            assert stats.get("home_shard") == worker.client_id % CLIENTS

    def test_zero_cross_shard_writes(self, aligned_report):
        for worker in aligned_report.workers:
            stats = worker.backend_stats or {}
            assert int(stats.get("remote_writes", -1)) == 0
            assert int(stats.get("remote_reads", -1)) == 0

    def test_zero_lock_collisions(self, aligned_report):
        # Deterministic, not probabilistic: disjoint writer lanes mean
        # no two workers ever hold the same shard's write lock.
        assert aligned_report.busy_retries == 0
        assert aligned_report.busy_wait_seconds == 0.0


class TestMisalignedLanes:
    def test_counters_fire_when_lanes_cross_shards(self, misaligned_report):
        # Lanes are oid % 3 but shards are oid % 4: most of each lane
        # lives off its worker's home shard, and the accounting says so.
        total_remote = sum(
            int((worker.backend_stats or {}).get("remote_writes", 0))
            for worker in misaligned_report.workers)
        assert total_remote > 0

    def test_logical_work_unchanged(self, aligned_report, misaligned_report):
        # Shard placement is physical only: the logical operation stream
        # per client is identical whatever the shard count.
        def signature(report):
            return tuple(
                (worker.client_id,
                 worker.scenario_report.operations,
                 tuple((op_class, stats.count, stats.objects)
                       for op_class, stats in
                       sorted(worker.scenario_report.warm.per_class.items())))
                for worker in report.workers)

        assert signature(aligned_report) == signature(misaligned_report)

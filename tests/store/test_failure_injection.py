"""Failure injection: the store must fail loudly, never silently.

A benchmark's numbers are worthless if the substrate quietly corrupts or
drops data; these tests inject faults and assert the store either raises
a :class:`~repro.errors.StorageError` or keeps serving correct bytes.
"""

from __future__ import annotations

import pytest

from repro.errors import StorageError, UnknownObject
from repro.store.serializer import StoredObject
from repro.store.storage import ObjectStore


def build_store(page_size=256, buffer_pages=4, count=12, filler=40):
    store = ObjectStore(page_size=page_size, buffer_pages=buffer_pages)
    records = [StoredObject(oid=i + 1, cid=1, refs=(1,), filler=filler)
               for i in range(count)]
    store.bulk_load(records)
    store.reset_stats()
    return store, records


class TestDiskCorruption:
    def test_corrupt_page_surfaces_as_storage_error(self):
        store, _ = build_store()
        # Flip the magic bytes of the first object on disk.
        page = bytearray(store.disk.peek(0))
        page[0] ^= 0xFF
        store.disk.poke(0, bytes(page))
        store.drop_caches()
        with pytest.raises(StorageError):
            store.read_object(1)

    def test_zeroed_page_detected(self):
        store, _ = build_store()
        store.disk.poke(0, b"\x00" * 256)
        store.drop_caches()
        with pytest.raises(StorageError):
            store.read_object(1)

    def test_corruption_on_unread_page_does_not_affect_others(self):
        store, records = build_store()
        last = records[-1]
        last_page = store.pages_of(last.oid)[0]
        first_page = store.pages_of(records[0].oid)[0]
        if last_page == first_page:
            pytest.skip("database too small to isolate pages")
        page = bytearray(store.disk.peek(first_page))
        page[0] ^= 0xFF
        store.disk.poke(first_page, bytes(page))
        store.drop_caches()
        assert store.read_object(last.oid) == last


class TestCachePressure:
    def test_thrashing_never_corrupts(self):
        store, records = build_store(buffer_pages=1, filler=200)
        for _ in range(3):
            for record in records:
                assert store.read_object(record.oid) == record
            for record in reversed(records):
                assert store.read_object(record.oid) == record

    def test_dirty_data_survives_thrashing(self):
        store, records = build_store(buffer_pages=1)
        updated = records[0].with_refs((5,))
        store.write_object(updated)
        # Evict the dirty page repeatedly.
        for record in records[1:]:
            store.read_object(record.oid)
        assert store.read_object(1) == updated

    def test_interleaved_updates_and_reorganizations(self):
        store, records = build_store(buffer_pages=2)
        current = {r.oid: r for r in records}
        for round_number in range(3):
            victim = records[round_number].oid
            current[victim] = current[victim].with_refs((victim,))
            store.write_object(current[victim])
            store.reorganize(list(reversed(store.current_order())))
            for oid, record in current.items():
                assert store.read_object(oid) == record


class TestApiMisuse:
    def test_read_after_delete(self):
        store, _ = build_store()
        store.delete_object(3)
        with pytest.raises(UnknownObject):
            store.read_object(3)

    def test_double_delete(self):
        store, _ = build_store()
        store.delete_object(3)
        with pytest.raises(UnknownObject):
            store.delete_object(3)

    def test_reorganize_with_stale_oid_set(self):
        store, _ = build_store()
        order = store.current_order()
        store.delete_object(order[0])
        with pytest.raises(StorageError):
            store.reorganize(order)  # Contains the deleted oid.

    def test_insert_then_read_consistency_after_corrupt_unrelated_write(self):
        store, _ = build_store()
        new = StoredObject(oid=999, cid=7, filler=10)
        store.insert_object(new)
        store.flush()
        store.drop_caches()
        assert store.read_object(999) == new

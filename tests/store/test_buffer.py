"""Buffer pool tests: hits/misses, eviction policies, write-back."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, StorageError
from repro.store.buffer import BufferPool, ReplacementPolicy
from repro.store.disk import SimulatedDisk

PAGE = 64


def make_pool(capacity=3, policy=ReplacementPolicy.LRU, on_evict=None):
    disk = SimulatedDisk(page_size=PAGE)
    return BufferPool(disk, capacity, policy, on_evict=on_evict), disk


class TestBasics:
    def test_first_access_is_miss(self):
        pool, _ = make_pool()
        assert pool.access(0) is False
        assert pool.stats.misses == 1

    def test_second_access_is_hit(self):
        pool, _ = make_pool()
        pool.access(0)
        assert pool.access(0) is True
        assert pool.stats.hits == 1

    def test_capacity_never_exceeded(self):
        pool, _ = make_pool(capacity=3)
        for pid in range(10):
            pool.access(pid)
            assert len(pool) <= 3

    def test_miss_reads_disk(self):
        pool, disk = make_pool()
        pool.access(7)
        assert disk.stats.reads == 1

    def test_hit_does_not_read_disk(self):
        pool, disk = make_pool()
        pool.access(7)
        pool.access(7)
        assert disk.stats.reads == 1

    def test_accesses_and_hit_ratio(self):
        pool, _ = make_pool()
        pool.access(0)
        pool.access(0)
        pool.access(1)
        assert pool.stats.accesses == 3
        assert pool.stats.hit_ratio == pytest.approx(1 / 3)

    def test_rejects_zero_capacity(self):
        disk = SimulatedDisk(page_size=PAGE)
        with pytest.raises(ParameterError):
            BufferPool(disk, 0)

    def test_contains_and_resident(self):
        pool, _ = make_pool()
        pool.access(4)
        assert 4 in pool
        assert pool.is_resident(4)
        assert pool.resident_pages() == {4}


class TestLRU:
    def test_evicts_least_recently_used(self):
        pool, _ = make_pool(capacity=2, policy=ReplacementPolicy.LRU)
        pool.access(0)
        pool.access(1)
        pool.access(0)      # 1 is now the LRU victim.
        pool.access(2)
        assert pool.resident_pages() == {0, 2}

    def test_eviction_counter(self):
        pool, _ = make_pool(capacity=1)
        pool.access(0)
        pool.access(1)
        assert pool.stats.evictions == 1


class TestFIFO:
    def test_evicts_in_load_order(self):
        pool, _ = make_pool(capacity=2, policy=ReplacementPolicy.FIFO)
        pool.access(0)
        pool.access(1)
        pool.access(0)      # Touch does NOT save 0 under FIFO.
        pool.access(2)
        assert pool.resident_pages() == {1, 2}


class TestMRU:
    def test_evicts_most_recently_used(self):
        pool, _ = make_pool(capacity=2, policy=ReplacementPolicy.MRU)
        pool.access(0)
        pool.access(1)      # 1 is MRU.
        pool.access(2)
        assert pool.resident_pages() == {0, 2}


class TestClock:
    def test_second_chance(self):
        pool, _ = make_pool(capacity=2, policy=ReplacementPolicy.CLOCK)
        pool.access(0)
        pool.access(1)
        pool.access(0)      # Reference bit of 0 set again.
        pool.access(2)      # Sweep clears bits; evicts an unreferenced frame.
        assert len(pool) == 2
        assert 2 in pool

    def test_all_referenced_falls_back(self):
        pool, _ = make_pool(capacity=3, policy=ReplacementPolicy.CLOCK)
        for pid in range(3):
            pool.access(pid)
        for pid in range(3):
            pool.access(pid)  # Everything referenced.
        pool.access(99)
        assert 99 in pool
        assert len(pool) == 3


class TestDirtyWriteback:
    def test_dirty_page_written_on_eviction(self):
        pool, disk = make_pool(capacity=1)
        pool.access(0, dirty=True)
        pool.access(1)
        assert disk.stats.writes == 1
        assert pool.stats.dirty_writebacks == 1

    def test_clean_page_not_written(self):
        pool, disk = make_pool(capacity=1)
        pool.access(0)
        pool.access(1)
        assert disk.stats.writes == 0

    def test_flush_writes_only_dirty(self):
        pool, disk = make_pool(capacity=3)
        pool.access(0, dirty=True)
        pool.access(1)
        pool.access(2, dirty=True)
        assert pool.flush() == 2
        assert disk.stats.writes == 2
        assert pool.flush() == 0  # Now clean.

    def test_patch_marks_dirty_and_applies(self):
        pool, disk = make_pool()
        pool.patch(0, 4, b"\xAB\xCD")
        data = pool.peek_data(0)
        assert data[4:6] == b"\xAB\xCD"
        pool.flush()
        assert disk.peek(0)[4:6] == b"\xAB\xCD"

    def test_patch_bounds_checked(self):
        pool, _ = make_pool()
        with pytest.raises(StorageError):
            pool.patch(0, PAGE - 1, b"\x00\x00")

    def test_update_data_validates_length(self):
        pool, _ = make_pool()
        with pytest.raises(StorageError):
            pool.update_data(0, b"short")

    def test_clear_flushes_by_default(self):
        pool, disk = make_pool()
        pool.access(0, dirty=True)
        pool.clear()
        assert disk.stats.writes == 1
        assert len(pool) == 0

    def test_clear_can_discard(self):
        pool, disk = make_pool()
        pool.access(0, dirty=True)
        pool.clear(write_dirty=False)
        assert disk.stats.writes == 0


class TestInstallPage:
    def test_install_avoids_disk_read(self):
        pool, disk = make_pool()
        pool.install_page(9)
        assert disk.stats.reads == 0
        assert 9 in pool

    def test_install_existing_rejected(self):
        pool, _ = make_pool()
        pool.access(1)
        with pytest.raises(StorageError):
            pool.install_page(1)

    def test_install_respects_capacity(self):
        pool, _ = make_pool(capacity=2)
        pool.access(0)
        pool.access(1)
        pool.install_page(2)
        assert len(pool) == 2

    def test_install_with_data(self):
        pool, _ = make_pool()
        payload = b"\x07" * PAGE
        pool.install_page(3, payload)
        assert pool.peek_data(3) == payload

    def test_install_validates_length(self):
        pool, _ = make_pool()
        with pytest.raises(StorageError):
            pool.install_page(3, b"nope")


class TestEvictionCallback:
    def test_callback_invoked_with_page_id(self):
        evicted = []
        pool, _ = make_pool(capacity=1, on_evict=evicted.append)
        pool.access(0)
        pool.access(1)
        assert evicted == [0]

    def test_clear_invokes_callback(self):
        evicted = []
        pool, _ = make_pool(capacity=3, on_evict=evicted.append)
        pool.access(0)
        pool.access(1)
        pool.clear()
        assert sorted(evicted) == [0, 1]


class TestStatsInvariants:
    @settings(max_examples=50, deadline=None)
    @given(accesses=st.lists(st.integers(min_value=0, max_value=9),
                             min_size=1, max_size=200),
           capacity=st.integers(min_value=1, max_value=5),
           policy=st.sampled_from(list(ReplacementPolicy)))
    def test_hits_plus_misses_equals_accesses(self, accesses, capacity, policy):
        pool, _ = make_pool(capacity=capacity, policy=policy)
        for pid in accesses:
            pool.access(pid)
        assert pool.stats.hits + pool.stats.misses == len(accesses)
        assert len(pool) <= capacity
        assert pool.stats.evictions == pool.stats.misses - len(pool)

"""Cost model and simulated clock tests."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.store.costs import DEFAULT_PAGE_SIZE, CostModel, SimClock


class TestCostModel:
    def test_defaults_are_io_dominated(self):
        cost = CostModel()
        assert cost.io_read_time > 100 * cost.cpu_object_time
        assert cost.io_write_time >= cost.io_read_time

    def test_default_page_size_matches_paper(self):
        assert DEFAULT_PAGE_SIZE == 4096

    def test_negative_cost_rejected(self):
        with pytest.raises(ParameterError):
            CostModel(io_read_time=-1.0)
        with pytest.raises(ParameterError):
            CostModel(swizzle_time=-0.1)

    def test_frozen(self):
        cost = CostModel()
        with pytest.raises(AttributeError):
            cost.io_read_time = 5.0  # type: ignore[misc]


class TestSimClock:
    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_rejects_negative(self):
        with pytest.raises(ParameterError):
            SimClock().advance(-0.1)

    def test_marks(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.mark("phase")
        clock.advance(2.5)
        assert clock.since("phase") == pytest.approx(2.5)

    def test_unknown_mark(self):
        with pytest.raises(ParameterError):
            SimClock().since("nope")

    def test_reset(self):
        clock = SimClock()
        clock.advance(3.0)
        clock.mark("m")
        clock.reset()
        assert clock.now == 0.0
        with pytest.raises(ParameterError):
            clock.since("m")

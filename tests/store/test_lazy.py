"""Lazy zero-copy record equivalence: LazyStoredObject == StoredObject.

The fast paths only hold if the lazy view is indistinguishable from the
eager record everywhere a reader looks — every property, every derived
accessor, at every buffer offset.  Hypothesis pins the equivalence over
the same record space the round-trip suite draws from.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.store.serializer import (
    HEADER_SIZE,
    LazyStoredObject,
    StoredObject,
    decode_object,
    decode_object_lazy,
    decode_refs,
    encode_object,
)


def make_record(**overrides):
    defaults = dict(oid=1, cid=2, refs=(3, None, 5),
                    back_refs=((7, 0), (8, 2)), filler=10)
    defaults.update(overrides)
    return StoredObject(**defaults)


record_strategy = st.builds(
    StoredObject,
    oid=st.integers(min_value=1, max_value=2**63 - 1),
    cid=st.integers(min_value=0, max_value=2**31 - 1),
    refs=st.lists(st.one_of(st.none(),
                            st.integers(min_value=1, max_value=2**62)),
                  max_size=20).map(tuple),
    back_refs=st.lists(st.tuples(st.integers(min_value=1, max_value=2**62),
                                 st.integers(min_value=0, max_value=60000)),
                       max_size=20).map(tuple),
    filler=st.integers(min_value=0, max_value=4096),
)


class TestLazyView:
    def test_header_fields_parse_eagerly(self):
        lazy = decode_object_lazy(encode_object(make_record()))
        assert (lazy.oid, lazy.cid, lazy.filler) == (1, 2, 10)
        assert not lazy.materialized

    def test_refs_materialize_on_first_access_and_cache(self):
        lazy = decode_object_lazy(encode_object(make_record()))
        assert lazy.refs == (3, None, 5)
        assert lazy.materialized
        assert lazy.refs is lazy.refs  # cached, not re-unpacked

    def test_back_refs_materialize_independently_of_refs(self):
        lazy = decode_object_lazy(encode_object(make_record()))
        assert lazy.back_refs == ((7, 0), (8, 2))
        assert lazy._refs is None  # refs still unread

    def test_size_needs_no_materialization(self):
        record = make_record()
        lazy = decode_object_lazy(encode_object(record))
        assert lazy.size == record.size
        assert not lazy.materialized

    def test_materialize_returns_the_eager_record(self):
        record = make_record()
        materialized = decode_object_lazy(encode_object(record)).materialize()
        assert isinstance(materialized, StoredObject)
        assert materialized == record

    def test_with_refs_round_trips_through_materialization(self):
        lazy = decode_object_lazy(encode_object(make_record()))
        changed = lazy.with_refs((9, 9))
        assert isinstance(changed, StoredObject)
        assert changed.refs == (9, 9)
        assert changed.back_refs == ((7, 0), (8, 2))

    def test_memoryview_buffer_is_zero_copy(self):
        data = bytearray(encode_object(make_record()))
        lazy = LazyStoredObject(memoryview(data))
        assert lazy.refs == (3, None, 5)

    def test_equality_is_symmetric_across_classes(self):
        record = make_record()
        lazy = decode_object_lazy(encode_object(record))
        assert lazy == record
        assert record == lazy  # dataclass __eq__ reflects via NotImplemented
        assert lazy == decode_object_lazy(encode_object(record))

    def test_inequality_on_differing_refs(self):
        lazy = decode_object_lazy(encode_object(make_record()))
        assert lazy != make_record(refs=(3, None, 6))


class TestLazyCorruption:
    def test_bad_magic_fails_at_construction(self):
        data = bytearray(encode_object(make_record()))
        data[0] ^= 0xFF
        with pytest.raises(StorageError, match="magic"):
            decode_object_lazy(bytes(data))

    def test_truncated_header_fails_at_construction(self):
        with pytest.raises(StorageError, match="truncated"):
            decode_object_lazy(encode_object(make_record())[:HEADER_SIZE - 3])

    def test_truncated_body_fails_at_construction(self):
        """Corruption surfaces at read time, not at first property access."""
        with pytest.raises(StorageError, match="truncated"):
            decode_object_lazy(encode_object(make_record())[:-4])


class TestDecodeRefs:
    def test_matches_non_null_refs(self):
        record = make_record()
        assert decode_refs(encode_object(record)) == record.non_null_refs()

    def test_empty_vector(self):
        assert decode_refs(encode_object(StoredObject(oid=4, cid=1))) == ()

    def test_offset(self):
        record = make_record()
        data = b"\xAA" * 7 + encode_object(record)
        assert decode_refs(data, offset=7) == (3, 5)

    def test_bad_magic(self):
        data = bytearray(encode_object(make_record()))
        data[0] ^= 0xFF
        with pytest.raises(StorageError, match="magic"):
            decode_refs(bytes(data))

    def test_body_shorter_than_ref_vector(self):
        record = StoredObject(oid=1, cid=1, refs=(2, 3, 4))
        with pytest.raises(StorageError, match="truncated"):
            decode_refs(encode_object(record)[:HEADER_SIZE + 5])


@settings(max_examples=200, deadline=None)
@given(record=record_strategy)
def test_lazy_equals_eager_on_every_surface(record):
    encoded = encode_object(record)
    eager = decode_object(encoded)
    lazy = decode_object_lazy(encoded)
    assert lazy.oid == eager.oid
    assert lazy.cid == eager.cid
    assert lazy.filler == eager.filler
    assert lazy.size == eager.size == len(encoded)
    assert lazy.refs == eager.refs
    assert lazy.back_refs == eager.back_refs
    assert lazy.non_null_refs() == eager.non_null_refs()
    assert lazy == eager and eager == lazy
    assert lazy.materialize() == eager
    assert decode_refs(encoded) == eager.non_null_refs()


@settings(max_examples=50, deadline=None)
@given(record=record_strategy,
       prefix=st.integers(min_value=0, max_value=64))
def test_lazy_decodes_at_any_offset(record, prefix):
    data = b"\x5C" * prefix + encode_object(record)
    lazy = decode_object_lazy(data, offset=prefix)
    assert lazy == decode_object(data, offset=prefix)
    assert decode_refs(data, offset=prefix) == record.non_null_refs()

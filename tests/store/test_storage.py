"""Object store tests: load, read/write, insert/delete, reorganize."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, StorageError, UnknownObject
from repro.store.serializer import StoredObject
from repro.store.storage import ObjectStore, StoreConfig

PAGE = 256


def make_records(count=20, filler=40, nrefs=2):
    records = []
    for oid in range(1, count + 1):
        refs = tuple((oid % count) + 1 for _ in range(nrefs))
        records.append(StoredObject(oid=oid, cid=1 + oid % 3, refs=refs,
                                    filler=filler))
    return records


def make_store(buffer_pages=8, page_size=PAGE, **kwargs):
    return ObjectStore(page_size=page_size, buffer_pages=buffer_pages,
                       **kwargs)


class TestStoreConfig:
    def test_build(self):
        store = StoreConfig(page_size=512, buffer_pages=4).build()
        assert store.page_size == 512
        assert store.buffer.capacity == 4

    def test_validation(self):
        with pytest.raises(ParameterError):
            StoreConfig(page_size=0)
        with pytest.raises(ParameterError):
            StoreConfig(buffer_pages=0)


class TestBulkLoad:
    def test_load_and_read_back(self):
        store = make_store()
        records = make_records(10)
        store.bulk_load(records)
        for record in records:
            assert store.read_object(record.oid) == record

    def test_custom_order_controls_layout(self):
        store = make_store()
        records = make_records(10)
        order = [oid for oid in range(10, 0, -1)]
        store.bulk_load(records, order=order)
        assert store.current_order() == order

    def test_rejects_duplicate_oids(self):
        store = make_store()
        record = make_records(1)[0]
        with pytest.raises(StorageError):
            store.bulk_load([record, record])

    def test_rejects_bad_order(self):
        store = make_store()
        with pytest.raises(StorageError):
            store.bulk_load(make_records(3), order=[1, 2, 99])

    def test_rejects_second_load(self):
        store = make_store()
        store.bulk_load(make_records(3))
        with pytest.raises(StorageError):
            store.bulk_load(make_records(3))

    def test_page_count_matches_bytes(self):
        store = make_store()
        records = make_records(10)
        store.bulk_load(records)
        total = sum(r.size for r in records)
        assert store.page_count == (total + PAGE - 1) // PAGE
        assert store.used_bytes == total


class TestReadPath:
    def test_unknown_oid(self):
        store = make_store()
        store.bulk_load(make_records(3))
        with pytest.raises(UnknownObject):
            store.read_object(99)

    def test_read_counts_buffer_traffic(self):
        store = make_store()
        store.bulk_load(make_records(10))
        store.reset_stats()
        store.read_object(1)
        snap = store.snapshot()
        assert snap.buffer.misses >= 1
        assert snap.io_reads >= 1
        assert snap.object_accesses == 1

    def test_second_read_hits_cache(self):
        store = make_store()
        store.bulk_load(make_records(10))
        store.reset_stats()
        store.read_object(1)
        before = store.snapshot()
        store.read_object(1)
        delta = store.snapshot() - before
        assert delta.io_reads == 0
        assert delta.buffer.hits >= 1

    def test_object_spanning_pages(self):
        store = make_store(page_size=64)
        big = StoredObject(oid=1, cid=1, filler=200)  # > 3 pages.
        store.bulk_load([big])
        store.reset_stats()
        record = store.read_object(1)
        assert record == big
        assert store.snapshot().io_reads >= 3

    def test_capacity_one_buffer_still_correct(self):
        store = make_store(buffer_pages=1, page_size=64)
        big = StoredObject(oid=1, cid=1, filler=300)
        small = StoredObject(oid=2, cid=1, filler=10)
        store.bulk_load([big, small])
        assert store.read_object(1) == big
        assert store.read_object(2) == small

    def test_eviction_invalidates_decoded_cache(self):
        store = make_store(buffer_pages=1, page_size=64)
        records = [StoredObject(oid=i, cid=1, filler=60) for i in (1, 2, 3)]
        store.bulk_load(records)
        store.reset_stats()
        assert store.read_object(1) == records[0]
        store.read_object(3)  # Evicts page of oid 1.
        assert store.read_object(1) == records[0]  # Decoded again, correct.

    def test_swizzling_tracked_on_load(self):
        store = make_store()
        store.bulk_load(make_records(10))
        store.reset_stats()
        store.read_object(1)
        assert store.swizzle is not None
        assert store.swizzle.stats.swizzled > 0

    def test_swizzling_can_be_disabled(self):
        store = make_store(track_swizzling=False)
        store.bulk_load(make_records(5))
        store.read_object(1)
        assert store.swizzle is None


class TestWritePath:
    def test_same_size_update_in_place(self):
        store = make_store()
        records = make_records(5)
        store.bulk_load(records)
        offset_before = store.location_of(3)
        updated = records[2].with_refs((1, 1))
        store.write_object(updated)
        assert store.read_object(3) == updated
        assert store.location_of(3) == offset_before

    def test_update_survives_cache_drop(self):
        store = make_store()
        records = make_records(5)
        store.bulk_load(records)
        updated = records[2].with_refs((1, 1))
        store.write_object(updated)
        store.drop_caches()
        assert store.read_object(3) == updated

    def test_grown_object_is_relocated(self):
        store = make_store()
        records = make_records(5)
        store.bulk_load(records)
        old_offset, old_length = store.location_of(2)
        grown = StoredObject(oid=2, cid=records[1].cid,
                             refs=records[1].refs, filler=500)
        store.write_object(grown)
        new_offset, new_length = store.location_of(2)
        assert new_length > old_length
        assert new_offset != old_offset
        assert store.read_object(2) == grown

    def test_write_unknown_oid(self):
        store = make_store()
        store.bulk_load(make_records(3))
        with pytest.raises(UnknownObject):
            store.write_object(StoredObject(oid=50, cid=1))


class TestInsertDelete:
    def test_insert_appends(self):
        store = make_store()
        store.bulk_load(make_records(5))
        new = StoredObject(oid=100, cid=9, filler=20)
        store.insert_object(new)
        assert store.read_object(100) == new
        assert store.object_count == 6
        assert store.current_order()[-1] == 100

    def test_insert_duplicate_rejected(self):
        store = make_store()
        store.bulk_load(make_records(5))
        with pytest.raises(StorageError):
            store.insert_object(StoredObject(oid=3, cid=1))

    def test_insert_into_empty_store(self):
        store = make_store()
        store.insert_object(StoredObject(oid=1, cid=1, filler=10))
        assert store.read_object(1).filler == 10

    def test_insert_persists_after_flush_and_drop(self):
        store = make_store()
        store.bulk_load(make_records(5))
        store.insert_object(StoredObject(oid=77, cid=2, filler=33))
        store.flush()
        store.drop_caches()
        assert store.read_object(77).filler == 33

    def test_delete_removes(self):
        store = make_store()
        store.bulk_load(make_records(5))
        store.delete_object(4)
        assert 4 not in store
        with pytest.raises(UnknownObject):
            store.read_object(4)
        assert store.object_count == 4

    def test_delete_unknown(self):
        store = make_store()
        store.bulk_load(make_records(3))
        with pytest.raises(UnknownObject):
            store.delete_object(42)

    def test_delete_leaves_hole_until_reorganize(self):
        store = make_store()
        records = make_records(6)
        store.bulk_load(records)
        used_before = store.used_bytes
        store.delete_object(2)
        assert store.used_bytes == used_before - records[1].size
        store.reorganize(store.current_order())
        assert store.used_bytes == used_before - records[1].size
        assert store.segment_bytes == store.used_bytes


class TestReorganize:
    def test_order_is_applied(self):
        store = make_store()
        records = make_records(8)
        store.bulk_load(records)
        new_order = [oid for oid in range(8, 0, -1)]
        store.reorganize(new_order)
        assert store.current_order() == new_order
        for record in records:
            assert store.read_object(record.oid) == record

    def test_rejects_non_permutation(self):
        store = make_store()
        store.bulk_load(make_records(4))
        with pytest.raises(StorageError):
            store.reorganize([1, 2, 3])
        with pytest.raises(StorageError):
            store.reorganize([1, 2, 3, 3])

    def test_touched_mode_charges_moved_pages_only(self):
        store = make_store()
        store.bulk_load(make_records(8))
        stats = store.reorganize(store.current_order(), io_mode="touched")
        assert stats.objects_moved == 0
        assert stats.total_ios == 0

    def test_full_mode_charges_everything(self):
        store = make_store()
        store.bulk_load(make_records(8))
        stats = store.reorganize(store.current_order(), io_mode="full")
        assert stats.pages_read == store.page_count
        assert stats.pages_written == store.page_count

    def test_bad_io_mode(self):
        store = make_store()
        store.bulk_load(make_records(4))
        with pytest.raises(ParameterError):
            store.reorganize(store.current_order(), io_mode="bogus")

    def test_dirty_data_survives_reorganize(self):
        store = make_store()
        records = make_records(6)
        store.bulk_load(records)
        updated = records[0].with_refs((5, 5))
        store.write_object(updated)  # Dirty in buffer only.
        store.reorganize(list(reversed(store.current_order())))
        assert store.read_object(1) == updated

    def test_aligned_groups_start_on_page_boundaries(self):
        store = make_store(page_size=128)
        records = [StoredObject(oid=i, cid=1, filler=70) for i in range(1, 9)]
        store.bulk_load(records)
        groups = [[3, 4], [7, 8]]  # Each ~2 records > one 128B page.
        order = [3, 4, 7, 8, 1, 2, 5, 6]
        store.reorganize(order, aligned_groups=groups)
        for group in groups:
            offset, _length = store.location_of(group[0])
            assert offset % 128 == 0

    def test_small_group_shares_page_tail(self):
        store = make_store(page_size=4096)
        records = [StoredObject(oid=i, cid=1, filler=10) for i in range(1, 7)]
        store.bulk_load(records)
        groups = [[1, 2], [3, 4]]
        store.reorganize([1, 2, 3, 4, 5, 6], aligned_groups=groups)
        # Both groups fit in the first page; no padding needed.
        assert store.pages_of(3) == (0,)

    def test_aligned_groups_validate_membership(self):
        store = make_store()
        store.bulk_load(make_records(4))
        with pytest.raises(StorageError):
            store.reorganize([1, 2, 3, 4], aligned_groups=[[1, 99]])
        with pytest.raises(StorageError):
            store.reorganize([1, 2, 3, 4], aligned_groups=[[1, 2], [2, 3]])


class TestSnapshots:
    def test_snapshot_delta(self):
        store = make_store()
        store.bulk_load(make_records(10))
        store.reset_stats()
        a = store.snapshot()
        store.read_object(1)
        b = store.snapshot()
        delta = b - a
        assert delta.object_accesses == 1
        assert delta.sim_time > 0.0

    def test_reset_stats(self):
        store = make_store()
        store.bulk_load(make_records(10))
        store.read_object(1)
        store.reset_stats()
        snap = store.snapshot()
        assert snap.object_accesses == 0
        assert snap.total_ios == 0

    def test_drop_caches_forces_cold_reads(self):
        store = make_store()
        store.bulk_load(make_records(10))
        store.read_object(1)
        store.drop_caches()
        store.reset_stats()
        store.read_object(1)
        assert store.snapshot().buffer.misses >= 1

    def test_pages_of_and_location(self):
        store = make_store()
        store.bulk_load(make_records(10))
        pages = store.pages_of(5)
        offset, length = store.location_of(5)
        assert pages[0] == offset // PAGE
        with pytest.raises(UnknownObject):
            store.pages_of(999)


@settings(max_examples=25, deadline=None)
@given(
    fillers=st.lists(st.integers(min_value=0, max_value=300),
                     min_size=1, max_size=30),
    buffer_pages=st.integers(min_value=1, max_value=8),
    seed=st.randoms(use_true_random=False),
)
def test_read_after_load_property(fillers, buffer_pages, seed):
    """Whatever the sizes and cache pressure, reads return what was loaded."""
    records = [StoredObject(oid=i + 1, cid=1, filler=f)
               for i, f in enumerate(fillers)]
    store = ObjectStore(page_size=128, buffer_pages=buffer_pages)
    store.bulk_load(records)
    indices = list(range(len(records)))
    seed.shuffle(indices)
    for index in indices:
        assert store.read_object(records[index].oid) == records[index]


@settings(max_examples=25, deadline=None)
@given(order_seed=st.randoms(use_true_random=False))
def test_reorganize_preserves_content_property(order_seed):
    records = make_records(15, filler=30)
    store = ObjectStore(page_size=128, buffer_pages=4)
    store.bulk_load(records)
    order = [r.oid for r in records]
    order_seed.shuffle(order)
    store.reorganize(order)
    assert store.current_order() == order
    for record in records:
        assert store.read_object(record.oid) == record

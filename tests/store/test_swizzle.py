"""Swizzle table tests."""

from __future__ import annotations

import pytest

from repro.store.costs import CostModel, SimClock
from repro.store.swizzle import SwizzleTable


@pytest.fixture
def table():
    return SwizzleTable()


class TestSwizzleIn:
    def test_assigns_addresses(self, table):
        count = table.swizzle_in(0, [1, 2, 3])
        assert count == 3
        assert table.is_swizzled(2)
        assert table.resident_count == 3

    def test_addresses_are_distinct(self, table):
        table.swizzle_in(0, [1, 2, 3])
        addresses = {table.address_of(oid) for oid in (1, 2, 3)}
        assert len(addresses) == 3

    def test_already_swizzled_not_recounted(self, table):
        table.swizzle_in(0, [1, 2])
        count = table.swizzle_in(1, [2, 3])
        assert count == 1
        assert table.stats.swizzled == 3

    def test_address_stable_across_pages(self, table):
        table.swizzle_in(0, [5])
        first = table.address_of(5)
        table.swizzle_in(1, [5])
        assert table.address_of(5) == first


class TestUnswizzle:
    def test_page_eviction_clears_objects(self, table):
        table.swizzle_in(0, [1, 2])
        removed = table.unswizzle_page(0)
        assert removed == 2
        assert not table.is_swizzled(1)
        assert table.address_of(1) is None

    def test_object_spanning_pages_survives(self, table):
        table.swizzle_in(0, [1])
        table.swizzle_in(1, [1, 2])
        table.unswizzle_page(0)
        assert table.is_swizzled(1)  # Still on resident page 1.
        table.unswizzle_page(1)
        assert not table.is_swizzled(1)

    def test_unknown_page_is_noop(self, table):
        assert table.unswizzle_page(42) == 0


class TestAccounting:
    def test_clock_charged(self):
        clock = SimClock()
        table = SwizzleTable(CostModel(swizzle_time=0.001), clock)
        table.swizzle_in(0, [1, 2, 3])
        assert clock.now == pytest.approx(0.003)
        table.unswizzle_page(0)
        assert clock.now == pytest.approx(0.006)

    def test_stats_subtraction(self, table):
        table.swizzle_in(0, [1])
        snap = table.stats.snapshot()
        table.swizzle_in(1, [2, 3])
        delta = table.stats.snapshot() - snap
        assert delta.swizzled == 2

    def test_clear_and_reset(self, table):
        table.swizzle_in(0, [1])
        table.clear()
        assert table.resident_count == 0
        table.reset_stats()
        assert table.stats.swizzled == 0

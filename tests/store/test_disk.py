"""Simulated disk accounting tests."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.store.costs import CostModel, SimClock
from repro.store.disk import DiskStats, SimulatedDisk


@pytest.fixture
def disk():
    return SimulatedDisk(page_size=128)


class TestReadWrite:
    def test_unwritten_page_reads_zero(self, disk):
        assert disk.read_page(5) == b"\x00" * 128

    def test_write_then_read(self, disk):
        payload = bytes(range(128))
        disk.write_page(3, payload)
        assert disk.read_page(3) == payload

    def test_write_validates_length(self, disk):
        with pytest.raises(StorageError):
            disk.write_page(0, b"short")

    def test_negative_page_id_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.read_page(-1)
        with pytest.raises(StorageError):
            disk.write_page(-2, b"\x00" * 128)

    def test_bad_page_size_rejected(self):
        with pytest.raises(StorageError):
            SimulatedDisk(page_size=0)


class TestAccounting:
    def test_reads_and_writes_counted(self, disk):
        disk.write_page(0, b"\x01" * 128)
        disk.read_page(0)
        disk.read_page(1)
        assert disk.stats.writes == 1
        assert disk.stats.reads == 2
        assert disk.stats.total == 3

    def test_peek_poke_not_counted(self, disk):
        disk.poke(0, b"\x01" * 128)
        assert disk.peek(0) == b"\x01" * 128
        assert disk.stats.total == 0

    def test_clock_advances_on_io(self):
        clock = SimClock()
        cost = CostModel(io_read_time=0.5, io_write_time=1.0)
        disk = SimulatedDisk(64, cost, clock)
        disk.read_page(0)
        assert clock.now == pytest.approx(0.5)
        disk.write_page(0, b"\x00" * 64)
        assert clock.now == pytest.approx(1.5)

    def test_reset_stats(self, disk):
        disk.read_page(0)
        disk.reset_stats()
        assert disk.stats.total == 0

    def test_stats_snapshot_and_subtract(self, disk):
        disk.read_page(0)
        first = disk.stats.snapshot()
        disk.read_page(1)
        disk.write_page(1, b"\x00" * 128)
        delta = disk.stats.snapshot() - first
        assert delta.reads == 1
        assert delta.writes == 1

    def test_snapshot_is_decoupled(self, disk):
        snap = disk.stats.snapshot()
        disk.read_page(0)
        assert snap.reads == 0


class TestIntrospection:
    def test_page_count(self, disk):
        assert disk.page_count == 0
        disk.poke(4, b"\x00" * 128)
        disk.poke(2, b"\x00" * 128)
        assert disk.page_count == 2

    def test_page_ids_sorted(self, disk):
        for pid in (5, 1, 3):
            disk.poke(pid, b"\x00" * 128)
        assert list(disk.page_ids()) == [1, 3, 5]

    def test_drop_all(self, disk):
        disk.poke(0, b"\x01" * 128)
        disk.drop_all()
        assert disk.page_count == 0
        assert disk.peek(0) == b"\x00" * 128

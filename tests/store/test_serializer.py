"""Serializer round-trip and validation tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.store.serializer import (
    BACKREF_SIZE,
    HEADER_SIZE,
    REF_SIZE,
    StoredObject,
    decode_object,
    encode_object,
    encoded_size,
)


def make_record(**overrides):
    defaults = dict(oid=1, cid=2, refs=(3, None, 5),
                    back_refs=((7, 0), (8, 2)), filler=10)
    defaults.update(overrides)
    return StoredObject(**defaults)


class TestStoredObject:
    def test_size_matches_encoded_length(self):
        record = make_record()
        assert record.size == len(encode_object(record))

    def test_encoded_size_formula(self):
        assert encoded_size(3, 2, 10) == \
            HEADER_SIZE + 3 * REF_SIZE + 2 * BACKREF_SIZE + 10

    def test_non_null_refs(self):
        assert make_record().non_null_refs() == (3, 5)

    def test_with_refs_copies(self):
        original = make_record()
        changed = original.with_refs((9, 9, 9))
        assert changed.refs == (9, 9, 9)
        assert original.refs == (3, None, 5)
        assert changed.back_refs == original.back_refs

    def test_with_back_refs_copies(self):
        original = make_record()
        changed = original.with_back_refs(((1, 1),))
        assert changed.back_refs == ((1, 1),)
        assert original.back_refs == ((7, 0), (8, 2))

    def test_rejects_bad_oid(self):
        with pytest.raises(StorageError):
            StoredObject(oid=0, cid=1)

    def test_rejects_negative_filler(self):
        with pytest.raises(StorageError):
            StoredObject(oid=1, cid=1, filler=-1)

    def test_refs_normalised_to_tuple(self):
        record = StoredObject(oid=1, cid=1, refs=[2, None])
        assert record.refs == (2, None)

    def test_empty_record(self):
        record = StoredObject(oid=1, cid=0)
        assert record.size == HEADER_SIZE


class TestRoundTrip:
    def test_basic(self):
        record = make_record()
        assert decode_object(encode_object(record)) == record

    def test_no_refs(self):
        record = StoredObject(oid=9, cid=3, filler=100)
        assert decode_object(encode_object(record)) == record

    def test_null_refs_preserved(self):
        record = StoredObject(oid=9, cid=3, refs=(None, None, 4))
        decoded = decode_object(encode_object(record))
        assert decoded.refs == (None, None, 4)

    def test_offset_decoding(self):
        record = make_record()
        data = b"\xAA" * 13 + encode_object(record)
        assert decode_object(data, offset=13) == record

    def test_concatenated_records(self):
        a = make_record(oid=1)
        b = make_record(oid=2, filler=3)
        blob = encode_object(a) + encode_object(b)
        assert decode_object(blob, 0) == a
        assert decode_object(blob, a.size) == b

    def test_large_oid(self):
        record = StoredObject(oid=2**60, cid=7)
        assert decode_object(encode_object(record)).oid == 2**60


class TestCorruption:
    def test_bad_magic(self):
        data = bytearray(encode_object(make_record()))
        data[0] ^= 0xFF
        with pytest.raises(StorageError, match="magic"):
            decode_object(bytes(data))

    def test_truncated_header(self):
        data = encode_object(make_record())[:HEADER_SIZE - 3]
        with pytest.raises(StorageError):
            decode_object(data)

    def test_truncated_body(self):
        data = encode_object(make_record())[:-4]
        with pytest.raises(StorageError, match="truncated"):
            decode_object(data)

    def test_too_many_refs_rejected_on_encode(self):
        record = StoredObject(oid=1, cid=1)
        object.__setattr__(record, "refs", (2,) * 70000)
        with pytest.raises(StorageError):
            encode_object(record)


@settings(max_examples=200, deadline=None)
@given(
    oid=st.integers(min_value=1, max_value=2**63 - 1),
    cid=st.integers(min_value=0, max_value=2**31 - 1),
    refs=st.lists(st.one_of(st.none(),
                            st.integers(min_value=1, max_value=2**62)),
                  max_size=20),
    back_refs=st.lists(st.tuples(st.integers(min_value=1, max_value=2**62),
                                 st.integers(min_value=0, max_value=60000)),
                       max_size=20),
    filler=st.integers(min_value=0, max_value=4096),
)
def test_roundtrip_property(oid, cid, refs, back_refs, filler):
    record = StoredObject(oid=oid, cid=cid, refs=tuple(refs),
                          back_refs=tuple(back_refs), filler=filler)
    encoded = encode_object(record)
    assert len(encoded) == record.size
    assert decode_object(encoded) == record

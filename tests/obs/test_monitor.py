"""Resource monitor: lifecycle, sampling, system info."""

from __future__ import annotations

import time

import pytest

from repro.obs import ResourceMonitor, ResourceUsage, system_info
from repro.obs.monitor import _cpu_seconds, _rss_kb


class TestSampling:
    def test_rss_is_positive_on_linux(self):
        rss = _rss_kb()
        assert rss is not None and rss > 0

    def test_cpu_seconds_monotonic(self):
        before = _cpu_seconds()
        sum(i * i for i in range(200_000))
        assert _cpu_seconds() >= before


class TestMonitor:
    def test_start_stop_produces_usage(self):
        monitor = ResourceMonitor(interval=0.01)
        monitor.start()
        deadline = time.perf_counter() + 0.05
        while time.perf_counter() < deadline:
            sum(range(10_000))
        usage = monitor.stop()
        assert isinstance(usage, ResourceUsage)
        assert usage.wall_seconds >= 0.05
        assert usage.cpu_seconds >= 0.0
        assert usage.samples >= 2  # start + stop at minimum
        assert usage.peak_rss_kb > 0
        assert 0.0 < usage.mean_rss_kb <= usage.peak_rss_kb

    def test_peak_rss_covers_an_allocation(self):
        """Peak RSS under the monitor is >= RSS before the allocation —
        monotonic with respect to what the section allocated."""
        before = _rss_kb()
        with ResourceMonitor(interval=0.005) as monitor:
            ballast = bytearray(32 * 1024 * 1024)  # 32 MiB
            time.sleep(0.03)
            del ballast
        assert monitor.usage is not None
        assert monitor.usage.peak_rss_kb >= before

    def test_context_manager_sets_usage(self):
        with ResourceMonitor(interval=0.01) as monitor:
            pass
        assert monitor.usage is not None
        assert monitor.usage.samples >= 2

    def test_double_start_raises(self):
        monitor = ResourceMonitor(interval=0.01)
        monitor.start()
        with pytest.raises(RuntimeError):
            monitor.start()
        monitor.stop()

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            ResourceMonitor().stop()

    def test_monitor_is_restartable(self):
        monitor = ResourceMonitor(interval=0.01)
        with monitor:
            pass
        first = monitor.usage
        with monitor:
            pass
        assert monitor.usage is not first

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ResourceMonitor(interval=0.0)

    def test_cpu_utilization(self):
        usage = ResourceUsage(wall_seconds=2.0, cpu_seconds=1.0,
                              peak_rss_kb=100, mean_rss_kb=90.0, samples=3)
        assert usage.cpu_utilization == 0.5
        zero = ResourceUsage(wall_seconds=0.0, cpu_seconds=1.0,
                             peak_rss_kb=0, mean_rss_kb=0.0, samples=0)
        assert zero.cpu_utilization == 0.0

    def test_to_dict_shape(self):
        with ResourceMonitor(interval=0.01) as monitor:
            pass
        spec = monitor.usage.to_dict()
        assert set(spec) == {"wall_seconds", "cpu_seconds",
                             "cpu_utilization", "peak_rss_kb",
                             "mean_rss_kb", "samples"}


class TestSystemInfo:
    def test_keys_and_types(self):
        info = system_info()
        assert set(info) >= {"git_rev", "platform", "python",
                             "implementation", "cpu_count", "hostname"}
        assert isinstance(info["cpu_count"], int) and info["cpu_count"] >= 1
        assert info["platform"]
        assert info["python"].count(".") == 2

    def test_git_rev_shape(self):
        rev = system_info()["git_rev"]
        # None outside a checkout; a short hex revision inside one.
        assert rev is None or (isinstance(rev, str) and len(rev) >= 6
                               and all(c in "0123456789abcdef" for c in rev))

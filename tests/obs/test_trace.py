"""Tracer behaviour: nesting, ring buffer, JSONL, zero overhead when off."""

from __future__ import annotations

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    trace.disable()


class TestCollector:
    def test_ring_buffer_keeps_newest_and_counts_drops(self):
        collector = trace.TraceCollector(capacity=3)
        for index in range(5):
            collector.record(trace.TraceRecord(
                name=f"r{index}", wall_seconds=0.0, depth=0,
                timestamp=float(index)))
        assert len(collector) == 3
        assert collector.total == 5
        assert collector.dropped == 2
        assert [r.name for r in collector.records()] == ["r2", "r3", "r4"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            trace.TraceCollector(capacity=0)


class TestEmission:
    def test_disabled_emit_reaches_no_collector(self):
        collector = trace.enable()
        trace.disable()
        trace.emit("after.disable", 1.0)
        assert collector.records() == []
        assert trace.active_collector() is None

    def test_emit_records_name_wall_and_attrs(self):
        collector = trace.enable()
        trace.emit("kernel.read", 0.25, oids=7)
        (record,) = collector.records()
        assert record.name == "kernel.read"
        assert record.wall_seconds == 0.25
        assert record.depth == 0
        assert record.attrs == {"oids": 7}

    def test_span_nesting_depths(self):
        collector = trace.enable()
        with trace.span("outer"):
            trace.emit("inner.event")
            with trace.span("inner"):
                trace.emit("leaf.event")
        names = {r.name: r.depth for r in collector.records()}
        assert names == {"outer": 0, "inner.event": 1, "inner": 1,
                         "leaf.event": 2}

    def test_span_restores_depth_on_exception(self):
        collector = trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("failing"):
                raise RuntimeError("boom")
        (record,) = collector.records()
        assert record.name == "failing"
        trace.emit("after")
        assert collector.records()[-1].depth == 0

    def test_reenable_replaces_collector(self):
        first = trace.enable()
        second = trace.enable()
        assert first is not second
        trace.emit("x")
        assert first.records() == []
        assert len(second.records()) == 1


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        trace.enable(sink_path=path)
        with trace.span("outer", phase="warm"):
            trace.emit("inner", 0.002, oids=3)
        trace.disable()
        records = trace.read_jsonl(path)
        assert [r.name for r in records] == ["inner", "outer"]
        inner, outer = records
        assert inner.depth == 1 and outer.depth == 0
        assert inner.attrs == {"oids": 3}
        assert outer.attrs == {"phase": "warm"}
        assert inner.wall_seconds == pytest.approx(0.002)

    def test_disable_closes_sink(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        trace.enable(sink_path=path)
        trace.emit("one")
        trace.disable()
        # A closed sink is flushed: the record is on disk.
        assert len(trace.read_jsonl(path)) == 1


class TestSummary:
    def test_summary_sorted_by_total_wall(self):
        collector = trace.enable()
        trace.emit("cheap", 0.001)
        trace.emit("cheap", 0.001)
        trace.emit("dear", 1.0)
        rows = trace.summary(collector)
        assert [row[0] for row in rows] == ["dear", "cheap"]
        name, count, total, mean, p999 = rows[1]
        assert count == 2
        assert total == pytest.approx(0.002)
        assert mean == pytest.approx(0.001)
        # The tail column comes from a log-bucketed histogram: accurate
        # to its relative precision, not exact.
        assert p999 == pytest.approx(0.001, rel=0.02)

    def test_summary_p999_tracks_the_slowest_emission(self):
        collector = trace.enable()
        for _ in range(99):
            trace.emit("op", 0.001)
        trace.emit("op", 0.5)
        ((_, count, _, _, p999),) = trace.summary(collector)
        assert count == 100
        assert p999 == pytest.approx(0.5, rel=0.02)

    def test_summary_without_collector_is_empty(self):
        assert trace.summary() == []


class TestZeroOverheadWhenOff:
    def test_traced_off_run_executes_no_tracer_callbacks(self, monkeypatch):
        """A full `ocb run` without --trace never touches the tracer.

        Every instrumented call site guards with ``if trace.enabled:``,
        so replacing emit/span with spies must observe zero calls on the
        hottest end-to-end path the CLI has.
        """
        from repro.cli import main

        calls = []
        monkeypatch.setattr(
            trace, "emit",
            lambda *args, **kwargs: calls.append(("emit", args)))
        monkeypatch.setattr(
            trace, "span",
            lambda *args, **kwargs: calls.append(("span", args)))
        assert trace.enabled is False
        assert main(["run", "--backend", "sqlite"]) == 0
        assert calls == []

    def test_scenario_off_run_executes_no_tracer_callbacks(self, monkeypatch):
        from repro.cli import main

        calls = []
        monkeypatch.setattr(
            trace, "emit",
            lambda *args, **kwargs: calls.append(("emit", args)))
        monkeypatch.setattr(
            trace, "span",
            lambda *args, **kwargs: calls.append(("span", args)))
        assert main(["scenario", "read_heavy", "--warm", "5",
                     "--cold", "1"]) == 0
        assert calls == []

    def test_loadtest_off_run_executes_no_tracer_callbacks(
            self, monkeypatch, tmp_path):
        """The open-loop pacer guards its arrival/late-start emissions
        with ``trace.enabled`` too — a loadtest without --trace must
        execute zero tracer callbacks."""
        from repro.cli import main

        calls = []
        monkeypatch.setattr(
            trace, "emit",
            lambda *args, **kwargs: calls.append(("emit", args)))
        monkeypatch.setattr(
            trace, "span",
            lambda *args, **kwargs: calls.append(("span", args)))
        assert trace.enabled is False
        out = str(tmp_path / "sweep.json")
        assert main(["loadtest", "read_heavy", "--rate", "200",
                     "--ops", "5", "--backend", "memory",
                     "--out", out, "--no-predict"]) == 0
        assert calls == []

"""Profiler behaviour: reports, shares, JSON, zero overhead when off."""

from __future__ import annotations

import json

import pytest

from repro.obs import profiler


@pytest.fixture(autouse=True)
def _profiling_off_after():
    yield
    profiler.disable()


def _busy(n=20000):
    total = 0
    for i in range(n):
        total += i
    return total


class TestLifecycle:
    def test_disabled_by_default(self):
        assert profiler.enabled is False

    def test_enable_sets_the_flag_and_disable_clears_it(self):
        profiler.enable()
        assert profiler.enabled is True
        profiler.disable()
        assert profiler.enabled is False

    def test_disable_without_enable_returns_none(self):
        assert profiler.disable() is None

    def test_disable_returns_a_report_with_profiled_functions(self):
        profiler.enable()
        _busy()
        report = profiler.disable()
        assert report is not None
        assert report.total_seconds >= 0.0
        assert any("_busy" in stat.name for stat in report.functions)

    def test_reenable_restarts_with_a_fresh_profile(self):
        profiler.enable()
        _busy()
        profiler.enable()
        report = profiler.disable()
        assert report is not None
        # The first window's profile must not survive the restart.
        assert profiler.disable() is None

    def test_functions_sorted_by_cumulative_time(self):
        profiler.enable()
        _busy()
        report = profiler.disable()
        cumtimes = [stat.cumtime for stat in report.functions]
        assert cumtimes == sorted(cumtimes, reverse=True)


class TestSummaryAndShare:
    def test_summary_returns_top_n_rows(self):
        profiler.enable()
        _busy()
        report = profiler.disable()
        rows = profiler.summary(report, top=3)
        assert len(rows) <= 3
        name, ncalls, tottime, cumtime = rows[0]
        assert isinstance(name, str) and ncalls >= 1
        assert cumtime >= tottime >= 0.0

    def test_summary_of_none_is_empty(self):
        assert profiler.summary(None) == []

    def test_cumulative_share_finds_the_hot_function(self):
        profiler.enable()
        _busy(200000)
        report = profiler.disable()
        share = profiler.cumulative_share(report, "_busy")
        assert 0.0 < share <= 1.0

    def test_cumulative_share_of_unknown_name_is_zero(self):
        profiler.enable()
        _busy()
        report = profiler.disable()
        assert profiler.cumulative_share(report, "no_such_fn") == 0.0
        assert profiler.cumulative_share(None, "_busy") == 0.0


class TestJsonRoundTrip:
    def test_write_json_and_load_report(self, tmp_path):
        profiler.enable()
        _busy()
        report = profiler.disable()
        path = str(tmp_path / "profile.json")
        profiler.write_json(report, path)
        document = json.loads(open(path).read())
        assert document["total_seconds"] == report.total_seconds
        loaded = profiler.load_report(path)
        assert loaded.total_seconds == report.total_seconds
        assert loaded.functions[:5] == report.functions[:5]

    def test_write_json_caps_the_function_list(self, tmp_path):
        profiler.enable()
        _busy()
        report = profiler.disable()
        path = str(tmp_path / "tiny.json")
        profiler.write_json(report, path, top=2)
        assert len(profiler.load_report(path).functions) <= 2


class TestZeroOverheadWhenOff:
    def test_unprofiled_run_executes_no_profiler_code(self, monkeypatch):
        """A full `ocb run` without --profile never touches the profiler.

        The CLI only imports and enables the profiler when --profile
        was passed, so replacing enable/disable with spies must observe
        zero calls on the end-to-end path — the same pin the tracer
        carries in test_trace.py.
        """
        from repro.cli import main

        calls = []
        monkeypatch.setattr(
            profiler, "enable",
            lambda *args, **kwargs: calls.append("enable"))
        monkeypatch.setattr(
            profiler, "disable",
            lambda *args, **kwargs: calls.append("disable"))
        assert profiler.enabled is False
        assert main(["run", "--backend", "sqlite"]) == 0
        assert calls == []
        assert profiler.enabled is False

    def test_profiled_scenario_writes_report_and_prints_summary(
            self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "profile.json")
        assert main(["scenario", "read_heavy", "--warm", "5",
                     "--cold", "1", "--profile", out]) == 0
        captured = capsys.readouterr()
        assert "profile:" in captured.err
        report = profiler.load_report(out)
        assert any("scenario" in stat.name for stat in report.functions)
        # The dispatcher turned it off again on the way out.
        assert profiler.enabled is False

"""Experiment matrix: spec round-trip, execution, baseline comparison."""

from __future__ import annotations

import copy
import json

import pytest

from repro.errors import ParameterError
from repro.obs import results
from repro.obs.matrix import (
    DEFAULT_SEED,
    MatrixCell,
    MatrixSpec,
    compare_documents,
    run_matrix,
    tiny_spec,
)


@pytest.fixture(scope="module")
def document():
    """One executed 2-cell matrix, shared by every comparison test."""
    spec = MatrixSpec(name="test", backends=("simulated", "sqlite"),
                      scenarios=("read_heavy",), client_counts=(1,),
                      cold_ops=1, warm_ops=6, monitor_interval=0.01)
    return run_matrix(spec)


class TestSpec:
    def test_defaults_are_the_tiny_matrix(self):
        spec = tiny_spec()
        assert spec.backends == ("simulated", "sqlite")
        assert spec.seed == DEFAULT_SEED
        assert len(spec.cells()) == 2

    def test_cells_cross_product_and_keys(self):
        spec = MatrixSpec(backends=("simulated",),
                          scenarios=("read_heavy", "write_heavy"),
                          client_counts=(1, 2))
        cells = spec.cells()
        assert len(cells) == 4
        assert cells[0].key == "simulated/read_heavy/c1/interleaved"

    def test_processes_mode_only_above_one_client(self):
        assert MatrixCell("sqlite", "read_heavy", 1,
                          processes=True).mode == "interleaved"
        assert MatrixCell("sqlite", "read_heavy", 2,
                          processes=True).mode == "processes"

    def test_dict_round_trip(self):
        spec = MatrixSpec(name="rt", client_counts=(1, 2), warm_ops=8)
        assert MatrixSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = MatrixSpec(name="rt")
        assert MatrixSpec.from_json(json.dumps(spec.to_dict())) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ParameterError, match="bogus"):
            MatrixSpec.from_dict({"bogus": 1})

    def test_invalid_json_rejected(self):
        with pytest.raises(ParameterError, match="invalid"):
            MatrixSpec.from_json("{nope")
        with pytest.raises(ParameterError, match="JSON object"):
            MatrixSpec.from_json("[1]")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ParameterError, match="scenario"):
            MatrixSpec(scenarios=("nonexistent",))

    def test_unknown_db_preset_rejected(self):
        with pytest.raises(ParameterError, match="preset"):
            MatrixSpec(db_preset="nonexistent")

    def test_empty_axes_rejected(self):
        with pytest.raises(ParameterError):
            MatrixSpec(backends=())

    def test_bad_client_count_rejected(self):
        with pytest.raises(ParameterError, match="client"):
            MatrixSpec(client_counts=(0,))


class TestRunMatrix:
    def test_document_is_schema_valid(self, document):
        assert results.validate_document(document) is document
        assert document["kind"] == "matrix"
        assert document["config"]["name"] == "test"

    def test_one_cell_per_spec_cell(self, document):
        keys = [cell["key"] for cell in document["cells"]]
        assert keys == ["simulated/read_heavy/c1/interleaved",
                        "sqlite/read_heavy/c1/interleaved"]

    def test_cells_carry_workload_and_resources(self, document):
        for cell in document["cells"]:
            assert cell["operations"] == 7  # 1 cold + 6 warm
            assert cell["throughput"] > 0.0
            assert cell["wall_p99_ms"] >= cell["wall_p95_ms"] >= 0.0
            assert cell["peak_rss_kb"] > 0
            assert cell["cpu_seconds"] >= 0.0
            assert cell["monitor_samples"] >= 2

    def test_sqlite_cell_counts_round_trips(self, document):
        by_backend = {cell["backend"]: cell for cell in document["cells"]}
        assert by_backend["sqlite"]["sql_round_trips"] > 0
        assert by_backend["simulated"]["sql_round_trips"] == 0

    def test_progress_callback_sees_every_cell(self):
        spec = MatrixSpec(backends=("simulated",), scenarios=("read_heavy",),
                          client_counts=(1,), cold_ops=0, warm_ops=2,
                          monitor_interval=0.01)
        lines = []
        run_matrix(spec, progress=lines.append)
        assert len(lines) == 1
        assert "simulated/read_heavy/c1" in lines[0]


class TestCompare:
    def test_identical_documents_pass(self, document):
        comparison = compare_documents(document, document)
        assert comparison.ok
        assert [row.status for row in comparison.rows] == ["ok", "ok"]
        assert all(row.throughput_ratio == pytest.approx(1.0)
                   for row in comparison.rows)
        assert "0 regression(s)" in comparison.describe()

    def test_synthetic_slow_baseline_detects_regression(self, document):
        """A baseline 4x faster than the current run must gate: the
        current run *is* the regression relative to it."""
        baseline = copy.deepcopy(document)
        cell = baseline["cells"][0]
        cell["throughput"] = cell["throughput"] * 4.0
        comparison = compare_documents(document, baseline, tolerance=0.5)
        assert not comparison.ok
        (regressed,) = comparison.regressions
        assert regressed.status == "regressed"
        assert regressed.key == cell["key"]
        assert any("throughput" in p for p in regressed.problems)
        assert regressed.throughput_ratio == pytest.approx(0.25)

    def test_p95_blowup_detects_regression(self, document):
        current = copy.deepcopy(document)
        current["cells"][1]["wall_p95_ms"] = \
            document["cells"][1]["wall_p95_ms"] * 10.0 + 1.0
        comparison = compare_documents(current, document, tolerance=0.5)
        assert not comparison.ok
        assert any("P95" in p for row in comparison.regressions
                   for p in row.problems)

    def test_missing_cell_always_gates(self, document):
        current = copy.deepcopy(document)
        del current["cells"][1]
        comparison = compare_documents(current, document)
        assert not comparison.ok
        (missing,) = comparison.regressions
        assert missing.status == "missing"

    def test_new_cell_never_gates(self, document):
        current = copy.deepcopy(document)
        extra = copy.deepcopy(current["cells"][0])
        extra["key"] = "memory/read_heavy/c1/interleaved"
        extra["backend"] = "memory"
        current["cells"].append(extra)
        comparison = compare_documents(current, document)
        assert comparison.ok
        assert sorted(row.status for row in comparison.rows) \
            == ["new", "ok", "ok"]

    def test_operation_count_drift_always_gates(self, document):
        current = copy.deepcopy(document)
        current["cells"][0]["operations"] += 1
        comparison = compare_documents(current, document, tolerance=100.0)
        assert not comparison.ok
        assert any("operations changed" in p
                   for row in comparison.regressions for p in row.problems)

    def test_negative_tolerance_rejected(self, document):
        with pytest.raises(ParameterError, match="tolerance"):
            compare_documents(document, document, tolerance=-0.1)


class TestBenchCli:
    def _write(self, path, document):
        path.write_text(json.dumps(document), encoding="utf-8")
        return str(path)

    def test_compare_against_self_passes(self, document, tmp_path, capsys):
        from repro.cli import main

        current = self._write(tmp_path / "current.json", document)
        baseline = self._write(tmp_path / "baseline.json", document)
        assert main(["bench", "--current", current,
                     "--compare", baseline]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_compare_regression_exits_2(self, document, tmp_path, capsys):
        from repro.cli import main

        slow = copy.deepcopy(document)
        for cell in slow["cells"]:
            cell["throughput"] = cell["throughput"] * 4.0
        current = self._write(tmp_path / "current.json", document)
        baseline = self._write(tmp_path / "slow_baseline.json", slow)
        assert main(["bench", "--current", current,
                     "--compare", baseline, "--tolerance", "0.5"]) == 2
        err = capsys.readouterr().err
        assert "regress" in err

    def test_bench_json_output(self, document, tmp_path, capsys):
        from repro.cli import main

        current = self._write(tmp_path / "current.json", document)
        out_path = tmp_path / "out.json"
        assert main(["bench", "--current", current, "--json",
                     "--out", str(out_path)]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["kind"] == "matrix"
        assert results.load_document(str(out_path))["kind"] == "matrix"

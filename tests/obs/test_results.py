"""The BENCH document schema: build, validate, persist, reload."""

from __future__ import annotations

import json

import pytest

from repro.errors import ParameterError
from repro.obs import results


def _matrix_cell(**overrides):
    cell = {
        "key": "sqlite/read_heavy/c1/interleaved",
        "backend": "sqlite", "scenario": "read_heavy", "clients": 1,
        "mode": "interleaved", "operations": 7, "throughput": 100.0,
        "elapsed_seconds": 0.07, "wall_p50_ms": 1.0, "wall_p95_ms": 2.0,
        "wall_p99_ms": 3.0, "busy_retries": 0, "cpu_seconds": 0.05,
        "peak_rss_kb": 1024,
    }
    cell.update(overrides)
    return cell


class TestBuild:
    def test_build_stamps_version_created_and_system(self):
        document = results.build_document(
            kind="matrix", cells=[_matrix_cell()], name="t")
        assert document["schema_version"] == results.SCHEMA_VERSION
        assert document["kind"] == "matrix"
        assert document["name"] == "t"
        assert "T" in document["created"]
        for key in ("git_rev", "platform", "python", "cpu_count",
                    "hostname"):
            assert key in document["system"]

    def test_build_rejects_unknown_kind(self):
        with pytest.raises(ParameterError, match="kind"):
            results.build_document(kind="nonsense", cells=[{}])

    def test_non_matrix_cells_are_free_form(self):
        document = results.build_document(
            kind="scale_sweep", cells=[{"workers": 1}])
        assert document["cells"] == [{"workers": 1}]


class TestValidate:
    def test_matrix_cell_missing_keys_rejected(self):
        cell = _matrix_cell()
        del cell["wall_p99_ms"], cell["peak_rss_kb"]
        with pytest.raises(ParameterError, match="wall_p99_ms"):
            results.build_document(kind="matrix", cells=[cell])

    def test_empty_cells_rejected(self):
        with pytest.raises(ParameterError, match="cells"):
            results.build_document(kind="matrix", cells=[])

    def test_not_a_mapping_rejected(self):
        with pytest.raises(ParameterError, match="JSON object"):
            results.validate_document([1, 2, 3])

    def test_wrong_schema_version_rejected(self):
        document = results.build_document(kind="matrix",
                                          cells=[_matrix_cell()])
        document["schema_version"] = 99
        with pytest.raises(ParameterError, match="schema_version"):
            results.validate_document(document)

    def test_missing_system_keys_rejected(self):
        document = results.build_document(kind="matrix",
                                          cells=[_matrix_cell()])
        del document["system"]["git_rev"]
        with pytest.raises(ParameterError, match="git_rev"):
            results.validate_document(document)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        document = results.build_document(
            kind="matrix", cells=[_matrix_cell()], name="rt",
            config={"seed": 42})
        path = results.write_document(document,
                                      path=str(tmp_path / "BENCH_x.json"))
        loaded = results.load_document(path)
        assert loaded == document

    def test_default_filename_from_created(self, tmp_path):
        document = results.build_document(kind="matrix",
                                          cells=[_matrix_cell()])
        path = results.write_document(document, directory=str(tmp_path))
        date = document["created"].split("T", 1)[0]
        assert path.endswith(f"BENCH_{date}.json")

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ParameterError, match="invalid JSON"):
            results.load_document(str(path))

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ParameterError, match="cannot read"):
            results.load_document(str(tmp_path / "absent.json"))

    def test_written_file_is_plain_json(self, tmp_path):
        document = results.build_document(kind="matrix",
                                          cells=[_matrix_cell()])
        path = results.write_document(document,
                                      path=str(tmp_path / "b.json"))
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["kind"] == "matrix"


class TestDefaultFilename:
    def test_uses_created_date(self):
        assert results.default_filename("2026-08-07T12:00:00Z") \
            == "BENCH_2026-08-07.json"

    def test_today_when_unspecified(self):
        name = results.default_filename()
        assert name.startswith("BENCH_") and name.endswith(".json")

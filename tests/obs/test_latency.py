"""Histogram precision, round-trip and merge laws; collector semantics.

The :class:`~repro.obs.latency.LatencyHistogram` replaces exact
sorted-list percentiles on unbounded collections, so its contract is a
*bounded relative error* — every property here pins that bound, and the
:class:`~repro.stats.BoundedSample` tolerance test pins the fold-over
point where the scenario layer switches from exact to bucketed.
"""

from __future__ import annotations

import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.obs.latency import (DEFAULT_LATE_GRACE, LatencyCollector,
                               LatencyHistogram)
from repro.stats import BoundedSample, percentile

#: Values kept inside the default histogram range so the precision
#: bound (not the under/overflow clamp) is what the properties pin.
in_range = st.floats(min_value=1e-5, max_value=100.0,
                     allow_nan=False, allow_infinity=False)


def nearest_rank(values, q):
    """The ceil-rank order statistic — the histogram's quantile rule
    (``stats.percentile`` interpolates between ranks instead, so it is
    not the right exact reference for a bucketed nearest-rank value)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class TestHistogramBasics:
    def test_empty_histogram_reports_zero(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(50.0) == 0.0
        assert len(histogram) == 0

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            LatencyHistogram(min_value=0.0)
        with pytest.raises(ParameterError):
            LatencyHistogram(min_value=2.0, max_value=1.0)
        with pytest.raises(ParameterError):
            LatencyHistogram(precision=0.0)
        with pytest.raises(ParameterError):
            LatencyHistogram().percentile(101.0)

    def test_single_value_is_every_percentile(self):
        histogram = LatencyHistogram()
        histogram.record(0.25)
        for q in (0.0, 50.0, 99.9, 100.0):
            assert histogram.percentile(q) == pytest.approx(0.25)

    def test_mean_is_exact_not_bucketed(self):
        histogram = LatencyHistogram()
        histogram.record_many([0.1, 0.2, 0.3])
        assert histogram.mean == pytest.approx(0.2)

    def test_negative_values_clamp_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-1.0)
        assert histogram.min == 0.0
        assert histogram.percentile(50.0) == 0.0

    def test_memory_is_bounded_by_geometry_not_samples(self):
        histogram = LatencyHistogram(precision=0.01)
        limit = histogram._bucket_limit + 1
        for index in range(20_000):
            histogram.record(1e-6 * (1.0 + index))
        assert histogram.count == 20_000
        assert histogram.buckets_used <= limit

    def test_overflow_values_report_through_max_clamp(self):
        histogram = LatencyHistogram(max_value=1.0)
        histogram.record(5.0)
        assert histogram.percentile(99.0) == pytest.approx(5.0)

    def test_sample_inverse_bounds(self):
        histogram = LatencyHistogram()
        histogram.record_many([0.1, 0.2])
        assert histogram.sample_inverse(0.0) == pytest.approx(0.1, rel=0.02)
        with pytest.raises(ParameterError):
            histogram.sample_inverse(1.0)


class TestHistogramProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(in_range, min_size=1, max_size=200),
           st.sampled_from([50.0, 90.0, 95.0, 99.0, 99.9]))
    def test_percentile_relative_error_bounded_by_precision(
            self, values, q):
        histogram = LatencyHistogram(precision=0.01)
        histogram.record_many(values)
        exact = nearest_rank(values, q)
        bucketed = histogram.percentile(q)
        assert bucketed <= max(values)
        assert bucketed >= min(values)
        # One bucket of slack on top of the nominal precision: the
        # exact rank statistic may sit at a bucket's lower edge.
        assert bucketed >= exact / (1.0 + histogram.precision) ** 2
        # The bucketed value never exceeds the exact value by more
        # than one growth step (upper-bound reporting).
        assert bucketed <= exact * (1.0 + histogram.precision) ** 2

    @settings(max_examples=40, deadline=None)
    @given(st.lists(in_range, min_size=1, max_size=100))
    def test_round_trip_preserves_everything(self, values):
        histogram = LatencyHistogram()
        histogram.record_many(values)
        clone = LatencyHistogram.from_dict(histogram.to_dict())
        assert clone.count == histogram.count
        assert clone.total == pytest.approx(histogram.total)
        assert clone.min == histogram.min
        assert clone.max == histogram.max
        for q in (50.0, 95.0, 99.0, 99.9):
            assert clone.percentile(q) == histogram.percentile(q)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(in_range, min_size=1, max_size=80),
           st.lists(in_range, min_size=1, max_size=80))
    def test_merge_equals_recording_the_union(self, left, right):
        merged = LatencyHistogram()
        merged.record_many(left)
        other = LatencyHistogram()
        other.record_many(right)
        merged.merge(other)
        union = LatencyHistogram()
        union.record_many(left + right)
        assert merged.count == union.count
        assert merged.total == pytest.approx(union.total)
        assert merged._counts == union._counts
        for q in (50.0, 95.0, 99.9):
            assert merged.percentile(q) == union.percentile(q)

    def test_merge_refuses_different_geometry(self):
        with pytest.raises(ParameterError):
            LatencyHistogram(precision=0.01).merge(
                LatencyHistogram(precision=0.02))


class TestCollector:
    def test_response_service_wait_split(self):
        collector = LatencyCollector()
        # Intended at t=1, started at t=1.5, completed at t=1.7:
        # response 0.7, service 0.2, wait 0.5 — and late.
        late = collector.record(1.0, 1.5, 1.7)
        assert late is True
        assert collector.operations == 1
        assert collector.late_starts == 1
        assert collector.response.mean == pytest.approx(0.7)
        assert collector.service.mean == pytest.approx(0.2)
        assert collector.wait.mean == pytest.approx(0.5)

    def test_on_time_start_is_not_late(self):
        collector = LatencyCollector()
        lag = DEFAULT_LATE_GRACE / 2.0
        assert collector.record(1.0, 1.0 + lag, 1.1) is False
        assert collector.late_starts == 0

    def test_backlog_tracks_the_maximum(self):
        collector = LatencyCollector()
        for depth in (1, 4, 2):
            collector.note_backlog(depth)
        assert collector.max_backlog == 4

    def test_merge_accumulates_counts(self):
        left = LatencyCollector()
        left.record(0.0, 0.0, 0.1)
        left.note_backlog(2)
        right = LatencyCollector()
        right.record(0.0, 0.5, 0.6)
        right.note_backlog(5)
        left.merge(right)
        assert left.operations == 2
        assert left.late_starts == 1
        assert left.max_backlog == 5

    def test_round_trip(self):
        collector = LatencyCollector()
        collector.record(0.0, 0.2, 0.3)
        collector.note_backlog(3)
        clone = LatencyCollector.from_dict(collector.to_dict())
        assert clone.operations == 1
        assert clone.late_starts == 1
        assert clone.max_backlog == 3
        assert clone.response.mean == pytest.approx(0.3)

    def test_cell_fields_shape(self):
        collector = LatencyCollector()
        collector.record(0.0, 0.0, 0.05)
        fields = collector.cell_fields()
        for key in ("late_starts", "max_backlog", "response_p95_ms",
                    "response_p999_ms", "service_p95_ms", "wait_mean_ms"):
            assert key in fields
        assert fields["service_p95_ms"] == pytest.approx(50.0, rel=0.03)

    def test_collector_is_picklable(self):
        collector = LatencyCollector()
        collector.record(0.0, 0.0, 0.1)
        clone = pickle.loads(pickle.dumps(collector))
        assert clone.operations == 1
        assert clone.response.mean == pytest.approx(0.1)


class TestBoundedSample:
    """The satellite pin: exact below the fold threshold, histogram
    percentiles within tolerance above it."""

    def test_exact_regime_matches_list_percentile(self):
        values = [float(index) for index in range(1, 101)]
        sample = BoundedSample(values)
        assert sample.exact
        for q in (50.0, 95.0, 99.0):
            assert sample.percentile(q) == percentile(values, q)
        assert list(sample) == values
        assert sample == values

    @settings(max_examples=25, deadline=None)
    @given(st.lists(in_range, min_size=1, max_size=300))
    def test_folded_percentiles_within_histogram_tolerance(self, values):
        sample = BoundedSample(values, threshold=16, precision=0.005)
        if len(values) <= 16:
            assert sample.exact
            return
        assert not sample.exact
        for q in (50.0, 95.0, 99.0):
            exact = nearest_rank(values, q)
            folded = sample.percentile(q)
            # Two growth steps of slack, same reasoning as the
            # histogram precision property above.
            slack = (1.0 + 0.005) ** 2
            assert exact / slack <= folded <= exact * slack

    def test_fold_is_permanent_and_indexing_refuses(self):
        sample = BoundedSample(threshold=4)
        sample.extend([0.1, 0.2, 0.3, 0.4, 0.5])
        assert not sample.exact
        assert len(sample) == 5
        with pytest.raises(ParameterError):
            list(sample)
        with pytest.raises(ParameterError):
            sample[0]

    def test_extend_merges_folded_samples(self):
        left = BoundedSample([0.1] * 5, threshold=4)
        right = BoundedSample([0.9] * 5, threshold=4)
        left.extend(right)
        assert len(left) == 10
        assert left.percentile(50.0) == pytest.approx(0.1, rel=0.02)
        assert left.percentile(99.0) == pytest.approx(0.9, rel=0.02)

    def test_mean_spans_both_regimes(self):
        sample = BoundedSample(threshold=4)
        sample.extend([1.0, 2.0, 3.0])
        assert sample.mean == pytest.approx(2.0)
        sample.extend([4.0, 5.0])
        assert not sample.exact
        assert sample.mean == pytest.approx(3.0)

    def test_bounded_sample_is_picklable_in_both_regimes(self):
        exact = pickle.loads(pickle.dumps(BoundedSample([0.1, 0.2])))
        assert exact == [0.1, 0.2]
        folded = BoundedSample([0.1] * 10, threshold=4)
        clone = pickle.loads(pickle.dumps(folded))
        assert len(clone) == 10
        assert not clone.exact

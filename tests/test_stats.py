"""Statistics helper tests (cross-checked against numpy/scipy)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.errors import ParameterError
from repro.stats import Summary, confidence_interval, percentile, summarize


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([7.5], 95) == 7.5

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 100, size=50).tolist()
        for q in (10, 25, 50, 75, 90, 95):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q)))

    def test_validation(self):
        with pytest.raises(ParameterError):
            percentile([], 50)
        with pytest.raises(ParameterError):
            percentile([1], 101)


class TestConfidenceInterval:
    def test_zero_for_tiny_samples(self):
        assert confidence_interval([]) == 0.0
        assert confidence_interval([5.0]) == 0.0

    def test_zero_variance(self):
        assert confidence_interval([3.0, 3.0, 3.0]) == 0.0

    def test_matches_scipy_t_interval(self):
        rng = np.random.default_rng(2)
        values = rng.normal(10, 2, size=12).tolist()
        n = len(values)
        mean = float(np.mean(values))
        sem = float(scipy_stats.sem(values))
        low, high = scipy_stats.t.interval(0.95, n - 1, loc=mean, scale=sem)
        half_width = (high - low) / 2
        assert confidence_interval(values) == pytest.approx(half_width,
                                                            rel=1e-3)

    def test_large_samples_use_normal_approximation(self):
        values = list(np.random.default_rng(3).normal(0, 1, size=100))
        expected = 1.96 * float(np.std(values, ddof=1)) / np.sqrt(100)
        assert confidence_interval(values) == pytest.approx(expected,
                                                            rel=1e-6)


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == 2.5

    def test_stdev_matches_numpy(self):
        values = [1.0, 5.0, 2.0, 8.0, 3.0]
        assert summarize(values).stdev == pytest.approx(
            float(np.std(values, ddof=1)))

    def test_single_sample(self):
        summary = summarize([42.0])
        assert summary.stdev == 0.0
        assert summary.ci95 == 0.0
        assert summary.p95 == 42.0

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            summarize([])

    def test_describe_format(self):
        text = summarize([1.0, 2.0]).describe(unit="ms")
        assert "±" in text and "ms" in text and "n=2" in text


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False),
                       min_size=1, max_size=60))
def test_summary_invariants(values):
    summary = summarize(values)
    assert summary.minimum <= summary.median <= summary.maximum
    # Mean may exceed the extremes by float rounding only.
    slack = 1e-9 * max(1.0, abs(summary.minimum), abs(summary.maximum))
    assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
    assert summary.stdev >= 0.0
    assert summary.ci95 >= 0.0
    assert summary.count == len(values)

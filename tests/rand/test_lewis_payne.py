"""Lewis–Payne GFSR generator tests."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.rand.lewis_payne import DEFAULT_SEED, LewisPayne


class TestConstruction:
    def test_default_trinomial_is_98_27(self):
        assert LewisPayne(1).trinomial == (98, 27)

    def test_seed_is_recorded(self):
        assert LewisPayne(777).seed == 777

    def test_rejects_non_integer_seed(self):
        with pytest.raises(ParameterError):
            LewisPayne("seed")  # type: ignore[arg-type]

    def test_rejects_bad_trinomial(self):
        with pytest.raises(ParameterError):
            LewisPayne(1, p=27, q=98)
        with pytest.raises(ParameterError):
            LewisPayne(1, p=10, q=0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ParameterError):
            LewisPayne(1, warmup=-1)

    def test_zero_seed_is_usable(self):
        generator = LewisPayne(0)
        assert 0 <= generator.next_word() <= 0xFFFFFFFF


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = LewisPayne(2024)
        b = LewisPayne(2024)
        assert [a.next_word() for _ in range(100)] == \
               [b.next_word() for _ in range(100)]

    def test_different_seeds_diverge(self):
        a = LewisPayne(1)
        b = LewisPayne(2)
        assert [a.next_word() for _ in range(20)] != \
               [b.next_word() for _ in range(20)]

    def test_getstate_setstate_roundtrip(self):
        generator = LewisPayne(55)
        generator.next_word()
        state = generator.getstate()
        expected = [generator.next_word() for _ in range(50)]
        generator.setstate(state)
        assert [generator.next_word() for _ in range(50)] == expected

    def test_setstate_rejects_wrong_width(self):
        generator = LewisPayne(55)
        with pytest.raises(ParameterError):
            generator.setstate((0, (1, 2, 3), None))

    def test_setstate_rejects_bad_index(self):
        generator = LewisPayne(55)
        index, words, spare = generator.getstate()
        with pytest.raises(ParameterError):
            generator.setstate((len(words), words, spare))


class TestSpawn:
    def test_spawn_is_deterministic(self):
        a = LewisPayne(9).spawn(3)
        b = LewisPayne(9).spawn(3)
        assert [a.next_word() for _ in range(10)] == \
               [b.next_word() for _ in range(10)]

    def test_spawn_keys_differ(self):
        a = LewisPayne(9).spawn(1)
        b = LewisPayne(9).spawn(2)
        assert [a.next_word() for _ in range(10)] != \
               [b.next_word() for _ in range(10)]

    def test_spawn_differs_from_parent(self):
        parent = LewisPayne(9)
        child = parent.spawn(1)
        assert [parent.next_word() for _ in range(10)] != \
               [child.next_word() for _ in range(10)]


class TestDraws:
    def test_random_in_unit_interval(self, rng):
        for _ in range(1000):
            value = rng.random()
            assert 0.0 <= value < 1.0

    def test_random53_in_unit_interval(self, rng):
        for _ in range(1000):
            value = rng.random53()
            assert 0.0 <= value < 1.0

    def test_randint_respects_bounds(self, rng):
        for _ in range(2000):
            value = rng.randint(5, 9)
            assert 5 <= value <= 9

    def test_randint_degenerate_range(self, rng):
        assert rng.randint(7, 7) == 7

    def test_randint_rejects_empty_range(self, rng):
        with pytest.raises(ParameterError):
            rng.randint(5, 4)

    def test_randint_covers_range(self, rng):
        seen = {rng.randint(1, 4) for _ in range(500)}
        assert seen == {1, 2, 3, 4}

    def test_randint_roughly_uniform(self):
        rng = LewisPayne(31337)
        counts = [0] * 10
        n = 50_000
        for _ in range(n):
            counts[rng.randint(0, 9)] += 1
        expected = n / 10
        for count in counts:
            assert abs(count - expected) < 5 * math.sqrt(expected)

    def test_choice(self, rng):
        population = ["a", "b", "c"]
        assert rng.choice(population) in population

    def test_choice_rejects_empty(self, rng):
        with pytest.raises(ParameterError):
            rng.choice([])

    def test_shuffle_is_permutation(self, rng):
        values = list(range(50))
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == values
        assert shuffled != values  # 1/50! chance of false failure.

    def test_sample_without_replacement(self, rng):
        population = list(range(30))
        sample = rng.sample(population, 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10
        assert set(sample) <= set(population)

    def test_sample_rejects_oversize(self, rng):
        with pytest.raises(ParameterError):
            rng.sample([1, 2], 3)

    def test_expovariate_positive(self, rng):
        for _ in range(200):
            assert rng.expovariate(2.0) >= 0.0

    def test_expovariate_rejects_bad_rate(self, rng):
        with pytest.raises(ParameterError):
            rng.expovariate(0.0)

    def test_expovariate_mean(self):
        rng = LewisPayne(5150)
        n = 20_000
        mean = sum(rng.expovariate(4.0) for _ in range(n)) / n
        assert abs(mean - 0.25) < 0.01

    def test_gauss_moments(self):
        rng = LewisPayne(99)
        n = 20_000
        values = [rng.gauss(10.0, 2.0) for _ in range(n)]
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        assert abs(mean - 10.0) < 0.1
        assert abs(var - 4.0) < 0.2

    def test_gauss_rejects_negative_sigma(self, rng):
        with pytest.raises(ParameterError):
            rng.gauss(0.0, -1.0)

    def test_words_iterator(self, rng):
        assert len(list(rng.words(17))) == 17

    def test_words_rejects_negative(self, rng):
        with pytest.raises(ParameterError):
            list(rng.words(-1))


class TestGeometricHalf:
    def test_distribution_matches_half_powers(self):
        rng = LewisPayne(4242)
        n = 40_000
        counts = {}
        for _ in range(n):
            value = rng.geometric_half(8)
            counts[value] = counts.get(value, 0) + 1
        # p(1) = 1/2, p(2) = 1/4, p(3) = 1/8 ...
        for k, expected_p in ((1, 0.5), (2, 0.25), (3, 0.125)):
            observed = counts.get(k, 0) / n
            assert abs(observed - expected_p) < 0.01

    def test_bounds(self, rng):
        for _ in range(500):
            value = rng.geometric_half(3)
            assert value is None or 1 <= value <= 3

    def test_max_value_one_mostly_one(self):
        rng = LewisPayne(7)
        values = [rng.geometric_half(1) for _ in range(1000)]
        ones = sum(1 for v in values if v == 1)
        assert ones > 400  # p(1) = 0.5.
        assert all(v in (None, 1) for v in values)

    def test_rejects_bad_max(self, rng):
        with pytest.raises(ParameterError):
            rng.geometric_half(0)


class TestBitStatistics:
    def test_words_use_all_bits(self):
        rng = LewisPayne(13)
        ored = 0
        anded = 0xFFFFFFFF
        for _ in range(2000):
            word = rng.next_word()
            ored |= word
            anded &= word
        assert ored == 0xFFFFFFFF  # Every bit is sometimes 1...
        assert anded == 0          # ...and sometimes 0.

    def test_mean_of_floats_near_half(self):
        rng = LewisPayne(1001)
        n = 50_000
        mean = sum(rng.random() for _ in range(n)) / n
        assert abs(mean - 0.5) < 0.005


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**63 - 1),
       low=st.integers(min_value=-1000, max_value=1000),
       span=st.integers(min_value=0, max_value=500))
def test_randint_always_in_bounds(seed, low, span):
    rng = LewisPayne(seed, warmup=10)
    high = low + span
    for _ in range(20):
        assert low <= rng.randint(low, high) <= high


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_reproducibility_property(seed):
    a = LewisPayne(seed, warmup=5)
    b = LewisPayne(seed, warmup=5)
    assert [a.next_word() for _ in range(25)] == \
           [b.next_word() for _ in range(25)]

"""DIST1..DIST5 distribution tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.rand.distributions import (
    DISTRIBUTION_NAMES,
    ConstantDistribution,
    NormalDistribution,
    SpecialDistribution,
    UniformDistribution,
    ZipfDistribution,
    distribution_from_name,
)
from repro.rand.lewis_payne import LewisPayne


class TestUniform:
    def test_bounds(self, rng):
        dist = UniformDistribution()
        for _ in range(500):
            assert 3 <= dist.draw(rng, 3, 17) <= 17

    def test_covers_small_range(self, rng):
        dist = UniformDistribution()
        assert {dist.draw(rng, 1, 3) for _ in range(200)} == {1, 2, 3}

    def test_center_ignored(self, rng):
        dist = UniformDistribution()
        values = {dist.draw(rng, 1, 100, center=1) for _ in range(300)}
        assert max(values) > 60  # Not pulled toward the center.

    def test_empty_range_rejected(self, rng):
        with pytest.raises(ParameterError):
            UniformDistribution().draw(rng, 5, 4)


class TestConstant:
    def test_defaults_to_low(self, rng):
        dist = ConstantDistribution()
        assert all(dist.draw(rng, 4, 9) == 4 for _ in range(10))

    def test_fixed_value(self, rng):
        dist = ConstantDistribution(7)
        assert all(dist.draw(rng, 1, 10) == 7 for _ in range(10))

    def test_value_clamped_to_range(self, rng):
        dist = ConstantDistribution(42)
        assert dist.draw(rng, 1, 10) == 10
        assert dist.draw(rng, 50, 60) == 50

    def test_consumes_no_randomness(self, rng):
        state = rng.getstate()
        ConstantDistribution(3).draw(rng, 1, 5)
        assert rng.getstate() == state

    def test_describe(self):
        assert ConstantDistribution().describe() == "Constant"
        assert ConstantDistribution(3).describe() == "Constant(3)"


class TestNormal:
    def test_bounds(self, rng):
        dist = NormalDistribution(std_fraction=0.3)
        for _ in range(500):
            assert 0 <= dist.draw(rng, 0, 50) <= 50

    def test_concentrates_near_midpoint(self):
        rng = LewisPayne(77)
        dist = NormalDistribution(std_fraction=0.05)
        values = [dist.draw(rng, 0, 100) for _ in range(2000)]
        mean = sum(values) / len(values)
        assert abs(mean - 50) < 2

    def test_center_pulls_mean(self):
        rng = LewisPayne(78)
        dist = NormalDistribution(std_fraction=0.05)
        values = [dist.draw(rng, 0, 100, center=20) for _ in range(2000)]
        mean = sum(values) / len(values)
        assert abs(mean - 20) < 2

    def test_center_disabled(self):
        rng = LewisPayne(79)
        dist = NormalDistribution(std_fraction=0.05, use_center=False)
        values = [dist.draw(rng, 0, 100, center=20) for _ in range(1000)]
        mean = sum(values) / len(values)
        assert abs(mean - 50) < 3

    def test_degenerate_range(self, rng):
        assert NormalDistribution().draw(rng, 5, 5) == 5

    def test_rejects_bad_std(self):
        with pytest.raises(ParameterError):
            NormalDistribution(std_fraction=0.0)


class TestZipf:
    def test_bounds(self, rng):
        dist = ZipfDistribution(skew=1.0)
        for _ in range(500):
            assert 10 <= dist.draw(rng, 10, 60) <= 60

    def test_low_values_are_hot(self):
        rng = LewisPayne(80)
        dist = ZipfDistribution(skew=1.2)
        values = [dist.draw(rng, 1, 100) for _ in range(5000)]
        first_decile = sum(1 for v in values if v <= 10)
        last_decile = sum(1 for v in values if v > 90)
        assert first_decile > 5 * last_decile

    def test_higher_skew_more_concentrated(self):
        rng_a, rng_b = LewisPayne(81), LewisPayne(81)
        gentle = ZipfDistribution(skew=0.5)
        steep = ZipfDistribution(skew=2.0)
        hits_gentle = sum(1 for _ in range(3000)
                          if gentle.draw(rng_a, 1, 50) == 1)
        hits_steep = sum(1 for _ in range(3000)
                         if steep.draw(rng_b, 1, 50) == 1)
        assert hits_steep > hits_gentle

    def test_degenerate_range(self, rng):
        assert ZipfDistribution().draw(rng, 9, 9) == 9

    def test_rejects_bad_skew(self):
        with pytest.raises(ParameterError):
            ZipfDistribution(skew=0.0)


class TestSpecial:
    def test_bounds_without_center(self, rng):
        dist = SpecialDistribution(ref_zone=5)
        for _ in range(300):
            assert 1 <= dist.draw(rng, 1, 1000) <= 1000

    def test_locality_fraction(self):
        rng = LewisPayne(82)
        dist = SpecialDistribution(ref_zone=10, locality_probability=0.9)
        center = 500
        inside = 0
        n = 5000
        for _ in range(n):
            value = dist.draw(rng, 1, 1000, center=center)
            if abs(value - center) <= 10:
                inside += 1
        # 90% local + ~2% of the uniform 10% also lands inside.
        assert 0.85 < inside / n < 0.95

    def test_zone_clipped_at_range_edges(self, rng):
        dist = SpecialDistribution(ref_zone=10, locality_probability=1.0)
        for _ in range(200):
            value = dist.draw(rng, 1, 1000, center=3)
            assert 1 <= value <= 13

    def test_probability_one_always_local(self, rng):
        dist = SpecialDistribution(ref_zone=2, locality_probability=1.0)
        for _ in range(200):
            assert abs(dist.draw(rng, 1, 100, center=50) - 50) <= 2

    def test_probability_zero_is_uniform(self):
        rng = LewisPayne(83)
        dist = SpecialDistribution(ref_zone=2, locality_probability=0.0)
        values = [dist.draw(rng, 1, 100, center=50) for _ in range(2000)]
        outside = sum(1 for v in values if abs(v - 50) > 2)
        assert outside > 1800

    def test_no_center_falls_back_to_uniform(self):
        rng = LewisPayne(84)
        dist = SpecialDistribution(ref_zone=1, locality_probability=1.0)
        values = {dist.draw(rng, 1, 10) for _ in range(300)}
        assert len(values) == 10

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            SpecialDistribution(ref_zone=-1)
        with pytest.raises(ParameterError):
            SpecialDistribution(locality_probability=1.5)


class TestRegistry:
    def test_names(self):
        assert DISTRIBUTION_NAMES == ("constant", "normal", "special",
                                      "uniform", "zipf")

    @pytest.mark.parametrize("name", DISTRIBUTION_NAMES)
    def test_every_name_constructible(self, name, rng):
        dist = distribution_from_name(name)
        assert 1 <= dist.draw(rng, 1, 5, center=3) <= 5

    def test_case_insensitive(self):
        assert isinstance(distribution_from_name("  Uniform "),
                          UniformDistribution)

    def test_kwargs_forwarded(self):
        dist = distribution_from_name("special", ref_zone=3)
        assert dist.ref_zone == 3

    def test_unknown_name(self):
        with pytest.raises(ParameterError):
            distribution_from_name("pareto")


class TestEquality:
    def test_equal_same_parameters(self):
        assert ZipfDistribution(1.5) == ZipfDistribution(1.5)
        assert UniformDistribution() == UniformDistribution()

    def test_not_equal_different_parameters(self):
        assert ZipfDistribution(1.5) != ZipfDistribution(2.0)
        assert ConstantDistribution(1) != ConstantDistribution(2)

    def test_not_equal_different_types(self):
        assert UniformDistribution() != ConstantDistribution()

    def test_hashable(self):
        assert len({UniformDistribution(), UniformDistribution(),
                    ZipfDistribution()}) == 2


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       low=st.integers(min_value=-100, max_value=100),
       span=st.integers(min_value=0, max_value=200),
       center=st.one_of(st.none(), st.integers(min_value=-200, max_value=200)),
       name=st.sampled_from(DISTRIBUTION_NAMES))
def test_all_distributions_respect_bounds(seed, low, span, center, name):
    rng = LewisPayne(seed, warmup=5)
    dist = distribution_from_name(name)
    high = low + span
    for _ in range(10):
        assert low <= dist.draw(rng, low, high, center=center) <= high

"""CLI tests (fast subcommands only; the heavy tables are covered by
benchmarks and tests/test_experiments.py)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["teleport"])

    def test_tables_requires_valid_id(self):
        with pytest.raises(SystemExit):
            main(["tables", "--id", "9"])


class TestInfoAndPresets:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "EDBT" in out

    def test_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "default-small" in out
        assert "dstc-club" in out


class TestTables:
    def test_table1(self, capsys):
        assert main(["tables", "--id", "1"]) == 0
        out = capsys.readouterr().out
        assert "NC" in out and "20000" in out and "Uniform" in out

    def test_table2(self, capsys):
        assert main(["tables", "--id", "2"]) == 0
        out = capsys.readouterr().out
        assert "STODEPTH" in out and "10000" in out

    def test_table3(self, capsys):
        assert main(["tables", "--id", "3"]) == 0
        out = capsys.readouterr().out
        assert "PartId - RefZone" in out
        assert "Special" in out


class TestBackends:
    def test_backends_lists_engines(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("simulated", "memory", "sqlite"):
            assert name in out

    def test_run_with_memory_backend(self, capsys):
        assert main(["run", "--preset", "default-small",
                     "--backend", "memory"]) == 0
        out = capsys.readouterr().out
        assert "backend  : memory" in out
        assert "P50" in out and "P95" in out and "P99" in out

    def test_run_with_sqlite_backend(self, capsys):
        assert main(["run", "--preset", "default-small",
                     "--backend", "sqlite", "--buffer-pages", "64"]) == 0
        out = capsys.readouterr().out
        assert "backend  : sqlite" in out
        assert "wall-clock latency" in out

    def test_backends_table_shows_capabilities(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "batched-reads" in out
        assert "cold-cache" in out
        assert "clustering" in out

    def test_run_cold_start(self, capsys):
        assert main(["run", "--preset", "default-small",
                     "--backend", "sqlite", "--cold-start"]) == 0
        out = capsys.readouterr().out
        assert "backend  : sqlite" in out


class TestKernelCommands:
    """`ops` and `multiuser` drive the unified kernel from the CLI."""

    def test_ops_on_sqlite(self, capsys):
        assert main(["ops", "--preset", "default-small",
                     "--backend", "sqlite", "--operations", "12"]) == 0
        out = capsys.readouterr().out
        assert "Generic operation mix" in out
        assert "SQL round trips" in out

    def test_ops_on_simulated(self, capsys):
        assert main(["ops", "--preset", "default-small",
                     "--operations", "8"]) == 0
        out = capsys.readouterr().out
        assert "Generic operation mix" in out
        assert "SQL round trips" not in out

    def test_multiuser_on_memory(self, capsys):
        assert main(["multiuser", "--preset", "default-small",
                     "--backend", "memory", "--clients", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 clients on 'memory'" in out
        assert "merged warm wall-clock" in out
        assert "P95" in out

    def test_multiuser_rejects_zero_clients(self, capsys):
        assert main(["multiuser", "--preset", "default-small",
                     "--clients", "0"]) == 1
        err = capsys.readouterr().err
        assert "client" in err.lower()

    def test_run_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["run", "--backend", "mongodb"])

    def test_generate_with_backend_load(self, capsys):
        assert main(["generate", "--preset", "default-small",
                     "--backend", "sqlite"]) == 0
        out = capsys.readouterr().out
        assert "bulk load" in out
        assert "storage units" in out

    def test_stale_sqlite_file_errors_cleanly(self, tmp_path, capsys):
        """A non-empty database file yields a message, not a traceback."""
        path = str(tmp_path / "ocb.db")
        assert main(["generate", "--preset", "default-small",
                     "--backend", "sqlite", "--sqlite-path", path]) == 0
        capsys.readouterr()
        assert main(["generate", "--preset", "default-small",
                     "--backend", "sqlite", "--sqlite-path", path]) == 1
        err = capsys.readouterr().err
        assert err.startswith("ocb: error:")
        assert "empty backend" in err


class TestGenerateAndRun:
    def test_generate(self, capsys):
        assert main(["generate", "--preset", "default-small"]) == 0
        out = capsys.readouterr().out
        assert "objects" in out
        assert "2000" in out

    def test_generate_with_seed_and_validation(self, capsys):
        assert main(["generate", "--preset", "default-small",
                     "--seed", "5", "--validate"]) == 0

    def test_run_small(self, capsys):
        assert main(["run", "--preset", "default-small",
                     "--buffer-pages", "32"]) == 0
        out = capsys.readouterr().out
        assert "Warm-run metrics" in out
        assert "all" in out

    def test_fig4_tiny(self, capsys):
        assert main(["fig4", "--sizes", "10", "50",
                     "--classes", "1", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out

    def test_fig4_chart(self, capsys):
        assert main(["fig4", "--sizes", "10", "50", "--classes", "1",
                     "--chart"]) == 0
        out = capsys.readouterr().out
        assert "log-log" in out

    def test_qualitative(self, capsys):
        assert main(["qualitative"]) == 0
        out = capsys.readouterr().out
        assert "parameter_simplicity" in out
        assert "dstc" in out


@pytest.mark.slow
class TestExperimentCommands:
    def test_table4_tiny(self, capsys):
        assert main(["table4", "--objects", "2000", "--transactions", "6",
                     "--buffer-pages", "64"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "DSTC-CluB" in out

    def test_table5_tiny(self, capsys):
        assert main(["table5", "--objects", "1000", "--transactions", "10",
                     "--buffer-pages", "48"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out


class TestScenarioCommand:
    def test_list_renders_the_preset_library(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("paper_default", "read_heavy", "write_heavy",
                     "mixed_oltp", "scan_heavy"):
            assert name in out

    def test_bare_invocation_lists_and_hints(self, capsys):
        assert main(["scenario"]) == 0
        out = capsys.readouterr().out
        assert "pick a scenario preset" in out

    def test_preset_runs_in_process(self, capsys):
        assert main(["scenario", "write_heavy", "--warm", "10"]) == 0
        out = capsys.readouterr().out
        assert "per operation class" in out
        assert "write_heavy" in out
        assert "busy retries" in out

    def test_json_document(self, capsys):
        assert main(["scenario", "write_heavy", "--warm", "10",
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["scenario"] == "write_heavy"
        assert document["write_operations"] > 0
        assert document["mode"] == "interleaved"
        assert document["busy_retries"] == 0

    def test_spec_file(self, tmp_path, capsys):
        spec = {
            "mix": {"name": "probe", "entries": [
                {"kind": "simple", "weight": 0.5, "depth": 2},
                {"kind": "update", "weight": 0.5}]},
            "clients": 2, "cold_ops": 1, "warm_ops": 5,
            "backend": "memory",
        }
        path = tmp_path / "probe.json"
        path.write_text(json.dumps(spec))
        assert main(["scenario", str(path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["scenario"] == "probe"
        assert document["clients"] == 2
        assert document["operations"] == 2 * 6

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["scenario", "nope"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_cwd_file_cannot_shadow_a_preset(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "write_heavy").write_text("not json")
        assert main(["scenario", "write_heavy", "--warm", "5",
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["scenario"] == "write_heavy"


class TestMachineReadableRunAndOps:
    def test_run_json_matches_scale_convention(self, capsys):
        assert main(["run", "--backend", "memory", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "run"
        assert document["warm_transactions"] > 0
        assert document["wall_p50_ms"] <= document["wall_p99_ms"]
        assert document["per_kind"][-1]["kind"] == "all"

    def test_ops_json(self, capsys):
        assert main(["ops", "--backend", "sqlite", "--operations", "8",
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "ops"
        assert document["operations"] == 8
        assert document["sql_round_trips"] is not None
        assert sum(row["n"] for row in document["per_operation"]) == 8

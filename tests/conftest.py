"""Shared fixtures: a small generated database and loaded stores.

The database is session-scoped (tests must not mutate it); every store is
function-scoped so I/O accounting starts clean per test.
"""

from __future__ import annotations

import pytest

from repro.core.database import OCBDatabase
from repro.core.generation import generate_database
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.rand.lewis_payne import LewisPayne
from repro.store.storage import ObjectStore, StoreConfig


@pytest.fixture(scope="session")
def small_db_params() -> DatabaseParameters:
    """A 300-object, 8-class database — fast but structurally rich."""
    return DatabaseParameters(
        num_classes=8,
        max_nref=4,
        base_size=30,
        num_objects=300,
        num_ref_types=4,
        seed=42)


@pytest.fixture(scope="session")
def small_database(small_db_params) -> OCBDatabase:
    """Generated once per session; validated."""
    database, _report = generate_database(small_db_params, validate=True)
    return database


@pytest.fixture
def loaded_store(small_database) -> ObjectStore:
    """A fresh store with the small database bulk-loaded in oid order."""
    store = StoreConfig(page_size=512, buffer_pages=16).build()
    records = small_database.to_records()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    return store


@pytest.fixture
def small_workload() -> WorkloadParameters:
    """A tiny cold/warm protocol for integration-ish tests."""
    return WorkloadParameters(
        set_depth=2,
        simple_depth=2,
        hierarchy_depth=3,
        stochastic_depth=10,
        cold_n=3,
        hot_n=12,
        max_visits=400)


@pytest.fixture
def rng() -> LewisPayne:
    """A deterministic generator for per-test draws."""
    return LewisPayne(12345)

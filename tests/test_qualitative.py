"""Qualitative evaluation grid tests (paper Section 5 future work)."""

from __future__ import annotations

import pytest

from repro.clustering.base import NoClustering
from repro.clustering.dro import DROPolicy
from repro.clustering.dstc import DSTCParameters, DSTCPolicy
from repro.clustering.placements import StaticPolicy
from repro.errors import ParameterError
from repro.qualitative import (
    CRITERIA,
    QualitativeAssessment,
    assess_policy,
    render_assessments,
)
from repro.store.serializer import StoredObject


def records():
    return {1: StoredObject(oid=1, cid=1, refs=(2,)),
            2: StoredObject(oid=2, cid=1, refs=())}


class TestCriteria:
    def test_grid_covers_the_papers_examples(self):
        keys = {c.key for c in CRITERIA}
        # "parameters easy to apprehend and set up", "easy to use /
        # transparent to the user" — straight from Section 5.
        assert "parameter_simplicity" in keys
        assert "transparency" in keys

    def test_assessment_validation(self):
        with pytest.raises(ParameterError):
            QualitativeAssessment("x", scores={"nope": 1})
        with pytest.raises(ParameterError):
            QualitativeAssessment("x", scores={"transparency": 9})


class TestAssessments:
    def test_no_clustering_is_transparent_and_cheap(self):
        assessment = assess_policy(NoClustering())
        assert assessment.score("transparency") == 4
        assert assessment.score("bookkeeping_cost") == 4
        assert assessment.score("adaptivity") == 0

    def test_dstc_trades_cost_for_adaptivity(self):
        assessment = assess_policy(DSTCPolicy())
        assert assessment.score("adaptivity") == 4
        assert assessment.score("bookkeeping_cost") <= 2
        assert assessment.score("transparency") <= 3  # Observes accesses.

    def test_dro_is_cheaper_than_dstc(self):
        dstc = assess_policy(DSTCPolicy())
        dro = assess_policy(DROPolicy())
        assert dro.score("bookkeeping_cost") > dstc.score("bookkeeping_cost")

    def test_static_scores(self):
        assessment = assess_policy(StaticPolicy(records()))
        assert assessment.score("adaptivity") == 0
        assert assessment.score("predictability") == 4

    def test_dstc_autonomy_reflects_trigger_capability(self):
        assessment = assess_policy(
            DSTCPolicy(DSTCParameters(trigger_period=50)))
        assert assessment.score("autonomy") == 4

    def test_totals_are_sum_of_scores(self):
        assessment = assess_policy(DSTCPolicy())
        assert assessment.total == sum(assessment.score(c.key)
                                       for c in CRITERIA)


class TestRendering:
    def test_table_has_one_column_per_policy(self):
        table = render_assessments([assess_policy(NoClustering()),
                                    assess_policy(DSTCPolicy())])
        assert "none" in table
        assert "dstc" in table
        assert "TOTAL" in table
        for criterion in CRITERIA:
            assert criterion.key in table

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            render_assessments([])

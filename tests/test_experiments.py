"""Experiment harness tests — the paper's shapes at miniature scale.

The benchmark suite (benchmarks/) runs the calibrated scales; here the
same harness runs tiny instances so that every shape invariant the
reproduction promises is asserted on every test run.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    PAPER_FIG4_SIZES,
    PAPER_TABLE4,
    PAPER_TABLE5,
    fig4_series,
    render_table4,
    render_table5,
    run_fig4,
    run_table4,
    run_table5,
)


class TestPaperConstants:
    def test_fig4_sizes(self):
        assert PAPER_FIG4_SIZES == (10, 100, 1000, 10000, 20000)

    def test_table4_values(self):
        assert PAPER_TABLE4["DSTC-CluB"] == (66.0, 5.0, 13.2)
        assert PAPER_TABLE4["OCB"] == (61.0, 7.0, 8.71)

    def test_table5_values(self):
        assert PAPER_TABLE5["OCB"] == (31.0, 12.0, 2.58)


class TestFig4:
    def test_grid_measured(self):
        points = run_fig4(sizes=(10, 200), class_counts=(1, 5), repeats=1)
        assert len(points) == 4
        assert all(p.seconds >= 0.0 for p in points)

    def test_time_grows_with_size(self):
        points = run_fig4(sizes=(50, 4000), class_counts=(10,), repeats=2)
        by_size = {p.num_objects: p.seconds for p in points}
        assert by_size[4000] > by_size[50]

    def test_series_regrouping(self):
        points = run_fig4(sizes=(10, 20), class_counts=(1, 2))
        series = fig4_series(points)
        assert set(series) == {"1 classes", "2 classes"}
        for pts in series.values():
            assert pts == sorted(pts)


@pytest.mark.slow
class TestTable4Shape:
    """The headline: DSTC wins big on the stereotyped traversal workload."""

    @pytest.fixture(scope="class")
    def rows(self):
        return run_table4(num_objects=4000, transactions=10,
                          buffer_pages=96, club_depth=4, ocb_depth=4)

    def test_two_rows(self, rows):
        assert [r.label for r in rows] == ["DSTC-CluB", "OCB"]

    def test_clustering_always_wins(self, rows):
        for row in rows:
            assert row.gain > 1.0, row
            assert row.ios_after < row.ios_before

    def test_overhead_accounted(self, rows):
        for row in rows:
            assert row.clustering_overhead_ios > 0

    def test_render(self, rows):
        text = render_table4(rows)
        assert "Table 4" in text
        assert "DSTC-CluB" in text
        assert "paper" in text


@pytest.mark.slow
class TestTable5Shape:
    """Mixed workload: the gain factor drops but stays above 1."""

    def test_gain_smaller_than_table4_but_positive(self):
        table4 = run_table4(num_objects=4000, transactions=10,
                            buffer_pages=96, club_depth=4, ocb_depth=4)
        table5 = run_table5(num_objects=1500, transactions=20,
                            buffer_pages=64)
        assert table5.gain > 1.0
        assert table5.gain < max(row.gain for row in table4)

    def test_render(self):
        row = run_table5(num_objects=1000, transactions=10, buffer_pages=48)
        text = render_table5(row)
        assert "Table 5" in text

"""Static placement strategy tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.base import PlacementContext
from repro.clustering.placements import (
    PLACEMENT_STRATEGIES,
    StaticPolicy,
    breadth_first_order,
    by_class_order,
    depth_first_order,
    placement_from_name,
    sequential_order,
)
from repro.errors import ClusteringError
from repro.store.serializer import StoredObject


def chain_records():
    """1 -> 2 -> 3 -> 4, plus isolated 5; classes alternate."""
    return {
        1: StoredObject(oid=1, cid=1, refs=(2,)),
        2: StoredObject(oid=2, cid=2, refs=(3,)),
        3: StoredObject(oid=3, cid=1, refs=(4,)),
        4: StoredObject(oid=4, cid=2, refs=()),
        5: StoredObject(oid=5, cid=1, refs=()),
    }


def tree_records():
    """1 -> (2, 3); 2 -> (4, 5); 3 -> (6, 7)."""
    return {
        1: StoredObject(oid=1, cid=1, refs=(2, 3)),
        2: StoredObject(oid=2, cid=1, refs=(4, 5)),
        3: StoredObject(oid=3, cid=1, refs=(6, 7)),
        4: StoredObject(oid=4, cid=1, refs=()),
        5: StoredObject(oid=5, cid=1, refs=()),
        6: StoredObject(oid=6, cid=1, refs=()),
        7: StoredObject(oid=7, cid=1, refs=()),
    }


class TestSequential:
    def test_oid_order(self):
        assert sequential_order(chain_records()) == [1, 2, 3, 4, 5]


class TestByClass:
    def test_groups_by_class(self):
        order = by_class_order(chain_records())
        assert order == [1, 3, 5, 2, 4]


class TestDepthFirst:
    def test_follows_first_reference_first(self):
        order = depth_first_order(tree_records(), roots=[1])
        assert order == [1, 2, 4, 5, 3, 6, 7]

    def test_unreachable_appended(self):
        order = depth_first_order(chain_records(), roots=[1])
        assert order[:4] == [1, 2, 3, 4]
        assert order[4] == 5

    def test_cycle_terminates(self):
        records = {
            1: StoredObject(oid=1, cid=1, refs=(2,)),
            2: StoredObject(oid=2, cid=1, refs=(1,)),
        }
        assert depth_first_order(records) == [1, 2]

    def test_dangling_reference_ignored(self):
        records = {1: StoredObject(oid=1, cid=1, refs=(42,))}
        assert depth_first_order(records) == [1]


class TestBreadthFirst:
    def test_level_order(self):
        order = breadth_first_order(tree_records(), roots=[1])
        assert order == [1, 2, 3, 4, 5, 6, 7]


class TestRegistry:
    def test_all_names_resolve(self):
        for name in PLACEMENT_STRATEGIES:
            assert placement_from_name(name) is PLACEMENT_STRATEGIES[name]

    def test_unknown_name(self):
        with pytest.raises(ClusteringError):
            placement_from_name("chaotic")


class TestStaticPolicy:
    def test_proposes_permutation(self):
        records = tree_records()
        policy = StaticPolicy(records, strategy="depth_first")
        current = sorted(records)
        proposed = policy.propose_order(current, PlacementContext())
        assert sorted(proposed) == current

    def test_restricts_to_current_objects(self):
        records = tree_records()
        policy = StaticPolicy(records, strategy="breadth_first")
        current = [1, 2, 3]  # Store holds a subset.
        proposed = policy.propose_order(current, PlacementContext())
        assert sorted(proposed) == current

    def test_name_includes_strategy(self):
        policy = StaticPolicy(tree_records(), strategy="by_class")
        assert "by_class" in policy.name
        assert "by_class" in policy.describe()


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=1, max_value=25),
       edges=st.data(),
       name=st.sampled_from(sorted(PLACEMENT_STRATEGIES)))
def test_every_strategy_returns_permutation(n, edges, name):
    records = {}
    for oid in range(1, n + 1):
        targets = edges.draw(st.lists(
            st.integers(min_value=1, max_value=n), max_size=3))
        records[oid] = StoredObject(oid=oid, cid=1 + oid % 4,
                                    refs=tuple(targets))
    order = placement_from_name(name)(records)
    assert sorted(order) == sorted(records)

"""DRO-style policy tests."""

from __future__ import annotations

import pytest

from repro.clustering.base import PlacementContext
from repro.clustering.dro import DROParameters, DROPolicy
from repro.errors import ParameterError


def make_policy(**overrides):
    defaults = dict(min_heat=2, min_transition=1)
    defaults.update(overrides)
    return DROPolicy(DROParameters(**defaults))


def run_transaction(policy, path):
    for oid in path:
        policy.observe_access(None, oid, None)
    policy.on_transaction_end()


class TestParameters:
    @pytest.mark.parametrize("field,value", [
        ("min_heat", 0),
        ("min_transition", 0),
        ("max_run_bytes", 0),
        ("decay", 0.0),
        ("decay", 1.5),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ParameterError):
            DROParameters(**{field: value})


class TestObservation:
    def test_heat_accumulates(self):
        policy = make_policy()
        run_transaction(policy, [1, 2, 1])
        assert policy.heat_of(1) == 2.0
        assert policy.heat_of(2) == 1.0

    def test_transitions_within_transaction(self):
        policy = make_policy()
        run_transaction(policy, [1, 2, 3])
        assert policy.tracked_transitions == 2

    def test_transitions_do_not_span_transactions(self):
        policy = make_policy()
        run_transaction(policy, [1])
        run_transaction(policy, [2])
        assert policy.tracked_transitions == 0

    def test_decay_applied_per_transaction(self):
        policy = make_policy(decay=0.5)
        run_transaction(policy, [1, 1])
        assert policy.heat_of(1) == pytest.approx(1.0)  # 2 * 0.5.

    def test_reset(self):
        policy = make_policy()
        run_transaction(policy, [1, 2])
        policy.reset_observations()
        assert policy.tracked_objects == 0
        assert policy.tracked_transitions == 0


class TestPlacement:
    def context(self):
        return PlacementContext(sizes={oid: 40 for oid in range(1, 30)},
                                page_size=160)

    def test_cold_database_no_placement(self):
        policy = make_policy()
        assert policy.propose_order([1, 2, 3], self.context()) is None

    def test_hot_chain_clusters_in_order(self):
        policy = make_policy(min_heat=2, min_transition=2)
        run_transaction(policy, [5, 6, 7])
        run_transaction(policy, [5, 6, 7])
        order = policy.propose_order(list(range(1, 10)), self.context())
        assert order is not None
        assert order[:3] == [5, 6, 7]

    def test_result_is_permutation(self):
        policy = make_policy(min_heat=1)
        run_transaction(policy, [3, 1, 4, 1, 5])
        current = list(range(1, 10))
        order = policy.propose_order(current, self.context())
        assert order is not None
        assert sorted(order) == current

    def test_run_respects_byte_budget(self):
        policy = make_policy(min_heat=2, min_transition=2)
        path = [1, 2, 3, 4, 5, 6, 7, 8]
        run_transaction(policy, path)
        run_transaction(policy, path)
        order = policy.propose_order(list(range(1, 12)),
                                     self.context())  # 160 B = 4 objects.
        assert order is not None
        # The first run is budget-bounded; the chain restarts afterwards.
        assert order[:4] == [1, 2, 3, 4]

    def test_heat_orders_seeds(self):
        policy = make_policy(min_heat=1, min_transition=5)
        run_transaction(policy, [9])
        run_transaction(policy, [9])
        run_transaction(policy, [2])
        order = policy.propose_order(list(range(1, 12)), self.context())
        assert order is not None
        assert order[0] == 9  # Hottest seed first.

    def test_describe(self):
        assert "DRO" in make_policy().describe()

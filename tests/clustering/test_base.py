"""Policy interface and NoClustering baseline tests."""

from __future__ import annotations

from repro.clustering.base import (
    NoClustering,
    Placement,
    PlacementContext,
)


class TestPlacementContext:
    def test_size_lookup(self):
        ctx = PlacementContext(sizes={1: 100}, page_size=4096)
        assert ctx.size_of(1) == 100

    def test_size_default(self):
        ctx = PlacementContext()
        assert ctx.size_of(99) == 64
        assert ctx.size_of(99, default=10) == 10

    def test_default_page_size(self):
        assert PlacementContext().page_size == 4096


class TestNoClustering:
    def test_never_proposes(self):
        policy = NoClustering()
        assert policy.propose_order([1, 2], PlacementContext()) is None
        assert policy.propose_placement([1, 2], PlacementContext()) is None

    def test_never_wants_reorganization(self):
        policy = NoClustering()
        policy.observe_access(1, 2, 3)
        policy.on_transaction_end()
        assert not policy.wants_reorganization()

    def test_observation_hooks_are_noops(self):
        policy = NoClustering()
        policy.observe_access(None, 1)
        policy.reset_observations()  # Must not raise.

    def test_describe(self):
        assert NoClustering().describe() == "none"


class TestDefaultProposePlacement:
    def test_wraps_propose_order(self):
        class FixedPolicy(NoClustering):
            def propose_order(self, current_order, context):
                return list(reversed(current_order))

        placement = FixedPolicy().propose_placement([1, 2, 3],
                                                    PlacementContext())
        assert isinstance(placement, Placement)
        assert placement.order == [3, 2, 1]
        assert placement.aligned_groups is None

"""DSTC policy tests: observation, selection, consolidation, units."""

from __future__ import annotations

import pytest

from repro.clustering.base import PlacementContext
from repro.clustering.dstc import ClusteringUnit, DSTCParameters, DSTCPolicy
from repro.errors import ParameterError


def make_policy(**overrides):
    defaults = dict(observation_period=10, selection_threshold=1,
                    consolidation_weight=1.0, unit_weight_threshold=1.0)
    defaults.update(overrides)
    return DSTCPolicy(DSTCParameters(**defaults))


def observe_sequence(policy, pairs, repeats=1):
    for _ in range(repeats):
        for src, dst in pairs:
            policy.observe_access(src, dst, None)


class TestParameters:
    def test_defaults_valid(self):
        DSTCParameters()

    @pytest.mark.parametrize("field,value", [
        ("observation_period", 0),
        ("selection_threshold", 0),
        ("consolidation_weight", 1.5),
        ("consolidation_weight", -0.1),
        ("unit_weight_threshold", -1.0),
        ("max_unit_bytes", 0),
        ("max_units", 0),
        ("trigger_period", 0),
        ("unit_strategy", "magic"),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ParameterError):
            DSTCParameters(**{field: value})


class TestObservation:
    def test_root_accesses_ignored(self):
        policy = make_policy()
        policy.observe_access(None, 5, None)
        assert policy.observation_size == 0

    def test_self_links_ignored(self):
        policy = make_policy()
        policy.observe_access(5, 5, None)
        assert policy.observation_size == 0

    def test_link_crossings_counted(self):
        policy = make_policy()
        observe_sequence(policy, [(1, 2), (1, 2), (2, 3)])
        assert policy.observation_size == 2

    def test_period_flushes_to_consolidated(self):
        policy = make_policy(observation_period=2)
        observe_sequence(policy, [(1, 2)])
        policy.on_transaction_end()
        assert policy.consolidated_size == 0
        policy.on_transaction_end()  # Period boundary.
        assert policy.consolidated_size == 1
        assert policy.observation_size == 0


class TestSelection:
    def test_threshold_filters_rare_pairs(self):
        policy = make_policy(selection_threshold=3, observation_period=1)
        observe_sequence(policy, [(1, 2)], repeats=3)
        observe_sequence(policy, [(3, 4)], repeats=2)
        policy.on_transaction_end()
        assert policy.consolidated_weight(1, 2) == 3.0
        assert policy.consolidated_weight(3, 4) == 0.0


class TestConsolidation:
    def test_aging_weight_applied(self):
        policy = make_policy(observation_period=1, consolidation_weight=0.5)
        observe_sequence(policy, [(1, 2)], repeats=4)
        policy.on_transaction_end()            # consolidated = 4.
        observe_sequence(policy, [(1, 2)], repeats=2)
        policy.on_transaction_end()            # 0.5*4 + 2 = 4.
        assert policy.consolidated_weight(1, 2) == pytest.approx(4.0)

    def test_flush_observations_is_idempotent(self):
        policy = make_policy()
        observe_sequence(policy, [(1, 2)])
        policy.flush_observations()
        value = policy.consolidated_weight(1, 2)
        policy.flush_observations()
        assert policy.consolidated_weight(1, 2) == value


class TestUnits:
    def context(self, size=50, page=200):
        sizes = {oid: size for oid in range(1, 100)}
        return PlacementContext(sizes=sizes, page_size=page)

    def test_no_statistics_no_units(self):
        policy = make_policy()
        assert policy.build_units(self.context()) == []

    def test_pairs_form_units(self):
        policy = make_policy(observation_period=1)
        observe_sequence(policy, [(1, 2), (3, 4)], repeats=2)
        policy.on_transaction_end()
        units = policy.build_units(self.context())
        members = sorted(tuple(sorted(u.members)) for u in units)
        assert members == [(1, 2), (3, 4)]

    def test_unit_respects_byte_budget(self):
        policy = make_policy(observation_period=1)
        # A chain 1-2-3-4-5-6 of heavy links; budget fits 4 objects.
        chain = [(i, i + 1) for i in range(1, 6)]
        observe_sequence(policy, chain, repeats=3)
        policy.on_transaction_end()
        units = policy.build_units(self.context(size=50, page=200))
        for unit in units:
            assert sum(50 for _ in unit.members) <= 200

    def test_component_walk_strategy_covers_component(self):
        policy = make_policy(observation_period=1,
                             unit_strategy="component-walk")
        chain = [(i, i + 1) for i in range(1, 6)]
        observe_sequence(policy, chain, repeats=3)
        policy.on_transaction_end()
        units = policy.build_units(self.context(size=50, page=200))
        covered = sorted(m for u in units for m in u.members)
        assert covered == [1, 2, 3, 4, 5, 6]

    def test_heavier_links_cluster_first(self):
        policy = make_policy(observation_period=1)
        observe_sequence(policy, [(1, 2)], repeats=10)   # Hot pair.
        observe_sequence(policy, [(2, 3)], repeats=1)    # Weak link.
        observe_sequence(policy, [(3, 4)], repeats=10)   # Hot pair.
        policy.on_transaction_end()
        # Budget of 2 objects: hot pairs must win the merges.
        units = policy.build_units(self.context(size=50, page=100))
        members = sorted(tuple(sorted(u.members)) for u in units)
        assert (1, 2) in members
        assert (3, 4) in members

    def test_max_units_cap(self):
        policy = make_policy(observation_period=1, max_units=1)
        observe_sequence(policy, [(1, 2), (3, 4)], repeats=2)
        policy.on_transaction_end()
        assert len(policy.build_units(self.context())) == 1

    def test_unit_weight_threshold_filters(self):
        policy = make_policy(observation_period=1, unit_weight_threshold=5.0)
        observe_sequence(policy, [(1, 2)], repeats=2)
        policy.on_transaction_end()
        assert policy.build_units(self.context()) == []


class TestPlacement:
    def context(self):
        return PlacementContext(sizes={oid: 40 for oid in range(1, 20)},
                                page_size=120)

    def test_no_units_no_placement(self):
        policy = make_policy()
        assert policy.propose_placement([1, 2, 3], self.context()) is None
        assert policy.propose_order([1, 2, 3], self.context()) is None

    def test_placement_is_permutation(self):
        policy = make_policy(observation_period=1)
        observe_sequence(policy, [(1, 2), (2, 3), (5, 6)], repeats=2)
        policy.on_transaction_end()
        current = list(range(1, 10))
        placement = policy.propose_placement(current, self.context())
        assert placement is not None
        assert sorted(placement.order) == current

    def test_clustered_objects_lead(self):
        policy = make_policy(observation_period=1)
        observe_sequence(policy, [(7, 8)], repeats=3)
        policy.on_transaction_end()
        placement = policy.propose_placement(list(range(1, 10)),
                                             self.context())
        assert placement is not None
        assert set(placement.order[:2]) == {7, 8}

    def test_groups_cover_clustered_prefix(self):
        policy = make_policy(observation_period=1)
        observe_sequence(policy, [(1, 2), (4, 5)], repeats=2)
        policy.on_transaction_end()
        placement = policy.propose_placement(list(range(1, 10)),
                                             self.context())
        assert placement is not None
        grouped = [oid for group in placement.aligned_groups for oid in group]
        assert placement.order[:len(grouped)] == grouped

    def test_objects_absent_from_store_are_skipped(self):
        policy = make_policy(observation_period=1)
        observe_sequence(policy, [(1, 2), (98, 99)], repeats=2)
        policy.on_transaction_end()
        placement = policy.propose_placement([1, 2, 3], self.context())
        assert placement is not None
        assert sorted(placement.order) == [1, 2, 3]

    def test_reorganization_counter(self):
        policy = make_policy(observation_period=1)
        observe_sequence(policy, [(1, 2)], repeats=2)
        policy.on_transaction_end()
        policy.propose_placement([1, 2, 3], self.context())
        assert policy.reorganizations == 1


class TestTrigger:
    def test_no_trigger_by_default(self):
        policy = make_policy()
        observe_sequence(policy, [(1, 2)], repeats=5)
        for _ in range(50):
            policy.on_transaction_end()
        assert not policy.wants_reorganization()

    def test_trigger_period(self):
        policy = make_policy(observation_period=1, trigger_period=3)
        observe_sequence(policy, [(1, 2)], repeats=2)
        policy.on_transaction_end()
        assert not policy.wants_reorganization()
        policy.on_transaction_end()
        policy.on_transaction_end()
        assert policy.wants_reorganization()

    def test_reset_observations(self):
        policy = make_policy(observation_period=1)
        observe_sequence(policy, [(1, 2)], repeats=2)
        policy.on_transaction_end()
        policy.reset_observations()
        assert policy.observation_size == 0
        assert policy.consolidated_size == 0


class TestDescribe:
    def test_mentions_thresholds(self):
        text = make_policy().describe()
        assert "DSTC" in text
        assert "Tfa" in text

"""Queueing-model (DES) multi-user simulation tests."""

from __future__ import annotations

import pytest

from repro.core.parameters import WorkloadParameters
from repro.multiuser.des import SimulatedMultiUser
from repro.store.storage import StoreConfig


def workload(clients=2, think=0.0):
    return WorkloadParameters(clients=clients, cold_n=0, hot_n=4,
                              think_time=think, set_depth=1, simple_depth=1,
                              hierarchy_depth=1, stochastic_depth=3,
                              max_visits=60)


def fresh_store(database, buffer_pages=16):
    store = StoreConfig(page_size=512, buffer_pages=buffer_pages).build()
    records = database.to_records()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    return store


class TestSimulatedMultiUser:
    def test_every_transaction_completes(self, small_database):
        store = fresh_store(small_database)
        sim = SimulatedMultiUser(small_database, store, workload(clients=3),
                                 transactions_per_client=4)
        report = sim.run()
        assert len(report.clients) == 3
        for client in report.clients:
            assert client.transactions == 4

    def test_makespan_and_throughput_positive(self, small_database):
        store = fresh_store(small_database)
        report = SimulatedMultiUser(small_database, store,
                                    workload()).run()
        assert report.makespan > 0.0
        assert report.throughput > 0.0
        assert 0.0 <= report.disk_utilisation <= 1.0

    def test_response_times_recorded(self, small_database):
        store = fresh_store(small_database)
        report = SimulatedMultiUser(small_database, store,
                                    workload()).run()
        assert report.mean_response > 0.0
        for client in report.clients:
            assert client.max_response >= client.mean_response

    def test_contention_slows_responses(self, small_database):
        solo_store = fresh_store(small_database)
        solo = SimulatedMultiUser(small_database, solo_store,
                                  workload(clients=1),
                                  transactions_per_client=4).run()
        busy_store = fresh_store(small_database)
        busy = SimulatedMultiUser(small_database, busy_store,
                                  workload(clients=4),
                                  transactions_per_client=4).run()
        assert busy.mean_response >= solo.mean_response

    def test_think_time_stretches_makespan(self, small_database):
        fast_store = fresh_store(small_database)
        fast = SimulatedMultiUser(small_database, fast_store,
                                  workload(think=0.0)).run()
        slow_store = fresh_store(small_database)
        slow = SimulatedMultiUser(small_database, slow_store,
                                  workload(think=5.0)).run()
        assert slow.makespan > fast.makespan

    def test_wider_disk_reduces_waiting(self, small_database):
        narrow_store = fresh_store(small_database, buffer_pages=4)
        narrow = SimulatedMultiUser(small_database, narrow_store,
                                    workload(clients=4),
                                    disk_capacity=1).run()
        wide_store = fresh_store(small_database, buffer_pages=4)
        wide = SimulatedMultiUser(small_database, wide_store,
                                  workload(clients=4),
                                  disk_capacity=4).run()
        assert wide.mean_response <= narrow.mean_response

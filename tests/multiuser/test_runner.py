"""Multi-client round-robin runner tests."""

from __future__ import annotations

import pytest

from repro.core.parameters import WorkloadParameters
from repro.errors import WorkloadError
from repro.multiuser.runner import MultiClientRunner, MultiUserReport
from repro.store.storage import StoreConfig


def workload(clients=2, cold=2, hot=5):
    return WorkloadParameters(clients=clients, cold_n=cold, hot_n=hot,
                              set_depth=2, simple_depth=2, hierarchy_depth=2,
                              stochastic_depth=5, max_visits=150)


def fresh_store(database):
    store = StoreConfig(page_size=512, buffer_pages=16).build()
    records = database.to_records()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    return store


class TestMultiClientRunner:
    def test_each_client_runs_full_protocol(self, small_database):
        store = fresh_store(small_database)
        report = MultiClientRunner(small_database, store,
                                   workload(clients=3)).run()
        assert report.client_count == 3
        for client in report.clients:
            assert client.cold.transaction_count == 2
            assert client.warm.transaction_count == 5

    def test_merged_totals(self, small_database):
        store = fresh_store(small_database)
        report = MultiClientRunner(small_database, store,
                                   workload(clients=2)).run()
        assert report.merged_warm.transaction_count == 10
        assert report.merged_cold.transaction_count == 4
        total = sum(c.warm.totals.visits for c in report.clients)
        assert report.merged_warm.totals.visits == total

    def test_clients_follow_distinct_streams(self, small_database):
        store = fresh_store(small_database)
        report = MultiClientRunner(small_database, store,
                                   workload(clients=2)).run()
        a, b = report.clients
        assert a.warm.totals.visits != b.warm.totals.visits

    def test_shared_buffer_gives_cross_client_hits(self, small_database):
        store = fresh_store(small_database)
        report = MultiClientRunner(small_database, store,
                                   workload(clients=2)).run()
        assert report.merged_warm.totals.buffer_hits > 0

    def test_single_client_equivalent_shape(self, small_database):
        store = fresh_store(small_database)
        report = MultiClientRunner(small_database, store,
                                   workload(clients=1)).run()
        assert report.client_count == 1
        assert report.warm_reads_per_transaction >= 0.0

    def test_empty_report_defaults(self):
        report = MultiUserReport()
        assert report.client_count == 0
        assert report.merged_warm.transaction_count == 0

"""Multi-client round-robin runner tests."""

from __future__ import annotations

import pytest

from repro.core.parameters import WorkloadParameters
from repro.errors import WorkloadError
from repro.multiuser.runner import MultiClientRunner, MultiUserReport
from repro.store.storage import StoreConfig


def workload(clients=2, cold=2, hot=5):
    return WorkloadParameters(clients=clients, cold_n=cold, hot_n=hot,
                              set_depth=2, simple_depth=2, hierarchy_depth=2,
                              stochastic_depth=5, max_visits=150)


def fresh_store(database):
    store = StoreConfig(page_size=512, buffer_pages=16).build()
    records = database.to_records()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    return store


class TestMultiClientRunner:
    def test_each_client_runs_full_protocol(self, small_database):
        store = fresh_store(small_database)
        report = MultiClientRunner(small_database, store,
                                   workload(clients=3)).run()
        assert report.client_count == 3
        for client in report.clients:
            assert client.cold.transaction_count == 2
            assert client.warm.transaction_count == 5

    def test_merged_totals(self, small_database):
        store = fresh_store(small_database)
        report = MultiClientRunner(small_database, store,
                                   workload(clients=2)).run()
        assert report.merged_warm.transaction_count == 10
        assert report.merged_cold.transaction_count == 4
        total = sum(c.warm.totals.visits for c in report.clients)
        assert report.merged_warm.totals.visits == total

    def test_clients_follow_distinct_streams(self, small_database):
        store = fresh_store(small_database)
        report = MultiClientRunner(small_database, store,
                                   workload(clients=2)).run()
        a, b = report.clients
        assert a.warm.totals.visits != b.warm.totals.visits

    def test_shared_buffer_gives_cross_client_hits(self, small_database):
        store = fresh_store(small_database)
        report = MultiClientRunner(small_database, store,
                                   workload(clients=2)).run()
        assert report.merged_warm.totals.buffer_hits > 0

    def test_single_client_equivalent_shape(self, small_database):
        store = fresh_store(small_database)
        report = MultiClientRunner(small_database, store,
                                   workload(clients=1)).run()
        assert report.client_count == 1
        assert report.warm_reads_per_transaction >= 0.0

    def test_empty_report_defaults(self):
        report = MultiUserReport()
        assert report.client_count == 0
        assert report.merged_warm.transaction_count == 0
        assert report.warm_wall_percentiles.count == 0


class TestMergedWallPercentiles:
    """Multi-user reports quote P50/P95/P99 like single-client runs."""

    def test_merged_percentiles_cover_every_transaction(self,
                                                        small_database):
        store = fresh_store(small_database)
        report = MultiClientRunner(small_database, store,
                                   workload(clients=3)).run()
        warm = report.warm_wall_percentiles
        assert warm.count == report.merged_warm.transaction_count == 15
        assert 0.0 < warm.p50 <= warm.p95 <= warm.p99
        cold = report.cold_wall_percentiles
        assert cold.count == report.merged_cold.transaction_count == 6

    def test_merged_samples_are_union_of_clients(self, small_database):
        store = fresh_store(small_database)
        report = MultiClientRunner(small_database, store,
                                   workload(clients=2)).run()
        merged = sorted(report.merged_warm.totals.wall_samples)
        unioned = sorted(sample for client in report.clients
                         for sample in client.warm.totals.wall_samples)
        assert merged == unioned

    def test_per_client_percentiles(self, small_database):
        store = fresh_store(small_database)
        report = MultiClientRunner(small_database, store,
                                   workload(clients=2)).run()
        for client in range(report.client_count):
            wall = report.client_wall_percentiles(client)
            assert wall.count == 5
            assert wall.p99 > 0.0


class TestBackendNames:
    """The kernel lets multi-user runs target any registered engine."""

    def test_runs_on_named_backend(self, small_database):
        report = MultiClientRunner(small_database, "memory",
                                   workload(clients=2)).run()
        assert report.backend_name == "memory"
        assert report.client_count == 2
        for client in report.clients:
            assert client.warm.transaction_count == 5
            # Wall-clock only: no simulated I/O on a real engine.
            assert client.warm.totals.io_reads == 0

    def test_runs_on_sqlite(self, small_database):
        runner = MultiClientRunner(small_database, "sqlite",
                                   workload(clients=2))
        report = runner.run()
        assert report.backend_name == "sqlite"
        assert report.warm_wall_percentiles.p99 > 0.0
        runner.store.close()

    def test_clients_share_one_engine(self, small_database):
        runner = MultiClientRunner(small_database, "memory",
                                   workload(clients=3))
        executors = runner._runner.build_executors(runner.store)
        assert all(executor.session.store is runner.store
                   for executor in executors)

    def test_backend_options_reach_the_engine(self, small_database,
                                              tmp_path):
        path = str(tmp_path / "multiuser.db")
        runner = MultiClientRunner(small_database, "sqlite",
                                   workload(clients=2, cold=1, hot=2),
                                   backend_options={"path": path})
        runner.run()
        runner.store.close()
        assert (tmp_path / "multiuser.db").exists()

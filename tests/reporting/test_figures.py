"""ASCII chart tests."""

from __future__ import annotations

import pytest

from repro.errors import ReportingError
from repro.reporting.figures import render_line_chart, render_series_table


SERIES = {
    "1 classes": [(10.0, 0.001), (100.0, 0.01), (1000.0, 0.2)],
    "20 classes": [(10.0, 0.002), (100.0, 0.03), (1000.0, 0.5)],
}


class TestLineChart:
    def test_contains_markers_and_legend(self):
        text = render_line_chart(SERIES, width=40, height=10)
        assert "o=1 classes" in text
        assert "x=20 classes" in text
        # Markers are plotted in the grid (later series may overdraw
        # earlier ones at shared raster cells).
        grid = "\n".join(text.splitlines()[2:-2])
        assert "x" in grid

    def test_log_axes(self):
        text = render_line_chart(SERIES, log_x=True, log_y=True,
                                 x_label="objects", y_label="seconds")
        assert "(log)" in text

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ReportingError):
            render_line_chart({"s": [(0.0, 1.0)]}, log_x=True)

    def test_title(self):
        text = render_line_chart(SERIES, title="Figure 4")
        assert text.splitlines()[0] == "Figure 4"

    def test_empty_rejected(self):
        with pytest.raises(ReportingError):
            render_line_chart({})
        with pytest.raises(ReportingError):
            render_line_chart({"s": []})

    def test_too_small_rejected(self):
        with pytest.raises(ReportingError):
            render_line_chart(SERIES, width=4, height=2)

    def test_single_point(self):
        text = render_line_chart({"s": [(1.0, 1.0)]})
        assert "o" in text


class TestSeriesTable:
    def test_rows_per_x_value(self):
        text = render_series_table(SERIES, x_header="objects")
        lines = text.splitlines()
        assert lines[0].startswith("objects")
        assert len(lines) == 2 + 3  # Header + rule + 3 x values.

    def test_missing_values_dashed(self):
        series = {"a": [(1.0, 0.5)], "b": [(2.0, 0.7)]}
        text = render_series_table(series)
        assert "-" in text

    def test_empty_rejected(self):
        with pytest.raises(ReportingError):
            render_series_table({})

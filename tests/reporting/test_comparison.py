"""Cross-backend comparison table rendering."""

from __future__ import annotations

from repro.core.metrics import (
    KindStats,
    LatencyPercentiles,
    MetricsCollector,
    PhaseReport,
)
from repro.core.transactions import TransactionKind
from repro.core.workload import WorkloadReport
from repro.reporting import render_backend_comparison, summarize_backend_run
from repro.reporting.comparison import BackendRunSummary


def _report_with(wall_samples):
    warm = PhaseReport(name="warm")
    stats = KindStats()
    for i, wall in enumerate(wall_samples):
        stats.count += 1
        stats.visits += 10
        stats.io_reads += 2
        stats.wall_time += wall
        stats.wall_samples.append(wall)
    warm.per_kind[TransactionKind.SET] = stats
    cold = PhaseReport(name="cold")
    return WorkloadReport(cold=cold, warm=warm)


class TestSummarize:
    def test_summary_fields(self):
        report = _report_with([0.001, 0.002, 0.003, 0.004])
        summary = summarize_backend_run("sqlite", report)
        assert summary.backend == "sqlite"
        assert summary.transactions == 4
        assert summary.visits_per_transaction == 10.0
        assert summary.reads_per_transaction == 2.0
        assert summary.wall.count == 4
        assert summary.wall.p50 == 0.0025
        assert summary.wall_total_seconds == 0.01

    def test_empty_report_is_all_zero(self):
        summary = summarize_backend_run("memory", _report_with([]))
        assert summary.transactions == 0
        assert summary.wall == LatencyPercentiles(0, 0.0, 0.0, 0.0)


class TestRender:
    def test_table_contains_every_backend_and_percentiles(self):
        summaries = [
            summarize_backend_run("memory", _report_with([0.001] * 5)),
            summarize_backend_run("simulated", _report_with([0.010] * 5)),
            summarize_backend_run("sqlite", _report_with([0.005] * 5)),
        ]
        table = render_backend_comparison(summaries)
        for name in ("memory", "simulated", "sqlite"):
            assert name in table
        for header in ("P50 (ms)", "P95 (ms)", "P99 (ms)", "reads/txn"):
            assert header in table

    def test_custom_title(self):
        table = render_backend_comparison(
            [summarize_backend_run("memory", _report_with([0.001]))],
            title="My comparison")
        assert table.startswith("My comparison")

    def test_milliseconds_scaling(self):
        table = render_backend_comparison(
            [summarize_backend_run("memory", _report_with([0.002] * 3))])
        assert "2.000" in table  # 0.002 s rendered as 2.000 ms.


class TestLatencyPercentiles:
    def test_from_samples(self):
        samples = [float(i) for i in range(1, 101)]
        wall = LatencyPercentiles.from_samples(samples)
        assert wall.count == 100
        assert wall.p50 == 50.5
        assert wall.p95 == 95.05
        assert wall.p99 == 99.01

    def test_empty_is_zero(self):
        wall = LatencyPercentiles.from_samples([])
        assert wall == LatencyPercentiles(0, 0.0, 0.0, 0.0)

    def test_describe_format(self):
        wall = LatencyPercentiles.from_samples([0.001, 0.002, 0.003])
        text = wall.describe()
        assert "P50" in text and "P95" in text and "P99" in text
        assert "ms" in text

    def test_collector_accumulates_samples(self, rng):
        from repro.core.transactions import TransactionResult
        from repro.store.storage import StoreSnapshot
        from repro.store.buffer import BufferStats
        from repro.store.disk import DiskStats
        from repro.store.swizzle import SwizzleStats
        collector = MetricsCollector("warm")
        empty = StoreSnapshot(DiskStats(), BufferStats(), SwizzleStats(), 0,
                              0.0)
        for wall in (0.01, 0.02, 0.03):
            result = TransactionResult(
                kind=TransactionKind.SET, root=1, visits=1,
                distinct_objects=1, max_depth_reached=0, reverse=False,
                ref_type=None, truncated=False)
            collector.record(result, empty, wall)
        report = collector.report
        assert report.wall_percentiles().count == 3
        assert report.wall_percentiles().p50 == 0.02

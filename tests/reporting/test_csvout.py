"""CSV output tests."""

from __future__ import annotations

import pytest

from repro.errors import ReportingError
from repro.reporting.csvout import rows_to_csv, write_csv


class TestRowsToCsv:
    def test_basic(self):
        text = rows_to_csv(["a", "b"], [[1, 2], [3, 4]])
        assert text == "a,b\n1,2\n3,4\n"

    def test_quoting(self):
        text = rows_to_csv(["a"], [["hello, world"]])
        assert '"hello, world"' in text

    def test_width_mismatch(self):
        with pytest.raises(ReportingError):
            rows_to_csv(["a", "b"], [[1]])

    def test_no_columns(self):
        with pytest.raises(ReportingError):
            rows_to_csv([], [])

    def test_floats_serialized(self):
        text = rows_to_csv(["x"], [[1.5]])
        assert "1.5" in text


class TestWriteCsv:
    def test_writes_file(self, tmp_path):
        target = write_csv(tmp_path / "out.csv", ["a"], [[1]])
        assert target.read_text() == "a\n1\n"

    def test_creates_parent_directories(self, tmp_path):
        target = write_csv(tmp_path / "deep" / "dir" / "out.csv",
                           ["a"], [[1]])
        assert target.exists()

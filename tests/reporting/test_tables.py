"""ASCII table rendering tests."""

from __future__ import annotations

import pytest

from repro.errors import ReportingError
from repro.reporting.tables import format_cell, render_kv, render_table


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(3.14159, precision=2) == "3.14"
        assert format_cell(3.14159, precision=4) == "3.1416"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_nan_and_inf(self):
        assert format_cell(float("nan")) == "nan"
        assert format_cell(float("inf")) == "inf"
        assert format_cell(float("-inf")) == "-inf"

    def test_string(self):
        assert format_cell("hi") == "hi"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "x"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].rstrip() == "name  | x"
        assert lines[2].startswith("alpha | 1")
        assert lines[3].startswith("b     | 22")

    def test_title(self):
        text = render_table(["a"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_wide_cells_stretch_columns(self):
        text = render_table(["a"], [["very-long-value"]])
        assert "very-long-value" in text

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2  # Header + rule.

    def test_row_width_mismatch(self):
        with pytest.raises(ReportingError):
            render_table(["a", "b"], [[1]])

    def test_no_columns_rejected(self):
        with pytest.raises(ReportingError):
            render_table([], [])

    def test_precision_forwarded(self):
        text = render_table(["v"], [[1.23456]], precision=3)
        assert "1.235" in text


class TestRenderKv:
    def test_aligned_keys(self):
        text = render_kv([["alpha", 1], ["b", 2]])
        lines = text.splitlines()
        assert lines[0] == "  alpha : 1"
        assert lines[1] == "  b     : 2"

    def test_title(self):
        text = render_kv([["k", "v"]], title="Header")
        assert text.splitlines()[0] == "Header"

    def test_empty_rejected(self):
        with pytest.raises(ReportingError):
            render_kv([])

"""OO7 benchmark tests."""

from __future__ import annotations

import pytest

from repro.comparators.oo7 import (
    ATOMIC_PART_CLASS,
    BASE_ASSEMBLY_CLASS,
    COMPLEX_ASSEMBLY_CLASS,
    COMPOSITE_PART_CLASS,
    CONNECTION_CLASS,
    DOCUMENT_CLASS,
    OO7Benchmark,
    OO7Database,
    OO7Parameters,
    build_oo7_store,
)
from repro.errors import ParameterError
from repro.store.storage import StoreConfig


@pytest.fixture(scope="module")
def small_oo7():
    database = OO7Database(OO7Parameters(
        num_modules=1, assembly_levels=3, assembly_fan_out=2,
        comp_per_module=6, comp_per_assm=2, atomic_per_comp=4,
        connections_per_atomic=2, seed=13))
    database.build()
    return database


def fresh_bench(database):
    store = StoreConfig(page_size=512, buffer_pages=32).build()
    store.bulk_load(list(database.records.values()),
                    order=sorted(database.records))
    store.reset_stats()
    return OO7Benchmark(database, store)


class TestParameters:
    def test_small_config(self):
        p = OO7Parameters.small()
        assert p.assembly_levels == 7
        assert p.comp_per_module == 500
        assert p.atomic_per_comp == 20

    def test_validation(self):
        with pytest.raises(ParameterError):
            OO7Parameters(assembly_levels=0)


class TestDatabase:
    def test_module_count(self, small_oo7):
        assert len(small_oo7.module_oids) == 1

    def test_base_assembly_count(self, small_oo7):
        # Fan-out 2, 3 levels: 2^(3-1) = 4 base assemblies.
        assert len(small_oo7.base_assembly_oids) == 4

    def test_composite_pool(self, small_oo7):
        assert len(small_oo7.composite_oids) == 6
        assert len(small_oo7.atomic_oids) == 24
        assert len(small_oo7.document_oids) == 6

    def test_base_assemblies_reference_pool_composites(self, small_oo7):
        pool = set(small_oo7.composite_oids)
        for oid in small_oo7.base_assembly_oids:
            for target in small_oo7.records[oid].non_null_refs():
                assert target in pool

    def test_composites_have_root_atomic_and_document(self, small_oo7):
        for composite in small_oo7.composite_oids:
            record = small_oo7.records[composite]
            root, document = record.refs
            assert small_oo7.records[root].cid == ATOMIC_PART_CLASS
            assert small_oo7.records[document].cid == DOCUMENT_CLASS
            assert small_oo7.root_atomic[composite] == root

    def test_atomic_connection_graph_closed_per_composite(self, small_oo7):
        for atomic in small_oo7.atomic_oids:
            for conn in small_oo7.records[atomic].non_null_refs():
                assert small_oo7.records[conn].cid == CONNECTION_CLASS
                (target,) = small_oo7.records[conn].non_null_refs()
                assert small_oo7.records[target].cid == ATOMIC_PART_CLASS

    def test_build_dates_assigned(self, small_oo7):
        assert set(small_oo7.build_dates) == set(small_oo7.atomic_oids)
        assert all(0 <= d <= 99_999 for d in small_oo7.build_dates.values())


class TestTraversals:
    def test_t1_touches_every_composite_graph(self, small_oo7):
        bench = fresh_bench(small_oo7)
        run = bench.t1_traversal()
        # Every atomic part reachable through base assemblies is visited.
        assert run.objects_accessed > len(small_oo7.base_assembly_oids)
        assert run.io_reads > 0

    def test_t6_touches_only_root_atomics(self, small_oo7):
        bench = fresh_bench(small_oo7)
        t6 = bench.t6_traversal()
        t1 = bench.t1_traversal()
        assert t6.objects_accessed < t1.objects_accessed

    def test_t2_performs_updates(self, small_oo7):
        bench = fresh_bench(small_oo7)
        bench.t2_traversal()
        bench.store.flush()
        assert bench.store.snapshot().io_writes > 0


class TestQueries:
    def test_q1_counts(self, small_oo7):
        bench = fresh_bench(small_oo7)
        run = bench.q1_lookup(count=5)
        assert run.objects_accessed == 5

    def test_q2_narrower_than_q3(self, small_oo7):
        bench = fresh_bench(small_oo7)
        q2 = bench.q2_range()
        q3 = bench.q3_range()
        assert q2.objects_accessed <= q3.objects_accessed

    def test_q7_scans_all_atomic_parts(self, small_oo7):
        bench = fresh_bench(small_oo7)
        run = bench.q7_scan()
        assert run.objects_accessed == len(small_oo7.atomic_oids)

    def test_q4_reads_documents(self, small_oo7):
        bench = fresh_bench(small_oo7)
        run = bench.q4_documents(count=3)
        assert run.objects_accessed >= 3


class TestStructuralModifications:
    def test_sm1_then_sm2_roundtrip(self):
        database = OO7Database(OO7Parameters(
            num_modules=1, assembly_levels=2, assembly_fan_out=2,
            comp_per_module=3, comp_per_assm=1, atomic_per_comp=3,
            connections_per_atomic=1, seed=23))
        database.build()
        bench = fresh_bench(database)
        objects_before = bench.store.object_count
        composites_before = len(database.composite_oids)

        sm1 = bench.sm1_insert(count=2)
        assert sm1.objects_accessed > 0
        assert len(database.composite_oids) == composites_before + 2
        assert bench.store.object_count > objects_before

        sm2 = bench.sm2_delete(count=2)
        assert sm2.objects_accessed > 0
        assert len(database.composite_oids) == composites_before
        # Traversal still works: no dangling assembly references.
        bench.t1_traversal()

    def test_sm2_never_deletes_referenced_composites(self, small_oo7):
        bench = fresh_bench(small_oo7)
        referenced = {target
                      for oid in small_oo7.base_assembly_oids
                      for target in small_oo7.records[oid].non_null_refs()}
        bench.sm2_delete(count=10)
        for composite in referenced:
            assert composite in bench.store


class TestSuite:
    def test_run_suite_covers_operations(self, small_oo7):
        database = OO7Database(OO7Parameters(
            num_modules=1, assembly_levels=2, assembly_fan_out=2,
            comp_per_module=3, comp_per_assm=1, atomic_per_comp=3,
            connections_per_atomic=1, seed=29))
        database.build()
        bench = fresh_bench(database)
        results = bench.run_suite()
        assert set(results) == {"T1", "T2", "T6", "Q1", "Q2", "Q3", "Q4",
                                "Q7", "SM1", "SM2"}

    def test_build_helper(self):
        database, store = build_oo7_store(
            OO7Parameters(num_modules=1, assembly_levels=2,
                          assembly_fan_out=2, comp_per_module=2,
                          comp_per_assm=1, atomic_per_comp=2,
                          connections_per_atomic=1, seed=3),
            StoreConfig(page_size=256, buffer_pages=8))
        assert store.object_count == len(database.records)

"""OO1 benchmark tests."""

from __future__ import annotations

import pytest

from repro.comparators.oo1 import (
    CONNECTION_CLASS,
    PART_CLASS,
    OO1Benchmark,
    OO1Database,
    OO1Parameters,
    build_oo1_store,
)
from repro.errors import ParameterError
from repro.store.storage import StoreConfig


@pytest.fixture(scope="module")
def small_oo1():
    params = OO1Parameters(num_parts=300, ref_zone=10, traversal_depth=3,
                           lookups_per_run=50, inserts_per_run=5, runs=2,
                           seed=5)
    database = OO1Database(params)
    database.build()
    return database


def fresh_store(database):
    store = StoreConfig(page_size=512, buffer_pages=16).build()
    store.bulk_load(list(database.records.values()),
                    order=sorted(database.records))
    store.reset_stats()
    return store


class TestParameters:
    def test_default_ref_zone_is_one_percent(self):
        assert OO1Parameters(num_parts=20000).effective_ref_zone == 200

    def test_explicit_ref_zone(self):
        assert OO1Parameters(ref_zone=42).effective_ref_zone == 42

    def test_validation(self):
        with pytest.raises(ParameterError):
            OO1Parameters(num_parts=1)
        with pytest.raises(ParameterError):
            OO1Parameters(locality_probability=2.0)
        with pytest.raises(ParameterError):
            OO1Parameters(runs=0)


class TestDatabase:
    def test_population(self, small_oo1):
        p = small_oo1.parameters
        assert len(small_oo1.part_oids) == p.num_parts
        assert len(small_oo1.connection_oids) == \
            p.num_parts * p.connections_per_part
        assert len(small_oo1.records) == \
            p.num_parts * (1 + p.connections_per_part)

    def test_classes(self, small_oo1):
        for oid in small_oo1.part_oids:
            assert small_oo1.records[oid].cid == PART_CLASS
        for oid in small_oo1.connection_oids:
            assert small_oo1.records[oid].cid == CONNECTION_CLASS

    def test_every_part_has_three_connections(self, small_oo1):
        for oid in small_oo1.part_oids:
            refs = small_oo1.records[oid].non_null_refs()
            assert len(refs) == 3
            assert all(small_oo1.records[c].cid == CONNECTION_CLASS
                       for c in refs)

    def test_connections_reference_to_and_from(self, small_oo1):
        for oid in small_oo1.connection_oids:
            to_part, from_part = small_oo1.records[oid].refs
            assert small_oo1.records[to_part].cid == PART_CLASS
            assert small_oo1.records[from_part].cid == PART_CLASS

    def test_locality_of_reference(self, small_oo1):
        inside = 0
        total = 0
        index_of = {oid: i for i, oid in enumerate(small_oo1.part_oids)}
        for conn_oid in small_oo1.connection_oids:
            to_part, from_part = small_oo1.records[conn_oid].refs
            total += 1
            if abs(index_of[to_part] - index_of[from_part]) <= 10:
                inside += 1
        assert inside / total > 0.82  # 90% nominal, finite-sample slack.

    def test_build_is_idempotent(self, small_oo1):
        count = len(small_oo1.records)
        small_oo1.build()
        assert len(small_oo1.records) == count

    def test_deterministic(self):
        a = OO1Database(OO1Parameters(num_parts=100, seed=1))
        b = OO1Database(OO1Parameters(num_parts=100, seed=1))
        assert a.build().keys() == b.build().keys()
        assert all(a.records[oid] == b.records[oid] for oid in a.records)


class TestOperations:
    def test_lookup_accesses_requested_count(self, small_oo1):
        store = fresh_store(small_oo1)
        bench = OO1Benchmark(small_oo1, store)
        run = bench.lookup_run()
        assert run.objects_accessed == 50
        assert run.io_reads > 0

    def test_traversal_visit_count_bounded(self, small_oo1):
        store = fresh_store(small_oo1)
        bench = OO1Benchmark(small_oo1, store)
        run = bench.traversal_run()
        # Depth 3, fan-out 3: at most (3^4 - 1) / 2 = 40 part visits.
        assert 1 <= run.objects_accessed <= 40

    def test_reverse_traversal_runs(self, small_oo1):
        store = fresh_store(small_oo1)
        bench = OO1Benchmark(small_oo1, store)
        run = bench.traversal_run(reverse=True)
        assert run.operation == "reverse-traversal"
        assert run.objects_accessed >= 1

    def test_insert_grows_database_and_commits(self, small_oo1):
        store = fresh_store(small_oo1)
        bench = OO1Benchmark(small_oo1, store)
        before_objects = store.object_count
        run = bench.insert_run()
        p = small_oo1.parameters
        created = p.inserts_per_run * (1 + p.connections_per_part)
        assert run.objects_accessed == created
        assert store.object_count == before_objects + created
        assert run.io_writes > 0  # The commit flushed dirty pages.

    def test_run_all_executes_each_operation_runs_times(self, small_oo1):
        database = OO1Database(OO1Parameters(
            num_parts=150, ref_zone=10, traversal_depth=2,
            lookups_per_run=10, inserts_per_run=2, runs=2, seed=9))
        database.build()
        store = fresh_store(database)
        reports = OO1Benchmark(database, store).run_all()
        assert set(reports) == {"lookup", "traversal", "reverse-traversal",
                                "insert"}
        for report in reports.values():
            assert len(report.runs) == 2
            assert report.mean_reads >= 0.0


class TestBuildHelper:
    def test_build_oo1_store(self):
        database, store = build_oo1_store(
            OO1Parameters(num_parts=100, seed=2),
            StoreConfig(page_size=512, buffer_pages=8))
        assert store.object_count == len(database.records)
        assert store.snapshot().total_ios == 0

"""DSTC-CluB before/after protocol tests."""

from __future__ import annotations

import pytest

from repro.clustering.base import NoClustering
from repro.clustering.dstc import DSTCParameters, DSTCPolicy
from repro.comparators.dstc_club import DSTCClubBenchmark, DSTCClubResult
from repro.comparators.oo1 import OO1Parameters, OO1RunResult
from repro.errors import WorkloadError
from repro.store.storage import StoreConfig


def make_club(transactions=8, policy=None):
    return DSTCClubBenchmark(
        parameters=OO1Parameters(num_parts=800, ref_zone=8,
                                 traversal_depth=3, seed=21),
        store_config=StoreConfig(page_size=512, buffer_pages=48),
        policy=policy or DSTCPolicy(DSTCParameters(
            observation_period=transactions, selection_threshold=1,
            unit_weight_threshold=1.0)),
        transactions=transactions,
        warmup=2)


class TestProtocol:
    def test_setup_builds_store(self):
        club = make_club()
        database, store = club.setup()
        assert store.object_count == len(database.records)

    def test_run_produces_before_and_after(self):
        result = make_club().run()
        assert len(result.before_runs) == 8
        assert len(result.after_runs) == 8
        assert result.reorganization is not None

    def test_clustering_wins_on_traversal_workload(self):
        result = make_club().run()
        assert result.gain_factor > 1.0
        assert result.ios_after < result.ios_before

    def test_replay_uses_identical_roots(self):
        result = make_club().run()
        before_visits = [r.objects_accessed for r in result.before_runs]
        after_visits = [r.objects_accessed for r in result.after_runs]
        assert before_visits == after_visits

    def test_no_clustering_policy_short_circuits(self):
        result = make_club(policy=NoClustering()).run()
        assert result.after_runs == []
        assert result.reorganization is None
        assert result.gain_factor == 1.0

    def test_transactions_must_be_positive(self):
        with pytest.raises(WorkloadError):
            DSTCClubBenchmark(transactions=0)

    def test_describe(self):
        result = make_club().run()
        text = result.describe()
        assert "I/Os before" in text
        assert "gain" in text


class TestResultArithmetic:
    def run_result(self, reads):
        return OO1RunResult(operation="traversal", objects_accessed=1,
                            io_reads=reads, io_writes=0,
                            sim_seconds=0.0, wall_seconds=0.0)

    def test_means(self):
        result = DSTCClubResult(
            label="x",
            before_runs=[self.run_result(10), self.run_result(20)],
            after_runs=[self.run_result(5)],
            reorganization=None)
        assert result.ios_before == 15.0
        assert result.ios_after == 5.0
        assert result.gain_factor == 3.0

    def test_zero_after_is_infinite_gain(self):
        result = DSTCClubResult(
            label="x",
            before_runs=[self.run_result(10)],
            after_runs=[self.run_result(0)],
            reorganization=None)
        assert result.gain_factor == float("inf")

    def test_empty_runs(self):
        result = DSTCClubResult(label="x", before_runs=[], after_runs=[],
                                reorganization=None)
        assert result.ios_before == 0.0
        assert result.gain_factor == 1.0

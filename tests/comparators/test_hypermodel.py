"""HyperModel benchmark tests."""

from __future__ import annotations

import pytest

from repro.comparators.hypermodel import (
    HYPERMODEL_OPERATIONS,
    PARENT_SLOTS,
    PART_SLOT,
    REF_TO_SLOT,
    HyperModelBenchmark,
    HyperModelDatabase,
    HyperModelParameters,
    build_hypermodel_store,
)
from repro.errors import ParameterError, WorkloadError
from repro.store.storage import StoreConfig


@pytest.fixture(scope="module")
def small_hm():
    database = HyperModelDatabase(HyperModelParameters(
        levels=4, fan_out=3, inputs=10, closure_depth=2, seed=17))
    database.build()
    return database


def fresh_bench(database):
    store = StoreConfig(page_size=512, buffer_pages=32).build()
    store.bulk_load(list(database.records.values()),
                    order=sorted(database.records))
    store.reset_stats()
    return HyperModelBenchmark(database, store)


class TestParameters:
    def test_num_nodes_geometric(self):
        assert HyperModelParameters(levels=5, fan_out=5).num_nodes == 781
        assert HyperModelParameters(levels=6, fan_out=5).num_nodes == 3906

    def test_validation(self):
        with pytest.raises(ParameterError):
            HyperModelParameters(levels=0)
        with pytest.raises(ParameterError):
            HyperModelParameters(range_width=0)


class TestDatabase:
    def test_node_count(self, small_hm):
        assert len(small_hm.records) == 40  # 1 + 3 + 9 + 27.

    def test_aggregation_hierarchy_children(self, small_hm):
        root = small_hm.records[1]
        children = [root.refs[slot] for slot in range(3)]
        assert children == [2, 3, 4]

    def test_leaves_have_no_children(self, small_hm):
        leaf = small_hm.records[40]
        assert all(leaf.refs[slot] is None for slot in range(PARENT_SLOTS))

    def test_part_of_links_point_backwards(self, small_hm):
        for oid, record in small_hm.records.items():
            anchor = record.refs[PART_SLOT]
            if oid == 1:
                assert anchor is None
            else:
                assert anchor is not None and anchor < oid

    def test_ref_to_never_self(self, small_hm):
        for oid, record in small_hm.records.items():
            assert record.refs[REF_TO_SLOT] != oid

    def test_attributes_are_a_permutation(self, small_hm):
        uniques = sorted(a.unique_id for a in small_hm.attributes.values())
        assert uniques == sorted(small_hm.node_oids)

    def test_attribute_moduli(self, small_hm):
        for attrs in small_hm.attributes.values():
            assert attrs.hundred == attrs.unique_id % 100
            assert attrs.thousand == attrs.unique_id % 1000

    def test_range_index(self, small_hm):
        matches = small_hm.nodes_with_hundred_in(0, 9)
        for oid in matches:
            assert small_hm.attributes[oid].hundred <= 9


class TestOperations:
    def test_all_operations_run(self, small_hm):
        bench = fresh_bench(small_hm)
        reports = bench.run_all()
        assert set(reports) == set(HYPERMODEL_OPERATIONS)
        for report in reports.values():
            assert report.inputs >= 1
            assert report.cold_seconds >= 0.0

    def test_warm_run_faster_or_equal_io(self, small_hm):
        bench = fresh_bench(small_hm)
        report = bench.run_operation("nameLookup")
        assert report.warm_reads <= report.cold_reads

    def test_seq_scan_touches_every_node(self, small_hm):
        bench = fresh_bench(small_hm)
        before = bench.store.snapshot()
        report = bench.run_operation("seqScan")
        delta = bench.store.snapshot() - before
        # Two passes (cold + warm) over 40 nodes.
        assert delta.object_accesses == 80

    def test_editing_commits_writes(self, small_hm):
        bench = fresh_bench(small_hm)
        report = bench.run_operation("editing")
        assert bench.store.snapshot().io_writes > 0

    def test_unknown_operation(self, small_hm):
        bench = fresh_bench(small_hm)
        with pytest.raises(WorkloadError):
            bench.run_operation("teleport")

    def test_closure_traversal_respects_depth(self, small_hm):
        bench = fresh_bench(small_hm)
        before = bench.store.snapshot()
        bench._closure_traversal(1)
        delta = bench.store.snapshot() - before
        # Depth 2 from the root: 1 + 3 + 9 accesses.
        assert delta.object_accesses == 13

    def test_empty_store_rejected(self, small_hm):
        store = StoreConfig(buffer_pages=4).build()
        with pytest.raises(WorkloadError):
            HyperModelBenchmark(small_hm, store)


class TestBuildHelper:
    def test_build_hypermodel_store(self):
        database, store = build_hypermodel_store(
            HyperModelParameters(levels=3, fan_out=2, seed=1),
            StoreConfig(page_size=256, buffer_pages=8))
        assert store.object_count == 7  # 1 + 2 + 4.

"""Tests for the fully-generic operation extension (paper future work)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generation import generate_database
from repro.core.generic_ops import (
    GenericOperation,
    GenericOperationsRunner,
    attribute_of,
)
from repro.core.parameters import DatabaseParameters
from repro.errors import WorkloadError
from repro.store.storage import StoreConfig


def make_runner(seed=19, num_objects=150):
    params = DatabaseParameters(num_classes=5, max_nref=3, base_size=25,
                                num_objects=num_objects, seed=seed)
    database, _ = generate_database(params)
    store = StoreConfig(page_size=512, buffer_pages=16).build()
    records = database.to_records()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    return GenericOperationsRunner(database, store)


def assert_in_sync(runner):
    """Database invariants hold and the store mirrors the database."""
    runner.database.validate()
    assert set(runner.store.iter_oids()) == set(runner.database.objects)
    for oid, obj in runner.database.objects.items():
        record = runner.store.read_object(oid)
        assert record.refs == tuple(obj.oref)
        assert sorted(record.back_refs) == sorted(tuple(p)
                                                  for p in obj.back_refs)


class TestInsert:
    def test_grows_database_and_store(self):
        runner = make_runner()
        before = runner.store.object_count
        result = runner.insert()
        assert result.operation is GenericOperation.INSERT
        assert runner.store.object_count == before + 1
        assert runner.database.num_objects == before + 1

    def test_new_object_is_wired_consistently(self):
        runner = make_runner()
        runner.insert()
        assert_in_sync(runner)

    def test_insert_commits(self):
        runner = make_runner()
        result = runner.insert()
        assert result.io_writes > 0

    def test_repeated_inserts_get_fresh_oids(self):
        runner = make_runner()
        first = runner.database.next_oid
        runner.insert()
        runner.insert()
        assert runner.database.next_oid == first + 2


class TestUpdate:
    def test_update_preserves_invariants(self):
        runner = make_runner()
        runner.update()
        assert_in_sync(runner)

    def test_update_specific_object(self):
        runner = make_runner()
        result = runner.update(oid=1)
        assert result.objects_touched >= 1

    def test_update_redraws_reference(self):
        # Run several updates; at least one must change a reference.
        runner = make_runner(seed=5)
        before = {oid: tuple(obj.oref)
                  for oid, obj in runner.database.objects.items()}
        for _ in range(10):
            runner.update()
        after = {oid: tuple(obj.oref)
                 for oid, obj in runner.database.objects.items()}
        assert before != after


class TestDelete:
    def test_removes_object_everywhere(self):
        runner = make_runner()
        victim = 10
        runner.delete(oid=victim)
        assert victim not in runner.database.objects
        assert victim not in runner.store
        assert_in_sync(runner)

    def test_inbound_references_nulled(self):
        runner = make_runner()
        victim_oid = next(oid for oid, obj
                          in runner.database.objects.items()
                          if obj.back_refs)
        referrers = [(src, idx) for src, idx
                     in runner.database.get(victim_oid).back_refs
                     if src != victim_oid]
        runner.delete(oid=victim_oid)
        for source, index in referrers:
            assert runner.database.get(source).oref[index] is None

    def test_random_victim(self):
        runner = make_runner()
        before = runner.database.num_objects
        runner.delete()
        assert runner.database.num_objects == before - 1


class TestRangeLookup:
    def test_matches_attribute_predicate(self):
        runner = make_runner()
        result = runner.range_lookup(low=0, width=20)
        expected = sum(1 for oid in runner.database.objects
                       if attribute_of(oid) < 20)
        assert result.objects_touched == expected

    def test_reads_through_store(self):
        runner = make_runner()
        runner.store.drop_caches()
        runner.store.reset_stats()
        result = runner.range_lookup(low=0, width=50)
        assert result.io_reads > 0

    def test_width_validation(self):
        runner = make_runner()
        with pytest.raises(WorkloadError):
            runner.range_lookup(width=0)

    def test_attribute_is_deterministic_percentile(self):
        values = [attribute_of(oid) for oid in range(1, 2000)]
        assert all(0 <= v <= 99 for v in values)
        # Roughly uniform: every decile populated.
        assert {v // 10 for v in values} == set(range(10))


class TestSequentialScan:
    def test_touches_every_object(self):
        runner = make_runner()
        result = runner.sequential_scan()
        assert result.objects_touched == runner.database.num_objects

    def test_scan_in_physical_order_is_io_efficient(self):
        runner = make_runner()
        runner.store.drop_caches()
        runner.store.reset_stats()
        result = runner.sequential_scan()
        # Sequential order: each page read approximately once.
        assert result.io_reads <= runner.store.page_count + 2


class TestMix:
    def test_default_mix_keeps_invariants(self):
        runner = make_runner()
        results = runner.run_mix(12)
        assert len(results) == 12
        assert_in_sync(runner)

    def test_mix_validation(self):
        runner = make_runner()
        with pytest.raises(WorkloadError):
            runner.run_mix(-1)
        with pytest.raises(WorkloadError):
            runner.run_mix(1, weights={GenericOperation.INSERT: 0.0})

    def test_empty_store_rejected(self, small_database):
        store = StoreConfig(buffer_pages=4).build()
        with pytest.raises(WorkloadError):
            GenericOperationsRunner(small_database, store)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       script=st.lists(st.sampled_from(["insert", "update", "delete",
                                        "range", "scan"]),
                       min_size=1, max_size=12))
def test_any_operation_sequence_keeps_store_and_database_in_sync(seed,
                                                                 script):
    """Property: arbitrary operation sequences never break the invariants."""
    runner = make_runner(seed=seed, num_objects=60)
    for step in script:
        if step == "insert":
            runner.insert()
        elif step == "update":
            runner.update()
        elif step == "delete" and runner.database.num_objects > 2:
            runner.delete()
        elif step == "range":
            runner.range_lookup(low=0, width=25)
        elif step == "scan":
            runner.sequential_scan()
    assert_in_sync(runner)

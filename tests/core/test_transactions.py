"""Fig. 3 transaction tests over a hand-built store."""

from __future__ import annotations

import pytest

from repro.clustering.dstc import DSTCParameters, DSTCPolicy
from repro.core.transactions import (
    AccessContext,
    TransactionKind,
    TransactionSpec,
    run_transaction,
)
from repro.errors import WorkloadError
from repro.rand.lewis_payne import LewisPayne
from repro.store.serializer import StoredObject
from repro.store.storage import ObjectStore


def build_store(records):
    store = ObjectStore(page_size=256, buffer_pages=16)
    store.bulk_load(records)
    store.reset_stats()
    return store


def make_tree():
    """A binary tree of depth 3 with typed refs: slot 0 type 1, slot 1 type 2.

    oid 1 -> (2, 3); 2 -> (4, 5); 3 -> (6, 7); leaves 4..7.
    """
    records = []
    back = {i: [] for i in range(1, 8)}
    children = {1: (2, 3), 2: (4, 5), 3: (6, 7)}
    for oid in range(1, 8):
        refs = children.get(oid, (None, None))
        records.append(StoredObject(oid=oid, cid=1, refs=refs, filler=8))
        for slot, target in enumerate(refs):
            if target is not None:
                back[target].append((oid, slot))
    records = [r.with_back_refs(tuple(back[r.oid])) for r in records]
    tref_table = {1: (1, 2)}
    catalog = {oid: 1 for oid in range(1, 8)}
    return records, tref_table, catalog


@pytest.fixture
def tree_ctx():
    records, tref_table, catalog = make_tree()
    store = build_store(records)
    return AccessContext(store, tref_table=tref_table, catalog=catalog)


def spec(kind, root=1, depth=3, **kw):
    return TransactionSpec(kind=kind, root=root, depth=depth, **kw)


class TestSetOrientedAccess:
    def test_breadth_first_visits_whole_tree(self, tree_ctx, rng):
        result = run_transaction(tree_ctx, spec(TransactionKind.SET), rng)
        assert result.visits == 7
        assert result.distinct_objects == 7
        assert result.max_depth_reached == 2

    def test_depth_zero_touches_root_only(self, tree_ctx, rng):
        result = run_transaction(
            tree_ctx, spec(TransactionKind.SET, depth=0), rng)
        assert result.visits == 1
        assert result.distinct_objects == 1

    def test_depth_limits_frontier(self, tree_ctx, rng):
        result = run_transaction(
            tree_ctx, spec(TransactionKind.SET, depth=1), rng)
        assert result.visits == 3  # Root + two children.

    def test_duplicates_counted_without_dedupe(self, rng):
        # 1 -> (2, 2): the same child twice.
        records = [
            StoredObject(oid=1, cid=1, refs=(2, 2)),
            StoredObject(oid=2, cid=1, refs=(None, None),
                         back_refs=((1, 0), (1, 1))),
        ]
        ctx = AccessContext(build_store(records), tref_table={1: (1, 1)},
                            catalog={1: 1, 2: 1})
        result = run_transaction(
            ctx, spec(TransactionKind.SET, depth=1), rng)
        assert result.visits == 3
        assert result.distinct_objects == 2

    def test_dedupe_visits_once(self, rng):
        records = [
            StoredObject(oid=1, cid=1, refs=(2, 2)),
            StoredObject(oid=2, cid=1, refs=(None, None),
                         back_refs=((1, 0), (1, 1))),
        ]
        ctx = AccessContext(build_store(records), tref_table={1: (1, 1)},
                            catalog={1: 1, 2: 1})
        result = run_transaction(
            ctx, spec(TransactionKind.SET, depth=1, dedupe=True), rng)
        assert result.visits == 2

    def test_max_visits_truncates(self, tree_ctx, rng):
        result = run_transaction(
            tree_ctx, spec(TransactionKind.SET, max_visits=3), rng)
        assert result.visits == 3
        assert result.truncated

    def test_reverse_walks_back_references(self, tree_ctx, rng):
        result = run_transaction(
            tree_ctx, spec(TransactionKind.SET, root=7, reverse=True), rng)
        # 7 <- 3 <- 1.
        assert result.visits == 3
        assert result.distinct_objects == 3


class TestSimpleTraversal:
    def test_depth_first_covers_tree(self, tree_ctx, rng):
        result = run_transaction(tree_ctx, spec(TransactionKind.SIMPLE), rng)
        assert result.visits == 7
        assert result.max_depth_reached == 2

    def test_counts_revisits_on_cycles(self, rng):
        records = [
            StoredObject(oid=1, cid=1, refs=(2,), back_refs=((2, 0),)),
            StoredObject(oid=2, cid=1, refs=(1,), back_refs=((1, 0),)),
        ]
        ctx = AccessContext(build_store(records), tref_table={1: (1,)},
                            catalog={1: 1, 2: 1})
        result = run_transaction(
            ctx, spec(TransactionKind.SIMPLE, depth=4), rng)
        assert result.visits == 5  # 1,2,1,2,1 — bounded by depth.
        assert result.distinct_objects == 2


class TestHierarchyTraversal:
    def test_follows_single_type(self, tree_ctx, rng):
        # Type 1 references = slot 0 = left children: 1 -> 2 -> 4.
        result = run_transaction(
            tree_ctx, spec(TransactionKind.HIERARCHY, ref_type=1), rng)
        assert result.visits == 3
        assert result.distinct_objects == 3

    def test_other_type(self, tree_ctx, rng):
        # Type 2 = right children: 1 -> 3 -> 7.
        result = run_transaction(
            tree_ctx, spec(TransactionKind.HIERARCHY, ref_type=2), rng)
        assert result.visits == 3

    def test_requires_ref_type(self, tree_ctx, rng):
        with pytest.raises(WorkloadError):
            run_transaction(
                tree_ctx, spec(TransactionKind.HIERARCHY), rng)

    def test_reverse_hierarchy_filters_by_origin_type(self, tree_ctx, rng):
        # From 4 backwards along type 1: 4 <- 2 <- 1.
        result = run_transaction(
            tree_ctx, spec(TransactionKind.HIERARCHY, root=4, ref_type=1,
                           reverse=True), rng)
        assert result.visits == 3


class TestStochasticTraversal:
    def test_walk_length_bounded_by_depth(self, tree_ctx, rng):
        result = run_transaction(
            tree_ctx, spec(TransactionKind.STOCHASTIC, depth=2), rng)
        assert result.visits <= 3

    def test_stops_at_sink(self, tree_ctx, rng):
        result = run_transaction(
            tree_ctx, spec(TransactionKind.STOCHASTIC, root=7, depth=10), rng)
        assert result.visits == 1  # Leaf: no outgoing references.

    def test_long_walk_on_cycle(self, rng):
        records = [
            StoredObject(oid=1, cid=1, refs=(2,), back_refs=((2, 0),)),
            StoredObject(oid=2, cid=1, refs=(1,), back_refs=((1, 0),)),
        ]
        ctx = AccessContext(build_store(records), tref_table={1: (1,)},
                            catalog={1: 1, 2: 1})
        result = run_transaction(
            ctx, spec(TransactionKind.STOCHASTIC, depth=30), rng)
        assert result.visits >= 10  # Mostly keeps walking the 2-cycle.

    def test_first_reference_preferred(self):
        # Star: root references 1..4; p(N) = 1/2^N favours slot 1.
        records = [StoredObject(oid=9, cid=1, refs=(1, 2, 3, 4))]
        back = {}
        for oid in (1, 2, 3, 4):
            records.append(StoredObject(oid=oid, cid=1, refs=(9,),
                                        back_refs=()))
        ctx = AccessContext(build_store(records),
                            tref_table={1: (1, 1, 1, 1)},
                            catalog={oid: 1 for oid in (1, 2, 3, 4, 9)})
        rng = LewisPayne(31415)
        first_steps = []
        for _ in range(300):
            seen = []
            original = ctx.access

            def spy(oid, source=None, ref_index=None, via_back_ref=False):
                seen.append(oid)
                return original(oid, source=source, ref_index=ref_index,
                                via_back_ref=via_back_ref)

            ctx.access = spy  # type: ignore[assignment]
            run_transaction(ctx, spec(TransactionKind.STOCHASTIC, root=9,
                                      depth=1), rng)
            ctx.access = original  # type: ignore[assignment]
            if len(seen) > 1:
                first_steps.append(seen[1])
        share_first = sum(1 for s in first_steps if s == 1) / len(first_steps)
        assert 0.4 < share_first < 0.65  # p(1) = 1/2.


class TestAccessContext:
    def test_policy_sees_link_crossings(self, rng):
        records, tref_table, catalog = make_tree()
        store = build_store(records)
        policy = DSTCPolicy(DSTCParameters(observation_period=1,
                                           selection_threshold=1))
        ctx = AccessContext(store, policy=policy, tref_table=tref_table,
                            catalog=catalog)
        run_transaction(ctx, spec(TransactionKind.SIMPLE), rng)
        assert policy.consolidated_size == 6  # Six tree edges crossed.

    def test_transaction_end_signalled(self, rng):
        records, tref_table, catalog = make_tree()

        class CountingPolicy(DSTCPolicy):
            ended = 0

            def on_transaction_end(self):
                CountingPolicy.ended += 1
                super().on_transaction_end()

        ctx = AccessContext(build_store(records), policy=CountingPolicy(),
                            tref_table=tref_table, catalog=catalog)
        run_transaction(ctx, spec(TransactionKind.SET), rng)
        assert CountingPolicy.ended == 1

    def test_ref_type_lookup_handles_unknowns(self, tree_ctx):
        assert tree_ctx.ref_type_of(None, 0) is None
        assert tree_ctx.ref_type_of(42, 0) is None
        assert tree_ctx.ref_type_of(1, 99) is None

    def test_class_of(self, tree_ctx):
        assert tree_ctx.class_of(1) == 1
        assert tree_ctx.class_of(12345) is None

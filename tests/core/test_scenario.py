"""The declarative scenario layer: mixes, specs, execution, reports."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core.generation import generate_database
from repro.core.generic_ops import GenericOperationsRunner
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.core.presets import SCENARIO_PRESETS, scenario_preset
from repro.core.scenario import (
    STREAM_GENERIC,
    STREAM_SCENARIO,
    STREAM_WORKLOAD,
    ClientExecutor,
    MixEntry,
    Scenario,
    ScenarioCollector,
    ScenarioRunner,
    WorkloadMix,
)
from repro.core.session import Session
from repro.core.workload import WorkloadRunner
from repro.errors import ParameterError
from repro.store.storage import StoreConfig


def small_mutating_db(seed=77, num_objects=120):
    params = DatabaseParameters(num_classes=5, max_nref=3, base_size=25,
                                num_objects=num_objects, seed=seed)
    database, _ = generate_database(params)
    return database


class TestMixEntry:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError, match="operation class"):
            MixEntry(kind="compaction")

    def test_negative_weight_rejected(self):
        with pytest.raises(ParameterError):
            MixEntry(kind="set", weight=-0.1)

    def test_depth_defaults_follow_table2(self):
        assert MixEntry("set").resolved_depth == 3
        assert MixEntry("hierarchy").resolved_depth == 5
        assert MixEntry("stochastic").resolved_depth == 50
        assert MixEntry("simple", depth=7).resolved_depth == 7

    def test_classification(self):
        assert MixEntry("set").is_transaction
        assert not MixEntry("set").is_mutating
        assert MixEntry("delete").is_mutating
        assert not MixEntry("range_lookup").is_mutating


class TestWorkloadMix:
    def test_needs_entries_with_positive_total(self):
        with pytest.raises(ParameterError):
            WorkloadMix(entries=())
        with pytest.raises(ParameterError):
            WorkloadMix(entries=(MixEntry("set", weight=0.0),))

    def test_mutation_flags(self):
        read = WorkloadMix(entries=(MixEntry("set"),
                                    MixEntry("range_lookup")))
        write = WorkloadMix(entries=(MixEntry("set"), MixEntry("update")))
        assert read.read_only and not read.mutates
        assert write.mutates and not write.read_only
        # Zero-weighted mutating entries do not make the mix mutating.
        gated = WorkloadMix(entries=(MixEntry("set"),
                                     MixEntry("update", weight=0.0)))
        assert gated.read_only

    def test_stream_resolution_matches_legacy_runners(self):
        transactions = WorkloadMix(entries=(MixEntry("set"),))
        operations = WorkloadMix(entries=(MixEntry("update"),))
        mixed = WorkloadMix(entries=(MixEntry("set"), MixEntry("update")))
        assert transactions.resolved_stream == STREAM_WORKLOAD
        assert operations.resolved_stream == STREAM_GENERIC
        assert mixed.resolved_stream == STREAM_SCENARIO
        pinned = WorkloadMix(entries=(MixEntry("set"),), stream=1234)
        assert pinned.resolved_stream == 1234

    def test_from_workload_parameters_copies_table2(self):
        params = WorkloadParameters(p_set=0.5, p_simple=0.5,
                                    p_hierarchy=0.0, p_stochastic=0.0,
                                    simple_depth=7, think_time=0.25,
                                    reverse_probability=0.5,
                                    dedupe_visits=True, max_visits=321)
        mix = WorkloadMix.from_workload_parameters(params)
        assert [e.kind for e in mix.entries] == \
            ["set", "simple", "hierarchy", "stochastic"]
        assert mix.entries[1].depth == 7
        assert mix.entries[1].weight == 0.5
        assert mix.entries[0].reverse_probability == 0.5
        assert mix.entries[0].dedupe and mix.entries[0].max_visits == 321
        assert mix.think_time == 0.25
        assert mix.transaction_only

    def test_from_operation_weights_preserves_order(self):
        mix = WorkloadMix.from_operation_weights()
        assert [e.kind for e in mix.entries] == \
            ["insert", "update", "delete", "range_lookup",
             "sequential_scan"]
        assert mix.operation_only and mix.mutates

    def test_json_round_trip(self):
        mix = WorkloadMix(name="probe", think_time=0.5, entries=(
            MixEntry("set", weight=0.25, depth=2, dedupe=True),
            MixEntry("update", weight=0.5),
            MixEntry("range_lookup", weight=0.25, range_width=7)))
        clone = WorkloadMix.from_dict(json.loads(json.dumps(mix.to_dict())))
        assert clone == mix

    def test_parameterized_dist5_survives_json_round_trip(self):
        from repro.rand.distributions import SpecialDistribution, \
            ZipfDistribution
        for dist in (ZipfDistribution(skew=1.5),
                     SpecialDistribution(ref_zone=50,
                                         locality_probability=0.8)):
            mix = WorkloadMix(entries=(MixEntry("set"),), dist5=dist)
            clone = WorkloadMix.from_dict(
                json.loads(json.dumps(mix.to_dict())))
            assert clone.dist5 == dist
            assert clone == mix

    def test_empty_operation_weights_mean_default_mix(self):
        assert WorkloadMix.from_operation_weights({}) == \
            WorkloadMix.from_operation_weights()

    def test_probability_mixes_draw_unscaled(self, small_database):
        """PSET..PSTOCH sums one ulp off 1.0 must still reproduce the
        legacy draw_spec thresholds bit for bit: the probability mix is
        flagged unit_weights and the entry draw skips the total-weight
        scaling."""
        params = WorkloadParameters(p_set=0.3, p_simple=0.3,
                                    p_hierarchy=0.3, p_stochastic=0.1)
        mix = WorkloadMix.from_workload_parameters(params)
        assert mix.unit_weights
        assert mix.total_weight != 1.0  # The float-summation ulp gap.
        clone = WorkloadMix.from_dict(json.loads(json.dumps(mix.to_dict())))
        assert clone.unit_weights
        # Hand-weighted mixes keep the scaled run_mix-style draw.
        assert not WorkloadMix(entries=(MixEntry("set"),)).unit_weights

    def test_picklable(self):
        mix = scenario_preset("mixed_oltp").mix
        assert pickle.loads(pickle.dumps(mix)) == mix


class TestScenario:
    def test_validation(self):
        mix = WorkloadMix(entries=(MixEntry("set"),))
        with pytest.raises(ParameterError):
            Scenario(mix=mix, clients=0)
        with pytest.raises(ParameterError):
            Scenario(mix=mix, warm_ops=-1)

    def test_partitioned_only_for_mutating_multiclient(self):
        read = WorkloadMix(entries=(MixEntry("set"),))
        write = WorkloadMix(entries=(MixEntry("update"),))
        assert not Scenario(mix=read, clients=4).partitioned
        assert not Scenario(mix=write, clients=1).partitioned
        assert Scenario(mix=write, clients=4).partitioned

    def test_json_round_trip(self):
        scenario = scenario_preset("write_heavy")
        clone = Scenario.from_json(json.dumps(scenario.to_dict()))
        assert clone == scenario

    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(ParameterError, match="unknown"):
            Scenario.from_json(json.dumps(
                {"mix": {"entries": [{"kind": "set"}]}, "threads": 4}))


class TestScenarioPresets:
    def test_library_covers_the_issue_shapes(self):
        assert {"paper_default", "read_heavy", "write_heavy", "mixed_oltp",
                "scan_heavy"} <= set(SCENARIO_PRESETS)

    def test_every_preset_instantiates(self):
        for name in SCENARIO_PRESETS:
            scenario = scenario_preset(name)
            assert scenario.mix.entries
            assert scenario.mix.total_weight > 0

    def test_write_heavy_is_deterministic_by_construction(self):
        """write_heavy's logical metrics must not depend on what other
        clients committed: no traversal entries (they read the shared
        store's structure), only partition-local operations."""
        mix = scenario_preset("write_heavy").mix
        assert mix.mutates
        assert all(not entry.is_transaction for entry in mix.entries)

    def test_unknown_preset(self):
        with pytest.raises(ParameterError, match="unknown scenario"):
            scenario_preset("nope")


class TestScenarioRunnerReadOnly:
    def test_single_client_equals_workload_runner(self, small_database):
        """A transaction-only scenario is the classic protocol."""
        params = WorkloadParameters(set_depth=2, simple_depth=2,
                                    hierarchy_depth=2, stochastic_depth=5,
                                    cold_n=2, hot_n=10, max_visits=200)
        store = StoreConfig(page_size=512, buffer_pages=16).build()
        records = small_database.to_records()
        store.bulk_load(records.values(), order=sorted(records))
        store.reset_stats()
        classic = WorkloadRunner(small_database, store, params).run()

        scenario = Scenario(mix=WorkloadMix.from_workload_parameters(params),
                            cold_ops=2, warm_ops=10)
        store2 = StoreConfig(page_size=512, buffer_pages=16).build()
        store2.bulk_load(records.values(), order=sorted(records))
        store2.reset_stats()
        report = ScenarioRunner(small_database, scenario,
                                store=store2).run()
        warm = report.clients[0].warm
        assert warm.classic.totals.visits == classic.warm.totals.visits
        assert warm.classic.totals.io_reads == classic.warm.totals.io_reads
        # The per-class breakdown covers the same operations.
        assert warm.operation_count == classic.warm.transaction_count

    def test_report_shape(self, small_database):
        scenario = Scenario(mix=WorkloadMix(entries=(
            MixEntry("set", weight=0.5, depth=2, max_visits=100),
            MixEntry("range_lookup", weight=0.5))),
            clients=2, cold_ops=1, warm_ops=8, backend="memory")
        report = ScenarioRunner(small_database, scenario).run()
        assert report.client_count == 2
        assert report.mode == "interleaved"
        assert report.total_operations == 2 * 9
        assert report.write_operations == 0
        assert report.merged_warm.operation_count == 16
        classes = set(report.merged_warm.per_class)
        assert classes <= {"set", "range_lookup"}
        document = report.to_dict()
        assert document["operations"] == 18
        assert document["per_client"][1]["client"] == 1
        wall = report.merged_warm.wall_percentiles()
        assert wall.count == 16
        assert wall.p50 <= wall.p95 <= wall.p99


class TestScenarioRunnerMutating:
    def test_single_client_ops_stay_in_lockstep(self):
        """A mutating single-client scenario mutates the caller's database
        exactly like the legacy generic-operations runner."""
        database = small_mutating_db()
        scenario = Scenario(mix=WorkloadMix.from_operation_weights(),
                            cold_ops=3, warm_ops=15, backend="memory")
        runner = ScenarioRunner(database, scenario)
        report = runner.run()
        database.validate()
        assert report.write_operations > 0

    def test_partitioned_clients_write_disjoint_lanes(self):
        database = small_mutating_db()
        scenario = Scenario(mix=WorkloadMix(name="w", entries=(
            MixEntry("insert", weight=0.6),
            MixEntry("update", weight=0.4))),
            clients=3, cold_ops=2, warm_ops=12, backend="memory")
        runner = ScenarioRunner(database, scenario)
        engine = runner._resolve_engine()
        executors = runner.build_executors(engine)
        initial = set(database.objects)
        for executor in executors:
            collector = ScenarioCollector("probe")
            for _ in range(10):
                executor.step(collector)
        for executor in executors:
            fresh = set(executor.view.objects) - initial
            assert fresh, "every client must have inserted"
            assert all(oid % 3 == executor.client_id for oid in fresh), \
                (executor.client_id, sorted(fresh))

    def test_partitioned_victims_stay_owned(self):
        database = small_mutating_db()
        session = Session.for_database(database, "memory")
        mix = WorkloadMix(entries=(MixEntry("update"),))
        import copy
        executor = ClientExecutor(copy.deepcopy(database), mix, session,
                                  client_id=1, total_clients=2,
                                  partitioned=True)
        for _ in range(20):
            assert executor._pick_oid() % 2 == 1
        session.close()

    def test_in_process_mutating_logical_metrics_deterministic(self):
        def run_once():
            database = small_mutating_db()
            from dataclasses import replace
            scenario = replace(scenario_preset("write_heavy"),
                               clients=3, cold_ops=2, warm_ops=15)
            report = ScenarioRunner(database, scenario).run()
            return [
                [(op_class, stats.count, stats.objects)
                 for op_class, stats in sorted(client.warm.per_class.items())]
                for client in report.clients]
        assert run_once() == run_once()

    def test_delete_guard_switches_to_insert(self):
        database = small_mutating_db(num_objects=2)
        session = Session.for_database(database, "memory")
        executor = ClientExecutor(
            database, WorkloadMix(entries=(MixEntry("delete"),)), session)
        collector = ScenarioCollector("probe")
        executor.step(collector)  # 2 objects: delete is allowed...
        executor.step(collector)  # ...now 1 object: guard forces insert.
        classes = {r.operation.value for r in collector.operation_results}
        assert "insert" in classes
        assert len(database.objects) >= 1
        session.close()


class TestRunProcessesRefusesWhatCannotCross:
    def test_live_store_rejected(self, small_database):
        from repro.errors import WorkloadError
        store = StoreConfig(page_size=512, buffer_pages=16).build()
        scenario = Scenario(mix=WorkloadMix(entries=(MixEntry("set"),)))
        runner = ScenarioRunner(small_database, scenario, store=store)
        with pytest.raises(WorkloadError, match="process boundary"):
            runner.run_processes()

    def test_clustering_policy_rejected(self, small_database):
        from repro.clustering.dstc import DSTCPolicy
        from repro.errors import WorkloadError
        scenario = Scenario(mix=WorkloadMix(entries=(MixEntry("set"),)))
        runner = ScenarioRunner(small_database, scenario,
                                policy=DSTCPolicy())
        with pytest.raises(WorkloadError, match="clustering"):
            runner.run_processes()


class TestGenericOpsShimStillMutatesSharedDatabase:
    def test_runner_and_database_agree(self):
        database = small_mutating_db()
        runner = GenericOperationsRunner(database, "memory")
        before = database.num_objects
        runner.insert()
        assert database.num_objects == before + 1
        runner.delete()
        database.validate()

"""Preset tests — including Table 3 (the DSTC-CluB approximation)."""

from __future__ import annotations

import pytest

from repro.core.generation import generate_database
from repro.core.presets import (
    PRESETS,
    default_database_parameters,
    default_workload_parameters,
    dstc_club_database_parameters,
    dstc_club_workload_parameters,
    hypermodel_like_database_parameters,
    oo1_like_database_parameters,
    oo1_like_workload_parameters,
    oo7_like_database_parameters,
    preset,
)
from repro.errors import ParameterError
from repro.rand.distributions import ConstantDistribution, SpecialDistribution


class TestTable3Preset:
    """Table 3 of the paper: OCB parameterized to mimic DSTC-CluB."""

    def test_table3_dstc_club_preset(self):
        p = dstc_club_database_parameters()
        assert p.num_classes == 2                      # NC
        assert p.max_nref == (3, 3)                    # MAXNREF
        assert p.base_size == (50, 50)                 # BASESIZE
        assert p.num_objects == 20000                  # NO
        assert p.num_ref_types == 3                    # NREFT
        assert p.inf_class == 0                        # INFCLASS
        assert p.sup_class == 2                        # SUPCLASS
        assert isinstance(p.dist1, ConstantDistribution)  # DIST1
        assert isinstance(p.dist2, ConstantDistribution)  # DIST2
        assert isinstance(p.dist3, ConstantDistribution)  # DIST3
        assert isinstance(p.dist4, SpecialDistribution)   # DIST4 "Special"
        assert p.dist4.locality_probability == 0.9

    def test_generated_database_is_oo1_like(self):
        p = dstc_club_database_parameters(num_objects=500, ref_zone=20)
        database, _ = generate_database(p, validate=True)
        # Every object is a Part (class 1) with three part references.
        assert all(obj.cid == 1 for obj in database.objects.values())
        live = [len(obj.live_references)
                for obj in database.objects.values()]
        assert all(count == 3 for count in live)

    def test_locality_mostly_within_zone(self):
        p = dstc_club_database_parameters(num_objects=2000, ref_zone=25)
        database, _ = generate_database(p)
        inside = 0
        total = 0
        for obj in database.objects.values():
            for target in obj.live_references:
                total += 1
                if abs(target - obj.oid) <= 25:
                    inside += 1
        assert 0.85 < inside / total < 0.95

    def test_workload_is_traversal_only(self):
        w = dstc_club_workload_parameters()
        assert w.p_simple == 1.0
        assert w.p_set == w.p_hierarchy == w.p_stochastic == 0.0
        assert w.simple_depth == 7          # OO1's seven hops.
        assert w.max_visits == 3280         # OO1's traversal bound.

    def test_workload_depth_override(self):
        assert dstc_club_workload_parameters(depth=4).simple_depth == 4


class TestDefaultPresets:
    def test_scaling(self):
        p = default_database_parameters(scale=0.1)
        assert p.num_objects == 2000
        w = default_workload_parameters(scale=0.01)
        assert w.cold_n == 10
        assert w.hot_n == 100

    def test_bad_scale(self):
        with pytest.raises(ParameterError):
            default_database_parameters(scale=0.0)

    def test_seed_override(self):
        assert default_database_parameters(seed=9).seed == 9


class TestGenericityPresets:
    def test_oo1_ref_zone_is_one_percent(self):
        p = oo1_like_database_parameters(num_parts=10000)
        assert isinstance(p.dist4, SpecialDistribution)
        assert p.dist4.ref_zone == 100

    def test_oo1_workload_mixes_lookup_and_traversal(self):
        w = oo1_like_workload_parameters()
        assert w.p_set == pytest.approx(0.5)
        assert w.p_simple == pytest.approx(0.5)
        assert w.simple_depth == 7
        assert w.reverse_probability == 0.5

    def test_hypermodel_generates(self):
        p = hypermodel_like_database_parameters(num_nodes=200)
        database, _ = generate_database(p, validate=True)
        assert database.num_objects == 200
        assert database.schema.num_classes == 1

    def test_oo7_generates_with_inheritance_sizes(self):
        p = oo7_like_database_parameters(scale=0.05)
        database, _ = generate_database(p, validate=True)
        schema = database.schema
        # Manual (class 8) inherits DesignObj (class 9): 400 + 20.
        assert schema.get(8).instance_size == 420

    def test_oo7_assembly_hierarchy_is_acyclic(self):
        p = oo7_like_database_parameters(scale=0.05)
        database, _ = generate_database(p)
        assert not database.schema.has_cycle(2)


class TestRegistry:
    def test_all_presets_instantiate(self):
        for name in PRESETS:
            db, wl = preset(name)
            assert db.num_objects > 0
            assert wl.transactions_total > 0

    def test_unknown_preset(self):
        with pytest.raises(ParameterError):
            preset("nope")

    def test_case_insensitive(self):
        db, _ = preset("  DEFAULT-SMALL ")
        assert db.num_objects == 2000

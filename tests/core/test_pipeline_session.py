"""Pipelined BFS at the session and scenario layers.

Three guarantees: the pipeline flag only engages on engines that
declare async-read support (and the off path executes *no* pool code —
pinned with a constructor spy, not a timing claim); the one-chunk-ahead
iterator genuinely overlaps (the next chunk is submitted before the
current chunk's answers are consumed) while reproducing the sequential
answers exactly; and a whole scenario run's logical results are
byte-identical with the pipeline on and off.
"""

from __future__ import annotations

from repro.backends.pipelined import PipelinedSQLiteBackend
from repro.backends.pool import ConnectionPool
from repro.backends.sqlite import SQLiteBackend
from repro.core.generation import generate_database
from repro.core.presets import default_database_parameters
from repro.core.scenario import MixEntry, Scenario, ScenarioRunner, \
    WorkloadMix
from repro.core.session import Session, _PIPELINE_CHUNK


class RecordingStore:
    """A minimal async-capable store that logs the call interleaving."""

    supports_async_reads = True
    supports_batched_reads = True
    object_count = 1

    def __init__(self):
        self.log = []

    def traverse_refs_many(self, oids):
        self.log.append(("sync", tuple(oids)))
        return {oid: (oid + 1,) for oid in oids}

    def submit_traverse_refs_many(self, oids):
        oids = tuple(oids)
        self.log.append(("submit", oids))

        class Handle:
            def result(_self):
                self.log.append(("collect", oids))
                return {oid: (oid + 1,) for oid in oids}
        return Handle()


def test_pipeline_is_gated_on_engine_support(tmp_path):
    plain = SQLiteBackend(path=str(tmp_path / "plain.db"))
    assert Session(plain, pipeline=True).pipeline is False
    piped = PipelinedSQLiteBackend(path=str(tmp_path / "piped.db"),
                                   pool_size=2)
    assert Session(piped, pipeline=True).pipeline is True
    assert Session(piped, pipeline=False).pipeline is False
    plain.close()
    piped.close()


def test_pipeline_off_yields_one_sequential_call():
    store = RecordingStore()
    frontier = list(range(1, 3 * _PIPELINE_CHUNK))
    session = Session(store, pipeline=False)
    answers = list(session.iter_frontier_refs(frontier))
    assert len(answers) == 1
    assert store.log == [("sync", tuple(dict.fromkeys(frontier)))]


def test_small_frontiers_skip_the_submit_protocol():
    store = RecordingStore()
    session = Session(store, pipeline=True)
    frontier = list(range(1, _PIPELINE_CHUNK + 1))  # == chunk: no split
    answers = list(session.iter_frontier_refs(frontier))
    assert len(answers) == 1
    assert store.log[0][0] == "sync"


def test_pipelined_iteration_keeps_one_chunk_in_flight():
    store = RecordingStore()
    session = Session(store, pipeline=True)
    frontier = list(range(2 * _PIPELINE_CHUNK + 10))
    merged = {}
    for answers in session.iter_frontier_refs(frontier):
        merged.update(answers)
    assert merged == {oid: (oid + 1,) for oid in frontier}
    kinds = [kind for kind, _ in store.log]
    # Three chunks; chunk i+1 is submitted *before* chunk i is collected.
    assert kinds == ["submit", "submit", "collect", "submit",
                     "collect", "collect"]
    # Contiguous chunks in frontier order, collected in order.
    collected = [oids for kind, oids in store.log if kind == "collect"]
    assert list(sum(collected, ())) == frontier


def test_pipeline_off_constructs_no_pool(monkeypatch, tmp_path):
    """The zero-overhead claim, pinned structurally: a scenario run
    without the pipeline (on a plain engine, even with the flag up)
    never instantiates any pool machinery."""
    def explode(*args, **kwargs):
        raise AssertionError("ConnectionPool constructed on the off path")
    monkeypatch.setattr(ConnectionPool, "__init__", explode)
    database, _ = generate_database(
        default_database_parameters(scale=0.02, seed=7))
    scenario = Scenario(
        mix=WorkloadMix(name="walk", entries=(
            MixEntry("structure_traversal", weight=1.0, depth=3),)),
        clients=1, cold_ops=1, warm_ops=4,
        backend="sqlite", pipeline=True,
        backend_options={"path": str(tmp_path / "off.db"),
                         "ref_index": True})
    report = ScenarioRunner(database, scenario).run()
    assert report.merged_warm.operation_count == 4


def _walk_scenario(pipeline, path):
    return Scenario(
        mix=WorkloadMix(name="walk", entries=(
            MixEntry("structure_traversal", weight=0.7, depth=6,
                     max_visits=2000),
            MixEntry("simple", weight=0.3, depth=3),)),
        clients=1, cold_ops=2, warm_ops=10, seed=42,
        backend="pipelined-sqlite", pipeline=pipeline,
        backend_options={"path": path, "ref_index": True, "pool_size": 3})


def test_scenario_results_identical_with_pipeline_on(tmp_path):
    database, _ = generate_database(
        default_database_parameters(scale=0.05, seed=42))
    reports = {}
    for mode in (False, True):
        runner = ScenarioRunner(
            database, _walk_scenario(mode, str(tmp_path / f"{mode}.db")))
        reports[mode] = runner.run()

    def logical(report):
        phase = report.merged_warm.to_dict()
        return [(row["class"], row["count"], row["objects"])
                for row in phase["per_class"]]

    assert logical(reports[True]) == logical(reports[False])
    assert reports[True].merged_cold.operation_count \
        == reports[False].merged_cold.operation_count


def test_scenario_pipeline_flag_round_trips():
    scenario = Scenario(
        mix=WorkloadMix(name="walk", entries=(
            MixEntry("structure_traversal", weight=1.0),)),
        pipeline=True)
    spec = scenario.to_dict()
    assert spec["pipeline"] is True
    assert Scenario.from_dict(spec).pipeline is True
    off = Scenario(mix=scenario.mix)
    assert "pipeline" not in off.to_dict()
    assert Scenario.from_dict(off.to_dict()).pipeline is False

"""OCBBenchmark facade tests."""

from __future__ import annotations

import pytest

from repro.clustering.dstc import DSTCParameters, DSTCPolicy
from repro.core.benchmark import OCBBenchmark
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.errors import WorkloadError
from repro.store.storage import StoreConfig


def make_benchmark(policy=None, placement="sequential"):
    db = DatabaseParameters(num_classes=5, max_nref=3, base_size=20,
                            num_objects=200, seed=3)
    wl = WorkloadParameters(cold_n=2, hot_n=8, set_depth=2, simple_depth=2,
                            hierarchy_depth=2, stochastic_depth=5,
                            max_visits=150)
    return OCBBenchmark(db, wl, StoreConfig(page_size=512, buffer_pages=8),
                        policy=policy, initial_placement=placement)


class TestSetup:
    def test_setup_generates_and_loads(self):
        bench = make_benchmark()
        database = bench.setup()
        assert database.num_objects == 200
        assert bench.store is not None
        assert bench.store.object_count == 200

    def test_setup_resets_stats(self):
        bench = make_benchmark()
        bench.setup()
        assert bench.store.snapshot().total_ios == 0

    def test_initial_placement_applied(self):
        bench = make_benchmark(placement="by_class")
        bench.setup()
        order = bench.store.current_order()
        database = bench.database
        classes = [database.class_of(oid) for oid in order]
        assert classes == sorted(classes)


class TestRun:
    def test_run_returns_full_result(self):
        result = make_benchmark().run()
        assert result.report.warm.transaction_count == 8
        assert result.database_statistics.num_objects == 200
        assert result.store_pages > 0
        assert result.generation.total_seconds > 0.0

    def test_run_auto_setup(self):
        bench = make_benchmark()
        result = bench.run()  # No explicit setup().
        assert result.report.cold.transaction_count == 2

    def test_describe(self):
        result = make_benchmark().run()
        text = result.describe()
        assert "OCB benchmark result" in text
        assert "warm run" in text

    def test_defaults_are_paper_defaults(self):
        bench = OCBBenchmark()
        assert bench.database_parameters.num_objects == 20000
        assert bench.workload_parameters.hot_n == 10000


class TestClusteringExperiment:
    def test_requires_clustering_policy(self):
        bench = make_benchmark()
        with pytest.raises(WorkloadError):
            bench.run_clustering_experiment()

    def test_runs_with_dstc(self):
        policy = DSTCPolicy(DSTCParameters(observation_period=5,
                                           selection_threshold=1,
                                           unit_weight_threshold=1.0))
        bench = make_benchmark(policy=policy)
        result = bench.run_clustering_experiment(label="facade")
        assert result.label == "facade"
        assert result.before.warm.transaction_count == 8

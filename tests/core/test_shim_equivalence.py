"""The shims' byte-identical guarantee, pinned against frozen goldens.

The declarative scenario layer replaced the bodies of the three legacy
runners — ``WorkloadRunner``, ``GenericOperationsRunner`` and
``MultiClientRunner`` are now thin shims over ``ScenarioRunner`` /
``ClientExecutor``.  The ``GOLDEN`` constants below were captured by
running the *pre-refactor* implementations (commit ``6d0f26b``) on
fixed seeds across the three built-in backends; these tests re-run the
shims on the same seeds and require exact equality, down to the
simulated I/O counters and (rounded) simulated clock.

If a change to the scenario layer breaks one of these, it changed the
semantics of a legacy execution path — either fix the regression or
consciously re-capture the goldens and say so in the commit.
"""

from __future__ import annotations

import pytest

from repro.backends import create_backend
from repro.core.generation import generate_database
from repro.core.generic_ops import GenericOperationsRunner
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.core.workload import WorkloadRunner
from repro.multiuser.runner import MultiClientRunner
from repro.store.storage import StoreConfig

CONFIG = StoreConfig(page_size=512, buffer_pages=16)
BACKENDS = ("simulated", "memory", "sqlite")

WORKLOAD_PARAMS = WorkloadParameters(
    set_depth=2, simple_depth=2, hierarchy_depth=3, stochastic_depth=8,
    cold_n=4, hot_n=16, max_visits=300)
#: Covers the reverse / think-time / fixed-hierarchy-type / dedupe draws.
WORKLOAD_REVERSE_PARAMS = WorkloadParameters(
    set_depth=2, simple_depth=2, hierarchy_depth=2, stochastic_depth=6,
    cold_n=2, hot_n=12, max_visits=300, reverse_probability=0.5,
    think_time=0.5, hierarchy_ref_type=2, dedupe_visits=True)
MULTIUSER_PARAMS = WorkloadParameters(
    clients=3, cold_n=2, hot_n=6, set_depth=2, simple_depth=2,
    hierarchy_depth=2, stochastic_depth=5, max_visits=150)

GOLDEN = \
{'generic_ops': {'memory': (('update', 3, 0, 0, 0.0),
                            ('sequential_scan', 120, 0, 0, 0.0),
                            ('delete', 4, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('range_lookup', 11, 0, 0, 0.0),
                            ('sequential_scan', 119, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('insert', 3, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('range_lookup', 14, 0, 0, 0.0),
                            ('update', 1, 0, 0, 0.0),
                            ('range_lookup', 11, 0, 0, 0.0),
                            ('range_lookup', 11, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0)),
                 'simulated': (('update', 3, 1, 1, 0.02206),
                               ('sequential_scan', 120, 2, 0, 0.02256),
                               ('delete', 4, 0, 3, 0.03608),
                               ('update', 3, 0, 2, 0.02406),
                               ('update', 3, 0, 2, 0.02406),
                               ('range_lookup', 11, 0, 0, 0.00022),
                               ('sequential_scan', 119, 0, 0, 0.00238),
                               ('update', 3, 0, 3, 0.03606),
                               ('insert', 3, 0, 1, 0.01206),
                               ('update', 3, 0, 2, 0.02406),
                               ('update', 3, 0, 2, 0.02406),
                               ('update', 3, 0, 2, 0.02406),
                               ('update', 3, 0, 1, 0.01206),
                               ('range_lookup', 14, 0, 0, 0.00028),
                               ('update', 1, 0, 1, 0.01202),
                               ('range_lookup', 11, 0, 0, 0.00022),
                               ('range_lookup', 11, 0, 0, 0.00022),
                               ('update', 3, 0, 2, 0.02406)),
                 'sqlite': (('update', 3, 0, 0, 0.0),
                            ('sequential_scan', 120, 0, 0, 0.0),
                            ('delete', 4, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('range_lookup', 11, 0, 0, 0.0),
                            ('sequential_scan', 119, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('insert', 3, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0),
                            ('range_lookup', 14, 0, 0, 0.0),
                            ('update', 1, 0, 0, 0.0),
                            ('range_lookup', 11, 0, 0, 0.0),
                            ('range_lookup', 11, 0, 0, 0.0),
                            ('update', 3, 0, 0, 0.0))},
 'multiuser': {'memory': ((('cold', 'set', 1, 19, 17, 0, 0, 0, 0.0),
                           ('cold', 'stochastic', 1, 6, 6, 0, 0, 0, 0.0),
                           ('warm', 'hierarchy', 2, 7, 7, 0, 0, 0, 0.0),
                           ('warm', 'simple', 1, 13, 13, 0, 0, 0, 0.0),
                           ('warm',
                            'stochastic',
                            3,
                            18,
                            18,
                            0,
                            0,
                            0,
                            0.0)),
                          (('cold',
                            'stochastic',
                            2,
                            12,
                            12,
                            0,
                            0,
                            0,
                            0.0),
                           ('warm', 'hierarchy', 3, 9, 9, 0, 0, 0, 0.0),
                           ('warm', 'set', 1, 9, 9, 0, 0, 0, 0.0),
                           ('warm', 'simple', 1, 13, 13, 0, 0, 0, 0.0),
                           ('warm', 'stochastic', 1, 6, 6, 0, 0, 0, 0.0)),
                          (('cold', 'simple', 2, 22, 21, 0, 0, 0, 0.0),
                           ('warm', 'hierarchy', 3, 10, 10, 0, 0, 0, 0.0),
                           ('warm', 'set', 2, 26, 26, 0, 0, 0, 0.0),
                           ('warm', 'simple', 1, 19, 17, 0, 0, 0, 0.0))),
               'simulated': ((('cold',
                               'set',
                               1,
                               19,
                               17,
                               0,
                               6,
                               0,
                               0.06082),
                              ('cold',
                               'stochastic',
                               1,
                               6,
                               6,
                               0,
                               0,
                               0,
                               0.00012),
                              ('warm',
                               'hierarchy',
                               2,
                               7,
                               7,
                               0,
                               0,
                               0,
                               0.00014),
                              ('warm',
                               'simple',
                               1,
                               13,
                               13,
                               0,
                               0,
                               0,
                               0.00026),
                              ('warm',
                               'stochastic',
                               3,
                               18,
                               18,
                               0,
                               0,
                               0,
                               0.00036)),
                             (('cold',
                               'stochastic',
                               2,
                               12,
                               12,
                               0,
                               0,
                               0,
                               0.00024),
                              ('warm',
                               'hierarchy',
                               3,
                               9,
                               9,
                               0,
                               0,
                               0,
                               0.00018),
                              ('warm', 'set', 1, 9, 9, 0, 0, 0, 0.00018),
                              ('warm',
                               'simple',
                               1,
                               13,
                               13,
                               0,
                               0,
                               0,
                               0.00026),
                              ('warm',
                               'stochastic',
                               1,
                               6,
                               6,
                               0,
                               0,
                               0,
                               0.00012)),
                             (('cold',
                               'simple',
                               2,
                               22,
                               21,
                               0,
                               0,
                               0,
                               0.00044),
                              ('warm',
                               'hierarchy',
                               3,
                               10,
                               10,
                               0,
                               0,
                               0,
                               0.0002),
                              ('warm',
                               'set',
                               2,
                               26,
                               26,
                               0,
                               0,
                               0,
                               0.00052),
                              ('warm',
                               'simple',
                               1,
                               19,
                               17,
                               0,
                               0,
                               0,
                               0.00038))),
               'sqlite': ((('cold', 'set', 1, 19, 17, 0, 0, 0, 0.0),
                           ('cold', 'stochastic', 1, 6, 6, 0, 0, 0, 0.0),
                           ('warm', 'hierarchy', 2, 7, 7, 0, 0, 0, 0.0),
                           ('warm', 'simple', 1, 13, 13, 0, 0, 0, 0.0),
                           ('warm',
                            'stochastic',
                            3,
                            18,
                            18,
                            0,
                            0,
                            0,
                            0.0)),
                          (('cold',
                            'stochastic',
                            2,
                            12,
                            12,
                            0,
                            0,
                            0,
                            0.0),
                           ('warm', 'hierarchy', 3, 9, 9, 0, 0, 0, 0.0),
                           ('warm', 'set', 1, 9, 9, 0, 0, 0, 0.0),
                           ('warm', 'simple', 1, 13, 13, 0, 0, 0, 0.0),
                           ('warm', 'stochastic', 1, 6, 6, 0, 0, 0, 0.0)),
                          (('cold', 'simple', 2, 22, 21, 0, 0, 0, 0.0),
                           ('warm', 'hierarchy', 3, 10, 10, 0, 0, 0, 0.0),
                           ('warm', 'set', 2, 26, 26, 0, 0, 0, 0.0),
                           ('warm', 'simple', 1, 19, 17, 0, 0, 0, 0.0)))},
 'workload': {'memory': (('cold', 'set', 1, 19, 17, 0, 0, 0, 0.0),
                         ('cold', 'simple', 2, 32, 30, 0, 0, 0, 0.0),
                         ('cold', 'stochastic', 1, 9, 9, 0, 0, 0, 0.0),
                         ('warm', 'hierarchy', 9, 42, 41, 0, 0, 0, 0.0),
                         ('warm', 'set', 1, 17, 17, 0, 0, 0, 0.0),
                         ('warm', 'simple', 3, 49, 45, 0, 0, 0, 0.0),
                         ('warm', 'stochastic', 3, 27, 27, 0, 0, 0, 0.0)),
              'simulated': (('cold',
                             'set',
                             1,
                             19,
                             17,
                             0,
                             21,
                             0,
                             0.210628),
                            ('cold',
                             'simple',
                             2,
                             32,
                             30,
                             0,
                             30,
                             0,
                             0.30121),
                            ('cold',
                             'stochastic',
                             1,
                             9,
                             9,
                             0,
                             6,
                             0,
                             0.060298),
                            ('warm',
                             'hierarchy',
                             9,
                             42,
                             41,
                             0,
                             40,
                             0,
                             0.40162),
                            ('warm',
                             'set',
                             1,
                             17,
                             17,
                             0,
                             14,
                             0,
                             0.140606),
                            ('warm',
                             'simple',
                             3,
                             49,
                             45,
                             0,
                             39,
                             0,
                             0.39174),
                            ('warm',
                             'stochastic',
                             3,
                             27,
                             27,
                             0,
                             20,
                             0,
                             0.200938)),
              'sqlite': (('cold', 'set', 1, 19, 17, 0, 0, 0, 0.0),
                         ('cold', 'simple', 2, 32, 30, 0, 0, 0, 0.0),
                         ('cold', 'stochastic', 1, 9, 9, 0, 0, 0, 0.0),
                         ('warm', 'hierarchy', 9, 42, 41, 0, 0, 0, 0.0),
                         ('warm', 'set', 1, 17, 17, 0, 0, 0, 0.0),
                         ('warm', 'simple', 3, 49, 45, 0, 0, 0, 0.0),
                         ('warm',
                          'stochastic',
                          3,
                          27,
                          27,
                          0,
                          0,
                          0,
                          0.0))},
 'workload_reverse': {'memory': (('cold', 'set', 1, 17, 17, 0, 0, 0, 0.0),
                                 ('cold',
                                  'stochastic',
                                  1,
                                  7,
                                  7,
                                  0,
                                  0,
                                  0,
                                  0.0),
                                 ('warm',
                                  'hierarchy',
                                  3,
                                  14,
                                  14,
                                  0,
                                  0,
                                  0,
                                  0.0),
                                 ('warm', 'set', 4, 30, 30, 0, 0, 0, 0.0),
                                 ('warm',
                                  'simple',
                                  2,
                                  23,
                                  23,
                                  0,
                                  0,
                                  0,
                                  0.0),
                                 ('warm',
                                  'stochastic',
                                  3,
                                  15,
                                  15,
                                  0,
                                  0,
                                  0,
                                  0.0)),
                      'simulated': (('cold',
                                     'set',
                                     1,
                                     17,
                                     17,
                                     0,
                                     21,
                                     0,
                                     0.210588),
                                    ('cold',
                                     'stochastic',
                                     1,
                                     7,
                                     7,
                                     0,
                                     4,
                                     0,
                                     0.040212),
                                    ('warm',
                                     'hierarchy',
                                     3,
                                     14,
                                     14,
                                     0,
                                     8,
                                     0,
                                     0.08043),
                                    ('warm',
                                     'set',
                                     4,
                                     30,
                                     30,
                                     0,
                                     25,
                                     0,
                                     0.251082),
                                    ('warm',
                                     'simple',
                                     2,
                                     23,
                                     23,
                                     0,
                                     16,
                                     0,
                                     0.160758),
                                    ('warm',
                                     'stochastic',
                                     3,
                                     15,
                                     15,
                                     0,
                                     11,
                                     0,
                                     0.110522)),
                      'sqlite': (('cold', 'set', 1, 17, 17, 0, 0, 0, 0.0),
                                 ('cold',
                                  'stochastic',
                                  1,
                                  7,
                                  7,
                                  0,
                                  0,
                                  0,
                                  0.0),
                                 ('warm',
                                  'hierarchy',
                                  3,
                                  14,
                                  14,
                                  0,
                                  0,
                                  0,
                                  0.0),
                                 ('warm', 'set', 4, 30, 30, 0, 0, 0, 0.0),
                                 ('warm',
                                  'simple',
                                  2,
                                  23,
                                  23,
                                  0,
                                  0,
                                  0,
                                  0.0),
                                 ('warm',
                                  'stochastic',
                                  3,
                                  15,
                                  15,
                                  0,
                                  0,
                                  0,
                                  0.0))}}


def loaded(name, database):
    backend = create_backend(name, CONFIG)
    records = database.to_records()
    backend.bulk_load(records.values(), order=sorted(records))
    backend.reset_stats()
    return backend


def phase_signature(phase):
    """Deterministic per-kind signature: logical + simulated metrics.

    Wall-clock fields are excluded (they can never be byte-identical
    between two runs); everything else in a report derives from them.
    """
    signature = []
    for kind, stats in sorted(phase.per_kind.items()):
        signature.append((phase.name, kind.value, stats.count, stats.visits,
                          stats.distinct_objects, stats.truncated,
                          stats.io_reads, stats.io_writes,
                          round(stats.sim_time, 9)))
    return tuple(signature)


@pytest.fixture(scope="module")
def golden_database():
    params = DatabaseParameters(num_classes=6, max_nref=4, base_size=25,
                                num_objects=220, num_ref_types=4, seed=1998)
    database, _ = generate_database(params, validate=True)
    return database


@pytest.mark.parametrize("backend", BACKENDS)
class TestWorkloadRunnerShim:
    def test_default_draws_match_golden(self, golden_database, backend):
        engine = loaded(backend, golden_database)
        report = WorkloadRunner(golden_database, engine,
                                WORKLOAD_PARAMS).run()
        engine.close()
        signature = phase_signature(report.cold) + \
            phase_signature(report.warm)
        assert signature == GOLDEN["workload"][backend]

    def test_reverse_dedupe_draws_match_golden(self, golden_database,
                                               backend):
        engine = loaded(backend, golden_database)
        report = WorkloadRunner(golden_database, engine,
                                WORKLOAD_REVERSE_PARAMS).run()
        engine.close()
        signature = phase_signature(report.cold) + \
            phase_signature(report.warm)
        assert signature == GOLDEN["workload_reverse"][backend]


@pytest.mark.parametrize("backend", BACKENDS)
class TestGenericOperationsShim:
    def test_operation_stream_matches_golden(self, backend):
        database, _ = generate_database(DatabaseParameters(
            num_classes=5, max_nref=3, base_size=25, num_objects=120,
            seed=77))
        runner = GenericOperationsRunner(database, backend)
        results = runner.run_mix(18)
        database.validate()
        signature = tuple(
            (r.operation.value, r.objects_touched, r.io_reads,
             r.io_writes, round(r.sim_time, 9))
            for r in results)
        close = getattr(runner.store, "close", None)
        if close is not None:
            close()
        assert signature == GOLDEN["generic_ops"][backend]


@pytest.mark.parametrize("backend", BACKENDS)
class TestMultiClientRunnerShim:
    def test_per_client_reports_match_golden(self, golden_database,
                                             backend):
        runner = MultiClientRunner(golden_database, backend,
                                   MULTIUSER_PARAMS)
        report = runner.run()
        close = getattr(runner.store, "close", None)
        if close is not None:
            close()
        signature = tuple(
            phase_signature(client.cold) + phase_signature(client.warm)
            for client in report.clients)
        assert signature == GOLDEN["multiuser"][backend]

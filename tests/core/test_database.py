"""OCBDatabase container tests."""

from __future__ import annotations

import pytest

from repro.core.database import OCBDatabase, OCBObject
from repro.core.generation import generate_database
from repro.core.parameters import DatabaseParameters
from repro.errors import GenerationError
from repro.store.serializer import encoded_size


class TestLookups:
    def test_get_and_class_of(self, small_database):
        obj = small_database.get(1)
        assert obj.oid == 1
        assert small_database.class_of(1) == obj.cid

    def test_unknown_oid(self, small_database):
        with pytest.raises(GenerationError):
            small_database.get(10_000)
        with pytest.raises(GenerationError):
            small_database.class_of(10_000)

    def test_catalog_is_copy(self, small_database):
        catalog = small_database.catalog()
        catalog[1] = 999
        assert small_database.class_of(1) != 999 or \
            small_database.class_of(1) == small_database.get(1).cid

    def test_ref_type_of(self, small_database):
        obj = next(o for o in small_database.objects.values() if o.oref)
        type_id = small_database.ref_type_of(obj.oid, 0)
        assert 1 <= type_id <= small_database.parameters.num_ref_types

    def test_ref_type_of_bad_index(self, small_database):
        with pytest.raises(GenerationError):
            small_database.ref_type_of(1, 999)

    def test_tref_table_covers_all_classes(self, small_database):
        table = small_database.tref_table()
        assert set(table) == set(small_database.schema.class_ids())

    def test_iter_objects_ordered(self, small_database):
        oids = [obj.oid for obj in small_database.iter_objects()]
        assert oids == sorted(oids)


class TestRecords:
    def test_records_carry_instance_size_as_filler(self, small_database):
        records = small_database.to_records()
        for oid, record in list(records.items())[:20]:
            descriptor = small_database.schema.get(record.cid)
            assert record.filler == descriptor.instance_size

    def test_record_sizes_match_encoding(self, small_database):
        records = small_database.to_records()
        sizes = small_database.record_sizes()
        for oid, record in records.items():
            assert sizes[oid] == record.size

    def test_total_bytes(self, small_database):
        assert small_database.total_bytes() == \
            sum(small_database.record_sizes().values())


class TestValidation:
    def test_valid_database_passes(self, small_database):
        small_database.validate()

    def test_detects_dangling_reference(self, small_db_params):
        database, _ = generate_database(small_db_params)
        victim = next(o for o in database.objects.values() if o.oref)
        for i, t in enumerate(victim.oref):
            if t is not None:
                victim.oref[i] = 99_999
                break
        with pytest.raises(GenerationError):
            database.validate()

    def test_detects_broken_back_reference(self, small_db_params):
        database, _ = generate_database(small_db_params)
        victim = next(o for o in database.objects.values() if o.back_refs)
        victim.back_refs.pop()
        with pytest.raises(GenerationError):
            database.validate()

    def test_detects_wrong_slot_count(self, small_db_params):
        database, _ = generate_database(small_db_params)
        victim = database.get(1)
        victim.oref.append(None)
        with pytest.raises(GenerationError):
            database.validate()


class TestStatistics:
    def test_counts_consistent(self, small_database):
        stats = small_database.statistics()
        assert stats.num_objects == small_database.num_objects
        assert stats.num_classes == small_database.schema.num_classes
        total_slots = stats.live_references + stats.nil_references
        expected_slots = sum(
            small_database.schema.get(o.cid).max_nref
            for o in small_database.objects.values())
        assert total_slots == expected_slots

    def test_average_fanout(self, small_database):
        stats = small_database.statistics()
        assert stats.average_fanout == pytest.approx(
            stats.live_references / stats.num_objects)

    def test_population_by_class_sums_to_no(self, small_database):
        stats = small_database.statistics()
        assert sum(count for _, count in stats.population_by_class) == \
            stats.num_objects

    def test_describe_mentions_key_numbers(self, small_database):
        text = small_database.statistics().describe()
        assert str(small_database.num_objects) in text


class TestLiveReferences:
    def test_live_references_property(self):
        obj = OCBObject(oid=1, cid=1, oref=[2, None, 3])
        assert obj.live_references == [2, 3]

"""Parameter validation tests, including the paper's Tables 1 and 2."""

from __future__ import annotations

import pytest

from repro.core.parameters import (
    DatabaseParameters,
    ReferenceTypeSpec,
    WorkloadParameters,
    default_reference_types,
)
from repro.core.presets import (
    default_database_parameters,
    default_workload_parameters,
)
from repro.errors import ParameterError
from repro.rand.distributions import UniformDistribution


class TestTable1Defaults:
    """Table 1 of the paper, verbatim."""

    def test_table1_defaults(self):
        p = default_database_parameters()
        assert p.num_classes == 20                      # NC
        assert p.max_nref == (10,) * 20                 # MAXNREF(i)
        assert p.base_size == (50,) * 20                # BASESIZE(i)
        assert p.num_objects == 20000                   # NO
        assert p.num_ref_types == 4                     # NREFT
        assert p.inf_class == 1                         # INFCLASS
        assert p.sup_class == 20                        # SUPCLASS = NC
        assert p.inf_ref == 1                           # INFREF
        assert p.sup_ref == 20000                       # SUPREF = NO
        assert isinstance(p.dist1, UniformDistribution)  # DIST1
        assert isinstance(p.dist2, UniformDistribution)  # DIST2
        assert isinstance(p.dist3, UniformDistribution)  # DIST3
        assert isinstance(p.dist4, UniformDistribution)  # DIST4


class TestTable2Defaults:
    """Table 2 of the paper, verbatim."""

    def test_table2_defaults(self):
        w = default_workload_parameters()
        assert w.set_depth == 3                         # SETDEPTH
        assert w.simple_depth == 3                      # SIMDEPTH
        assert w.hierarchy_depth == 5                   # HIEDEPTH
        assert w.stochastic_depth == 50                 # STODEPTH
        assert w.cold_n == 1000                         # COLDN
        assert w.hot_n == 10000                         # HOTN
        assert w.think_time == 0.0                      # THINK
        assert w.p_set == 0.25                          # PSET
        assert w.p_simple == 0.25                       # PSIMPLE
        assert w.p_hierarchy == 0.25                    # PHIER
        assert w.p_stochastic == 0.25                   # PSTOCH
        assert isinstance(w.dist5, UniformDistribution)  # RAND5
        assert w.clients == 1                           # CLIENTN


class TestReferenceTypes:
    def test_default_ladder(self):
        specs = default_reference_types(4)
        assert specs[0].is_inheritance and specs[0].acyclic
        assert specs[1].acyclic and not specs[1].is_inheritance
        assert not specs[2].acyclic
        assert not specs[3].acyclic

    def test_single_type_is_association(self):
        (spec,) = default_reference_types(1)
        assert not spec.is_inheritance

    def test_inheritance_must_be_acyclic(self):
        with pytest.raises(ParameterError):
            ReferenceTypeSpec(1, "broken", acyclic=False, is_inheritance=True)

    def test_type_ids_start_at_one(self):
        with pytest.raises(ParameterError):
            ReferenceTypeSpec(0, "zero")

    def test_custom_types_must_cover_range(self):
        with pytest.raises(ParameterError):
            DatabaseParameters(
                num_classes=2, num_objects=10, num_ref_types=2,
                reference_types=(ReferenceTypeSpec(1, "a"),
                                 ReferenceTypeSpec(3, "b")))


class TestDatabaseParameterValidation:
    def test_per_class_tuples(self):
        p = DatabaseParameters(num_classes=3, max_nref=(1, 2, 3),
                               base_size=(10, 20, 30), num_objects=10)
        assert p.max_nref_for(1) == 1
        assert p.max_nref_for(3) == 3
        assert p.base_size_for(2) == 20

    def test_scalar_broadcast(self):
        p = DatabaseParameters(num_classes=3, max_nref=5, num_objects=10)
        assert p.max_nref == (5, 5, 5)

    def test_wrong_tuple_length(self):
        with pytest.raises(ParameterError):
            DatabaseParameters(num_classes=3, max_nref=(1, 2), num_objects=5)

    def test_negative_values(self):
        with pytest.raises(ParameterError):
            DatabaseParameters(num_classes=0)
        with pytest.raises(ParameterError):
            DatabaseParameters(num_objects=-1)
        with pytest.raises(ParameterError):
            DatabaseParameters(max_nref=-1)

    def test_class_bounds(self):
        with pytest.raises(ParameterError):
            DatabaseParameters(num_classes=5, inf_class=4, sup_class=2,
                               num_objects=10)
        with pytest.raises(ParameterError):
            DatabaseParameters(num_classes=5, sup_class=9, num_objects=10)

    def test_inf_class_zero_allows_nil(self):
        p = DatabaseParameters(num_classes=5, inf_class=0, num_objects=10)
        assert p.inf_class == 0

    def test_ref_bounds_default_to_population(self):
        p = DatabaseParameters(num_objects=500)
        assert p.object_ref_bounds(250) == (1, 500)

    def test_ref_zone_bounds_relative_and_clamped(self):
        p = DatabaseParameters(num_objects=500, ref_zone=50)
        assert p.object_ref_bounds(250) == (200, 300)
        assert p.object_ref_bounds(10) == (1, 60)
        assert p.object_ref_bounds(490) == (440, 500)

    def test_negative_ref_zone(self):
        with pytest.raises(ParameterError):
            DatabaseParameters(num_objects=10, ref_zone=-1)

    def test_fixed_tref_shape_checked(self):
        with pytest.raises(ParameterError):
            DatabaseParameters(num_classes=2, max_nref=2, num_objects=5,
                               fixed_tref=((1, 1),))  # Missing a row.
        with pytest.raises(ParameterError):
            DatabaseParameters(num_classes=2, max_nref=2, num_objects=5,
                               fixed_tref=((1,), (1, 1)))  # Short row.

    def test_fixed_tref_type_range_checked(self):
        with pytest.raises(ParameterError):
            DatabaseParameters(num_classes=1, max_nref=1, num_objects=5,
                               num_ref_types=2, fixed_tref=((9,),))

    def test_fixed_cref_range_checked(self):
        with pytest.raises(ParameterError):
            DatabaseParameters(num_classes=2, max_nref=1, num_objects=5,
                               fixed_cref=((3,), (1,)))

    def test_ref_type_spec_lookup(self):
        p = DatabaseParameters(num_objects=10)
        assert p.ref_type_spec(1).is_inheritance
        with pytest.raises(ParameterError):
            p.ref_type_spec(99)


class TestWorkloadParameterValidation:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ParameterError):
            WorkloadParameters(p_set=0.5, p_simple=0.5, p_hierarchy=0.5,
                               p_stochastic=0.0)

    def test_probability_range(self):
        with pytest.raises(ParameterError):
            WorkloadParameters(p_set=-0.1, p_simple=0.6, p_hierarchy=0.25,
                               p_stochastic=0.25)

    def test_negative_depth(self):
        with pytest.raises(ParameterError):
            WorkloadParameters(set_depth=-1)

    def test_negative_think(self):
        with pytest.raises(ParameterError):
            WorkloadParameters(think_time=-1.0)

    def test_clients_minimum(self):
        with pytest.raises(ParameterError):
            WorkloadParameters(clients=0)

    def test_reverse_probability_range(self):
        with pytest.raises(ParameterError):
            WorkloadParameters(reverse_probability=1.5)

    def test_max_visits_minimum(self):
        with pytest.raises(ParameterError):
            WorkloadParameters(max_visits=0)

    def test_transactions_total(self):
        w = WorkloadParameters(cold_n=10, hot_n=40)
        assert w.transactions_total == 50

    def test_probability_table_order(self):
        w = WorkloadParameters()
        kinds = [kind for kind, _ in w.probability_table()]
        assert kinds == ["set", "simple", "hierarchy", "stochastic"]

    def test_degenerate_single_kind(self):
        w = WorkloadParameters(p_set=1.0, p_simple=0.0, p_hierarchy=0.0,
                               p_stochastic=0.0)
        assert w.p_set == 1.0

"""Open-loop driver: schedules, pacing, knee detection, the sweep, and
the coordinated-omission pin.

The central test here is the synthetic-stall experiment: a backend that
deterministically freezes mid-run makes the open-loop response tail blow
up (the arrivals keep coming while the engine is stuck) while the
service tail — and a closed-loop run of the *same* stalling engine —
stays small.  That divergence is coordinated omission made measurable,
and it is the whole reason this subsystem exists.
"""

from __future__ import annotations

import dataclasses
import json
import time

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.loadgen import (ArrivalSchedule, OpenLoopRunner, annotate_knee,
                                find_knee, merged_arrivals, pace,
                                run_load_sweep)
from repro.core.presets import scenario_preset
from repro.core.scenario import ScenarioRunner
from repro.errors import ParameterError
from repro.obs.latency import LatencyCollector


@pytest.fixture
def memory_scenario():
    """The read_heavy preset rebound to the memory engine — the fastest
    deterministic scenario the open-loop driver can pace."""
    preset = scenario_preset("read_heavy")
    return dataclasses.replace(preset, backend="memory", clients=2,
                               cold_ops=2, warm_ops=40, seed=4242)


class TestArrivalSchedule:
    def test_poisson_is_seed_deterministic(self):
        first = ArrivalSchedule(rate=100.0, operations=50, seed=7).offsets()
        second = ArrivalSchedule(rate=100.0, operations=50, seed=7).offsets()
        assert first == second
        assert ArrivalSchedule(rate=100.0, operations=50,
                               seed=8).offsets() != first

    def test_poisson_streams_are_independent_lanes(self):
        lane0 = ArrivalSchedule(rate=50.0, operations=20, stream=0).offsets()
        lane1 = ArrivalSchedule(rate=50.0, operations=20, stream=1).offsets()
        assert lane0 != lane1

    def test_poisson_offsets_ascend_at_roughly_the_rate(self):
        offsets = ArrivalSchedule(rate=200.0, operations=400).offsets()
        assert offsets == sorted(offsets)
        assert all(offset > 0.0 for offset in offsets)
        # 400 exponential gaps at 200/s span ~2s; 3x slack on each side.
        assert 2.0 / 3.0 < offsets[-1] < 6.0

    def test_fixed_mode_spaces_exactly(self):
        offsets = ArrivalSchedule(rate=10.0, operations=4,
                                  mode="fixed").offsets()
        assert offsets == pytest.approx([0.1, 0.2, 0.3, 0.4])

    def test_validation(self):
        with pytest.raises(ParameterError):
            ArrivalSchedule(rate=0.0, operations=1)
        with pytest.raises(ParameterError):
            ArrivalSchedule(rate=1.0, operations=-1)
        with pytest.raises(ParameterError):
            ArrivalSchedule(rate=1.0, operations=1, mode="burst")


class TestMergedArrivals:
    def test_sorted_and_operation_conserving(self):
        merged = merged_arrivals(100.0, 25, clients=3, seed=11)
        assert len(merged) == 25
        assert [offset for offset, _ in merged] == sorted(
            offset for offset, _ in merged)
        # 25 = 9 + 8 + 8 across three lanes.
        counts = [sum(1 for _, client in merged if client == lane)
                  for lane in range(3)]
        assert counts == [9, 8, 8]

    def test_single_client_is_the_plain_schedule(self):
        merged = merged_arrivals(50.0, 10, clients=1, seed=5)
        plain = ArrivalSchedule(rate=50.0, operations=10, seed=5).offsets()
        assert [offset for offset, _ in merged] == plain

    def test_rejects_zero_clients(self):
        with pytest.raises(ParameterError):
            merged_arrivals(10.0, 5, clients=0)


class VirtualClock:
    """A deterministic clock: ``sleep`` advances it, work advances it."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


class TestPace:
    def test_on_time_run_has_no_late_starts(self):
        clock = VirtualClock()
        offsets = [0.1 * (index + 1) for index in range(5)]
        latency = LatencyCollector()

        def execute(index: int) -> None:
            clock.sleep(0.01)

        elapsed = pace(offsets, execute, latency,
                       clock=clock, sleep=clock.sleep)
        assert latency.operations == 5
        assert latency.late_starts == 0
        assert latency.max_backlog == 1
        assert elapsed == pytest.approx(0.51)

    def test_stall_builds_backlog_and_marks_late_starts(self):
        clock = VirtualClock()
        offsets = [0.1 * (index + 1) for index in range(10)]
        latency = LatencyCollector()
        seen = []

        def execute(index: int) -> None:
            clock.sleep(1.0 if index == 2 else 0.01)

        def observe(index: int, late: bool, backlog: int) -> None:
            seen.append((index, late, backlog))

        pace(offsets, execute, latency, observe=observe,
             clock=clock, sleep=clock.sleep)
        # The stall ends at t=1.3 with every remaining arrival due:
        # ops 3..9 all start late, and op 3 sees the full 7-deep backlog.
        assert latency.late_starts == 7
        assert latency.max_backlog == 7
        assert seen[3] == (3, True, 7)
        assert all(late for _, late, _ in seen[3:])
        # The stalled op's own response is its 1s service; op 3
        # (intended t=0.4, started t=1.3) waited 0.9s for it — queueing
        # delay recorded even though its own service stayed 10ms.
        assert latency.response.max == pytest.approx(1.0, abs=0.01)
        assert latency.wait.max == pytest.approx(0.9, abs=0.01)
        assert latency.service.percentile(50.0) == pytest.approx(
            0.01, rel=0.05)

    def test_arrivals_are_never_started_early(self):
        clock = VirtualClock()
        offsets = [1.0, 2.0]
        starts = []
        pace(offsets, lambda index: starts.append(clock.now),
             LatencyCollector(), clock=clock, sleep=clock.sleep)
        assert starts == pytest.approx([1.0, 2.0])


class TestKnee:
    @staticmethod
    def cell(offered, achieved, response_p95):
        return {"offered_rate": offered, "throughput": achieved,
                "response_p95_ms": response_p95}

    def test_no_knee_when_throughput_tracks(self):
        cells = [self.cell(100, 99, 2.0), self.cell(200, 196, 2.2)]
        assert find_knee(cells) is None

    def test_throughput_divergence_fires(self):
        cells = [self.cell(100, 99, 2.0), self.cell(200, 150, 2.5),
                 self.cell(400, 160, 3.0)]
        assert find_knee(cells) == 200

    def test_response_blowup_fires_even_with_full_throughput(self):
        cells = [self.cell(100, 100, 2.0), self.cell(200, 199, 9.0)]
        assert find_knee(cells) == 200
        assert find_knee(cells, blowup=10.0) is None

    def test_cells_are_ordered_by_rate_before_detection(self):
        cells = [self.cell(400, 160, 3.0), self.cell(100, 99, 1.0)]
        assert find_knee(cells) == 400

    def test_annotate_marks_knee_and_saturated(self):
        cells = [self.cell(100, 99, 2.0), self.cell(200, 150, 2.0),
                 self.cell(400, 155, 2.0)]
        annotate_knee(cells, find_knee(cells))
        assert [c["knee"] for c in cells] == [False, True, False]
        assert [c["saturated"] for c in cells] == [False, True, True]

    def test_empty_cells_have_no_knee(self):
        assert find_knee([]) is None


class StallingBackend(MemoryBackend):
    """A memory engine that freezes once, deterministically, mid-run.

    The stall triggers on the Nth object access, so the same seeded
    operation stream hits it at the same operation every run.
    """

    def __init__(self, stall_at: int = 400,
                 stall_seconds: float = 0.12) -> None:
        super().__init__()
        self.stall_at = stall_at
        self.stall_seconds = stall_seconds
        self.stalled = False

    def read_object(self, oid):
        if not self.stalled and self.object_accesses >= self.stall_at:
            self.stalled = True
            time.sleep(self.stall_seconds)
        return super().read_object(oid)


class TestCoordinatedOmission:
    """The pin: an open-loop run sees the stall in every queued
    operation's response; a closed-loop run of the same engine hides it.
    """

    def test_open_loop_response_tail_dwarfs_service_tail(
            self, small_database, memory_scenario):
        scenario = dataclasses.replace(memory_scenario, warm_ops=150)
        store = StallingBackend(stall_at=2500, stall_seconds=0.12)
        runner = OpenLoopRunner(small_database, scenario, rate=600.0,
                                operations=150, seed=99, store=store)
        report = runner.run()
        assert store.stalled, "the stall must actually trigger"
        latency = report.latency
        response_p99 = latency.response.percentile(99.0)
        # P90 service excludes the one operation that carried the stall
        # itself — the engine-only cost of everything else.
        service_p90 = latency.service.percentile(90.0)
        assert service_p90 < 0.02
        assert response_p99 >= 5 * max(latency.service.percentile(99.0),
                                       1e-4) or \
            response_p99 >= 0.05
        # The queue the stall built is visible in the accounting.
        assert latency.late_starts > 0
        assert latency.max_backlog > 1
        assert report.scenario.late_starts == latency.late_starts
        assert report.scenario.max_backlog == latency.max_backlog

    def test_closed_loop_hides_the_same_stall(
            self, small_database, memory_scenario):
        scenario = dataclasses.replace(memory_scenario, warm_ops=150)
        store = StallingBackend(stall_at=2500, stall_seconds=0.12)
        report = ScenarioRunner(small_database, scenario,
                                store=store).run()
        assert store.stalled
        # Closed loop: only the single stalled operation's wall sample
        # is slow; the P50 stays tiny and nothing records the queueing
        # delay the stall would have imposed on an open-traffic source.
        wall = report.merged_warm.wall_percentiles()
        assert wall.p50 < 0.02
        assert report.late_starts == 0
        assert report.max_backlog == 0


class TestOpenLoopRunner:
    def test_report_shape_and_cell(self, small_database, memory_scenario):
        runner = OpenLoopRunner(small_database, memory_scenario,
                                rate=800.0, operations=40, seed=7)
        report = runner.run()
        assert report.operations == 40
        assert report.scenario.mode == "open-loop"
        assert report.scenario.offered_rate == 800.0
        assert report.scenario.arrival_mode == "poisson"
        assert report.achieved_throughput > 0.0
        assert "open-loop" in report.scenario.describe()
        cell = report.cell()
        assert cell["key"] == "memory/read_heavy/r800"
        assert cell["clients"] == 2
        assert cell["operations"] == 40
        # The regression-gated wall number is the service P95.
        assert cell["wall_p95_ms"] == pytest.approx(
            report.latency.service.percentile(95.0) * 1e3)
        for field in ("response_p999_ms", "service_p95_ms",
                      "wait_mean_ms", "late_starts", "max_backlog"):
            assert field in cell

    def test_rate_validation(self, small_database, memory_scenario):
        with pytest.raises(ParameterError):
            OpenLoopRunner(small_database, memory_scenario, rate=0.0)
        with pytest.raises(ParameterError):
            OpenLoopRunner(small_database, memory_scenario, rate=10.0,
                           mode="burst")


class TestRunLoadSweep:
    def test_two_rate_sweep_document(self, small_database, memory_scenario):
        # Fixed arrivals: the schedule's realized rate equals the
        # nominal one, so achieved-vs-offered is deterministic even at
        # 30 operations (Poisson realizations this short are not).
        sweep = run_load_sweep(small_database, memory_scenario,
                               rates=[150.0, 1200.0], operations=60,
                               mode="fixed", seed=3,
                               progress=lambda line: None)
        cells = sweep["cells"]
        assert [cell["offered_rate"] for cell in cells] == [150.0, 1200.0]
        for cell in cells:
            assert cell["backend"] == "memory"
            assert cell["scenario"] == "read_heavy"
            assert cell["arrival_mode"] == "fixed"
            assert cell["operations"] == 60
            # DES prediction fields land in every measured cell.
            assert cell["predicted_wait_mean_ms"] >= 0.0
            assert cell["predicted_wait_p95_ms"] >= 0.0
            assert cell["predicted_throughput"] > 0.0
            assert 0.0 <= cell["predicted_utilization"] <= 1.0
            assert "saturated" in cell and "knee" in cell
        # The memory engine keeps up at 150 op/s: achieved throughput
        # tracks the offered rate (wide band — CI hosts under full-suite
        # load add scheduler slop to the short paced phase).
        assert cells[0]["throughput"] >= 150.0 * 0.70
        assert sweep["seed"] == 3
        assert sweep["arrival_mode"] == "fixed"

    def test_predict_false_omits_des_fields(self, small_database,
                                            memory_scenario):
        sweep = run_load_sweep(small_database, memory_scenario,
                               rates=[500.0], operations=10,
                               predict=False)
        assert "predicted_wait_mean_ms" not in sweep["cells"][0]

    def test_duplicate_rates_are_refused(self, small_database,
                                         memory_scenario):
        with pytest.raises(ParameterError):
            run_load_sweep(small_database, memory_scenario,
                           rates=[100.0, 100.0])
        with pytest.raises(ParameterError):
            run_load_sweep(small_database, memory_scenario, rates=[])

    def test_store_factory_gives_each_rate_a_fresh_engine(
            self, small_database, memory_scenario):
        stores = []

        def factory():
            store = MemoryBackend()
            stores.append(store)
            return store

        run_load_sweep(small_database, memory_scenario,
                       rates=[300.0, 900.0], operations=8,
                       predict=False, store_factory=factory)
        assert len(stores) == 2
        assert stores[0] is not stores[1]


class TestLoadtestCli:
    def test_end_to_end_document(self, tmp_path):
        from repro.cli import main
        from repro.obs import results

        out = str(tmp_path / "sweep.json")
        assert main(["loadtest", "read_heavy", "--rate", "100,900",
                     "--ops", "12", "--backend", "memory",
                     "--seed", "21", "--out", out]) == 0
        document = json.loads(open(out).read())
        results.validate_document(document)
        assert document["kind"] == "load_sweep"
        assert document["config"]["rates"] == [100.0, 900.0]
        assert len(document["cells"]) == 2
        for cell in document["cells"]:
            assert cell["backend"] == "memory"
            assert "predicted_wait_mean_ms" in cell
        # Comparing the document against itself is a clean gate.
        assert main(["loadtest", "--current", out, "--compare", out]) == 0

    def test_bad_rates_are_a_usage_error(self):
        from repro.cli import main

        assert main(["loadtest", "read_heavy", "--rate", "abc"]) == 1
        assert main(["loadtest", "read_heavy", "--rate", ","]) == 1

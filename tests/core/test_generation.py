"""Fig. 2 generation algorithm tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generation import generate_database, generate_schema
from repro.core.parameters import DatabaseParameters, ReferenceTypeSpec
from repro.rand.distributions import ConstantDistribution


def params(**overrides):
    defaults = dict(num_classes=6, max_nref=3, base_size=20,
                    num_objects=120, num_ref_types=4, seed=7)
    defaults.update(overrides)
    return DatabaseParameters(**defaults)


class TestSchemaGeneration:
    def test_class_count(self):
        schema, _ = generate_schema(params())
        assert schema.num_classes == 6

    def test_reference_types_in_range(self):
        schema, _ = generate_schema(params())
        for descriptor in schema:
            for type_id in descriptor.tref:
                assert 1 <= type_id <= 4

    def test_class_references_in_bounds(self):
        schema, _ = generate_schema(params(inf_class=2, sup_class=4))
        for descriptor in schema:
            for target in descriptor.cref:
                assert target is None or 2 <= target <= 4

    def test_inf_class_zero_produces_nils(self):
        schema, _ = generate_schema(params(
            inf_class=0, dist2=ConstantDistribution(0)))
        for descriptor in schema:
            assert all(target is None for target in descriptor.cref)

    def test_acyclic_types_have_no_cycles(self):
        schema, removed = generate_schema(params())
        for spec in schema.reference_types():
            if spec.acyclic:
                assert not schema.has_cycle(spec.type_id)

    def test_consistency_reports_removals(self):
        # Single class referencing itself with an acyclic type: the
        # consistency step must NULL every such reference.
        p = params(num_classes=1, num_ref_types=2,
                   fixed_tref=((1, 1, 1),), fixed_cref=((1, 1, 1),))
        schema, removed = generate_schema(p)
        assert removed == 3
        assert schema.get(1).live_reference_count == 0

    def test_cyclic_types_keep_self_references(self):
        p = params(num_classes=1, num_ref_types=4,
                   fixed_tref=((3, 3, 3),), fixed_cref=((1, 1, 1),))
        schema, removed = generate_schema(p)
        assert removed == 0
        assert schema.get(1).live_reference_count == 3

    def test_instance_sizes_include_inheritance(self):
        # 2 inherits from 1 => instance size of 2 is 20 + 20.
        p = params(num_classes=2, num_ref_types=2,
                   fixed_tref=((2,) * 3, (1, 2, 2)),
                   fixed_cref=((None,) * 3, (1, None, None)))
        schema, _ = generate_schema(p)
        assert schema.get(1).instance_size == 20
        assert schema.get(2).instance_size == 40

    def test_fixed_tref_and_cref_respected(self):
        p = params(num_classes=2, num_ref_types=4,
                   fixed_tref=((3, 3, 4), (4, 4, 4)),
                   fixed_cref=((2, 2, 0), (1, 1, 1)))
        schema, _ = generate_schema(p)
        assert schema.get(1).tref == [3, 3, 4]
        assert schema.get(1).cref == [2, 2, None]
        assert schema.get(2).cref == [1, 1, 1]


class TestObjectGeneration:
    def test_population_matches_no(self):
        database, _ = generate_database(params())
        assert database.num_objects == 120
        assert database.schema.total_population() == 120

    def test_every_object_in_class_range(self):
        database, _ = generate_database(params())
        for obj in database.objects.values():
            assert 1 <= obj.cid <= 6

    def test_dist3_constant_puts_all_in_one_class(self):
        database, _ = generate_database(params(
            dist3=ConstantDistribution(2)))
        assert all(obj.cid == 2 for obj in database.objects.values())
        assert database.schema.get(2).population == 120

    def test_reference_targets_match_cref_class(self):
        database, _ = generate_database(params(), validate=True)
        # validate() already checks; assert a sample explicitly.
        for obj in list(database.objects.values())[:20]:
            descriptor = database.schema.get(obj.cid)
            for index, target in enumerate(obj.oref):
                if target is not None:
                    assert database.class_of(target) == \
                        descriptor.cref[index]

    def test_back_references_mirror_forward(self):
        database, _ = generate_database(params())
        database.validate()  # Raises on any inconsistency.

    def test_ref_zone_locality(self):
        database, _ = generate_database(params(
            num_classes=1, num_objects=400, num_ref_types=3,
            fixed_tref=((3, 3, 3),), fixed_cref=((1, 1, 1),),
            ref_zone=10))
        for obj in database.objects.values():
            for target in obj.oref:
                if target is not None:
                    assert abs(target - obj.oid) <= 10

    def test_empty_database(self):
        database, report = generate_database(params(num_objects=0))
        assert database.num_objects == 0
        assert report.total_seconds >= 0.0

    def test_zero_maxnref(self):
        database, _ = generate_database(params(max_nref=0), validate=True)
        for obj in database.objects.values():
            assert obj.oref == []


class TestDeterminism:
    def test_same_seed_same_database(self):
        a, _ = generate_database(params(seed=123))
        b, _ = generate_database(params(seed=123))
        assert a.catalog() == b.catalog()
        for oid in a.objects:
            assert a.objects[oid].oref == b.objects[oid].oref

    def test_different_seed_different_database(self):
        a, _ = generate_database(params(seed=123))
        b, _ = generate_database(params(seed=124))
        assert any(a.objects[oid].oref != b.objects[oid].oref
                   for oid in a.objects)

    def test_object_count_does_not_perturb_schema(self):
        small, _ = generate_schema(params(num_objects=10)), None
        large, _ = generate_schema(params(num_objects=1000)), None
        schema_small = small[0]
        schema_large = large[0]
        for cid in schema_small.class_ids():
            assert schema_small.get(cid).tref == schema_large.get(cid).tref
            assert schema_small.get(cid).cref == schema_large.get(cid).cref


class TestGenerationReport:
    def test_phases_sum_to_total(self):
        _, report = generate_database(params())
        assert report.total_seconds == pytest.approx(
            report.schema_seconds + report.consistency_seconds +
            report.objects_seconds + report.references_seconds)

    def test_bigger_database_takes_longer(self):
        _, small = generate_database(params(num_objects=50))
        _, large = generate_database(params(num_objects=5000))
        assert large.total_seconds > small.total_seconds


@settings(max_examples=20, deadline=None)
@given(
    num_classes=st.integers(min_value=1, max_value=10),
    max_nref=st.integers(min_value=0, max_value=5),
    num_objects=st.integers(min_value=0, max_value=150),
    num_ref_types=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_generation_invariants_property(num_classes, max_nref, num_objects,
                                        num_ref_types, seed):
    """Any parameterization yields a structurally valid database."""
    p = DatabaseParameters(num_classes=num_classes, max_nref=max_nref,
                           base_size=10, num_objects=num_objects,
                           num_ref_types=num_ref_types, seed=seed)
    database, _ = generate_database(p)
    database.validate()
    for spec in database.schema.reference_types():
        if spec.acyclic:
            assert not database.schema.has_cycle(spec.type_id)

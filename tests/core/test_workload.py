"""Workload runner (cold/warm protocol) tests."""

from __future__ import annotations

import pytest

from repro.clustering.dstc import DSTCParameters, DSTCPolicy
from repro.core.metrics import MetricsCollector
from repro.core.parameters import WorkloadParameters
from repro.core.transactions import TransactionKind
from repro.core.workload import WorkloadRunner
from repro.errors import WorkloadError
from repro.store.storage import StoreConfig


def make_runner(database, store, **workload_overrides):
    defaults = dict(set_depth=2, simple_depth=2, hierarchy_depth=2,
                    stochastic_depth=5, cold_n=2, hot_n=10, max_visits=200)
    defaults.update(workload_overrides)
    return WorkloadRunner(database, store, WorkloadParameters(**defaults))


class TestProtocol:
    def test_cold_and_warm_counts(self, small_database, loaded_store):
        runner = make_runner(small_database, loaded_store)
        report = runner.run()
        assert report.cold.transaction_count == 2
        assert report.warm.transaction_count == 10

    def test_empty_store_rejected(self, small_database):
        store = StoreConfig(buffer_pages=4).build()
        with pytest.raises(WorkloadError):
            make_runner(small_database, store)

    def test_metrics_accumulate_io(self, small_database, loaded_store):
        runner = make_runner(small_database, loaded_store)
        report = runner.run()
        totals = report.warm.totals
        assert totals.visits > 0
        assert totals.io_reads > 0
        assert totals.sim_time > 0.0

    def test_deterministic_given_seed(self, small_database):
        def run_once():
            store = StoreConfig(page_size=512, buffer_pages=16).build()
            records = small_database.to_records()
            store.bulk_load(records.values(), order=sorted(records))
            store.reset_stats()
            return make_runner(small_database, store, seed=77).run()

        a, b = run_once(), run_once()
        assert a.warm.totals.visits == b.warm.totals.visits
        assert a.warm.totals.io_reads == b.warm.totals.io_reads

    def test_client_ids_draw_distinct_streams(self, small_database,
                                              loaded_store):
        a = WorkloadRunner(small_database, loaded_store,
                           WorkloadParameters(cold_n=0, hot_n=5),
                           client_id=0)
        b = WorkloadRunner(small_database, loaded_store,
                           WorkloadParameters(cold_n=0, hot_n=5),
                           client_id=1)
        specs_a = [a.draw_spec() for _ in range(10)]
        specs_b = [b.draw_spec() for _ in range(10)]
        assert [s.root for s in specs_a] != [s.root for s in specs_b]

    def test_think_time_advances_clock(self, small_database, loaded_store):
        runner = make_runner(small_database, loaded_store, think_time=1.0,
                             cold_n=0, hot_n=3)
        before = loaded_store.clock.now
        runner.run()
        assert loaded_store.clock.now - before >= 3.0


class TestDrawSpec:
    def test_kind_probabilities_respected(self, small_database, loaded_store):
        runner = make_runner(small_database, loaded_store,
                             p_set=1.0, p_simple=0.0, p_hierarchy=0.0,
                             p_stochastic=0.0)
        for _ in range(20):
            assert runner.draw_spec().kind is TransactionKind.SET

    def test_mixed_kinds_all_appear(self, small_database, loaded_store):
        runner = make_runner(small_database, loaded_store)
        kinds = {runner.draw_spec().kind for _ in range(300)}
        assert kinds == set(TransactionKind)

    def test_roots_in_population(self, small_database, loaded_store):
        runner = make_runner(small_database, loaded_store)
        for _ in range(100):
            spec = runner.draw_spec()
            assert 1 <= spec.root <= small_database.num_objects

    def test_hierarchy_ref_type_drawn(self, small_database, loaded_store):
        runner = make_runner(small_database, loaded_store,
                             p_set=0.0, p_simple=0.0, p_hierarchy=1.0,
                             p_stochastic=0.0)
        types = {runner.draw_spec().ref_type for _ in range(50)}
        assert types <= set(range(1, 5))
        assert len(types) > 1

    def test_hierarchy_ref_type_fixed(self, small_database, loaded_store):
        runner = make_runner(small_database, loaded_store,
                             p_set=0.0, p_simple=0.0, p_hierarchy=1.0,
                             p_stochastic=0.0, hierarchy_ref_type=2)
        assert all(runner.draw_spec().ref_type == 2 for _ in range(20))

    def test_reverse_probability(self, small_database, loaded_store):
        runner = make_runner(small_database, loaded_store,
                             reverse_probability=1.0)
        assert all(runner.draw_spec().reverse for _ in range(20))

    def test_depths_follow_kind(self, small_database, loaded_store):
        runner = make_runner(small_database, loaded_store,
                             p_set=0.0, p_simple=0.0, p_hierarchy=0.0,
                             p_stochastic=1.0, stochastic_depth=17)
        assert runner.draw_spec().depth == 17


class TestStep:
    def test_step_records_exactly_one_transaction(self, small_database,
                                                  loaded_store):
        runner = make_runner(small_database, loaded_store)
        collector = MetricsCollector("probe")
        runner.step(collector)
        assert collector.report.transaction_count == 1


class TestAutoReorganization:
    def test_policy_with_trigger_reorganizes(self, small_database):
        store = StoreConfig(page_size=512, buffer_pages=16).build()
        records = small_database.to_records()
        store.bulk_load(records.values(), order=sorted(records))
        store.reset_stats()
        policy = DSTCPolicy(DSTCParameters(
            observation_period=2, selection_threshold=1,
            unit_weight_threshold=1.0, trigger_period=5))
        runner = WorkloadRunner(
            small_database, store,
            WorkloadParameters(cold_n=0, hot_n=15, set_depth=2,
                               simple_depth=2, hierarchy_depth=2,
                               stochastic_depth=5, max_visits=100),
            policy=policy)
        runner.run()
        assert policy.reorganizations >= 1

"""Decode-free hot paths end-to-end: structure traversal, lazy sessions,
decode counters, and the graph_walk preset.

The serializer-level equivalence lives in ``tests/store/test_lazy.py``;
this module pins the layers above it — that ``structure_traversal``
operations really decode nothing, that a lazy session changes no
logical result, and that the counters every engine now reports tell the
two apart.
"""

from __future__ import annotations

from dataclasses import replace

from repro.backends.sqlite import SQLiteBackend
from repro.core.presets import scenario_preset
from repro.core.scenario import (
    MixEntry,
    Scenario,
    ScenarioRunner,
    WorkloadMix,
)
from repro.core.session import Session
from repro.store.serializer import LazyStoredObject


def _structure_scenario(**overrides):
    spec = dict(
        mix=WorkloadMix(name="structure_only", entries=(
            MixEntry("structure_traversal", weight=1.0, depth=4),
        )),
        clients=1, cold_ops=3, warm_ops=15, backend="sqlite", seed=11)
    spec.update(overrides)
    return Scenario(**spec)


class TestStructureTraversal:
    def test_counts_land_in_the_report(self, small_database):
        report = ScenarioRunner(small_database, _structure_scenario()).run()
        assert report.decodes_avoided > 0
        rows = {row[0] for row in report.merged_warm.rows()}
        assert "structure_traversal" in rows

    def test_traversal_decodes_no_records(self, small_database):
        """The warm phase of a structure-only mix must not decode: only
        the executor's own root bookkeeping reads records (cold phase /
        live-view setup), never the frontier expansion itself."""
        backend = SQLiteBackend()
        records = small_database.to_records()
        backend.bulk_load(records.values(), order=sorted(records))
        backend.reset_stats()
        answers = backend.traverse_refs_many(sorted(records)[:40])
        stats = backend.stats()
        assert stats["records_decoded"] == 0
        assert stats["decodes_avoided"] == 40
        assert set(answers) == set(sorted(records)[:40])
        backend.close()

    def test_visits_respect_max_visits(self, small_database):
        scenario = _structure_scenario(mix=WorkloadMix(
            name="capped", entries=(
                MixEntry("structure_traversal", weight=1.0, depth=6,
                         max_visits=5),)))
        report = ScenarioRunner(small_database, scenario).run()
        stats = report.merged_warm.stats_for("structure_traversal")
        assert stats.count > 0
        # No traversal may have touched more objects than the cap.
        assert stats.objects <= stats.count * 5

    def test_structure_traversal_is_read_only(self):
        mix = WorkloadMix(name="ro", entries=(
            MixEntry("structure_traversal", weight=1.0),))
        assert not mix.mutates

    def test_report_dict_carries_decode_counters(self, small_database):
        report = ScenarioRunner(small_database, _structure_scenario()).run()
        spec = report.to_dict()
        assert spec["decodes_avoided"] == report.decodes_avoided
        assert spec["records_decoded"] == report.records_decoded


class TestLazySession:
    def test_lazy_session_reads_lazy_records(self, small_database):
        backend = SQLiteBackend()
        records = small_database.to_records()
        backend.bulk_load(records.values(), order=sorted(records))
        session = Session(backend, lazy=True)
        oid = sorted(records)[0]
        record = session.access(oid)
        assert isinstance(record, LazyStoredObject)
        assert record == records[oid]
        session.close()

    def test_lazy_scenario_matches_default_logical_metrics(
            self, small_database):
        base = _structure_scenario(mix=WorkloadMix(
            name="mixed_reads", entries=(
                MixEntry("simple", weight=0.4, depth=2),
                MixEntry("range_lookup", weight=0.3, range_width=5),
                MixEntry("sequential_scan", weight=0.3),)))
        eager = ScenarioRunner(small_database, base).run()
        lazy = ScenarioRunner(
            small_database, replace(base, lazy=True)).run()
        assert lazy.total_operations == eager.total_operations
        assert lazy.merged_warm.totals.objects \
            == eager.merged_warm.totals.objects
        assert eager.records_decoded > 0
        assert lazy.records_decoded == 0
        assert lazy.decodes_avoided > 0

    def test_lazy_spec_round_trips(self):
        scenario = _structure_scenario(lazy=True)
        spec = scenario.to_dict()
        assert spec["lazy"] is True
        assert Scenario.from_dict(spec).lazy is True
        # Default mode stays byte-identical: the key is simply absent.
        assert "lazy" not in _structure_scenario().to_dict()

    def test_run_processes_carries_lazy_mode(self, small_database):
        """Process runs no longer refuse lazy scenarios: the flag rides
        every WorkerSpec into the worker's session (the fuller coverage
        lives in ``tests/parallel/test_pipeline_parallel.py``)."""
        from repro.parallel.spec import ParallelConfig

        scenario = _structure_scenario(lazy=True, clients=2)
        runner = ScenarioRunner(small_database, scenario)
        report = runner.run_processes(config=ParallelConfig(parallel=False))
        assert report.decodes_avoided > 0
        assert report.records_decoded == 0


class TestGraphWalkPreset:
    def test_preset_shape(self):
        scenario = scenario_preset("graph_walk")
        assert scenario.backend == "sqlite"
        assert scenario.backend_options.get("ref_index") is True
        kinds = {entry.kind for entry in scenario.mix.entries}
        assert "structure_traversal" in kinds
        assert not scenario.mix.mutates

    def test_preset_runs_decode_free(self, small_database):
        scenario = replace(scenario_preset("graph_walk"),
                           cold_ops=3, warm_ops=12, seed=5)
        report = ScenarioRunner(small_database, scenario).run()
        assert report.decodes_avoided > 0

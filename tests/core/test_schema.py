"""Schema model tests: descriptors, typed graphs, inheritance sizes."""

from __future__ import annotations

import pytest

from repro.core.parameters import ReferenceTypeSpec, default_reference_types
from repro.core.schema import ClassDescriptor, Schema
from repro.errors import GenerationError, ParameterError


def make_schema():
    """3 classes: 3 --inherits--> 2 --inherits--> 1, plus an association."""
    types = (
        ReferenceTypeSpec(1, "inheritance", acyclic=True, is_inheritance=True),
        ReferenceTypeSpec(2, "association"),
    )
    classes = [
        ClassDescriptor(cid=1, max_nref=1, base_size=100,
                        tref=[2], cref=[3]),
        ClassDescriptor(cid=2, max_nref=1, base_size=20,
                        tref=[1], cref=[1]),
        ClassDescriptor(cid=3, max_nref=2, base_size=5,
                        tref=[1, 2], cref=[2, 1]),
    ]
    return Schema(classes, types)


class TestClassDescriptor:
    def test_instance_size_defaults_to_base(self):
        descriptor = ClassDescriptor(cid=1, max_nref=0, base_size=42)
        assert descriptor.instance_size == 42

    def test_references_iterator(self):
        descriptor = ClassDescriptor(cid=1, max_nref=2, base_size=1,
                                     tref=[1, 2], cref=[5, None])
        assert list(descriptor.references()) == [(0, 1, 5), (1, 2, None)]

    def test_live_reference_count(self):
        descriptor = ClassDescriptor(cid=1, max_nref=3, base_size=1,
                                     tref=[1, 1, 1], cref=[2, None, 3])
        assert descriptor.live_reference_count == 2

    def test_validation(self):
        with pytest.raises(ParameterError):
            ClassDescriptor(cid=0, max_nref=1, base_size=1)
        with pytest.raises(ParameterError):
            ClassDescriptor(cid=1, max_nref=-1, base_size=1)


class TestSchemaLookups:
    def test_class_ids_sorted(self):
        assert make_schema().class_ids() == [1, 2, 3]

    def test_get_unknown(self):
        with pytest.raises(GenerationError):
            make_schema().get(9)

    def test_contains_and_iter(self):
        schema = make_schema()
        assert 2 in schema
        assert 9 not in schema
        assert [d.cid for d in schema] == [1, 2, 3]

    def test_duplicate_class_rejected(self):
        types = default_reference_types(1)
        descriptor = ClassDescriptor(cid=1, max_nref=0, base_size=1)
        with pytest.raises(GenerationError):
            Schema([descriptor, descriptor], types)

    def test_unknown_reference_type_rejected(self):
        types = default_reference_types(1)
        bad = ClassDescriptor(cid=1, max_nref=1, base_size=1,
                              tref=[7], cref=[1])
        with pytest.raises(GenerationError):
            Schema([bad], types)

    def test_ref_type_lookup(self):
        schema = make_schema()
        assert schema.ref_type(1).is_inheritance
        with pytest.raises(GenerationError):
            schema.ref_type(9)


class TestTypedGraphs:
    def test_typed_edges(self):
        schema = make_schema()
        inheritance = schema.typed_edges(1)
        assert inheritance == {2: [1], 3: [2]}
        association = schema.typed_edges(2)
        assert association == {1: [3], 3: [1]}

    def test_inheritance_parents(self):
        schema = make_schema()
        assert schema.inheritance_parents(3) == [2]
        assert schema.inheritance_parents(2) == [1]
        assert schema.inheritance_parents(1) == []

    def test_inheritance_ancestors_transitive(self):
        schema = make_schema()
        assert schema.inheritance_ancestors(3) == {1, 2}
        assert schema.inheritance_ancestors(1) == set()

    def test_has_cycle_detects(self):
        types = (ReferenceTypeSpec(1, "t", acyclic=False),)
        classes = [
            ClassDescriptor(cid=1, max_nref=1, base_size=1, tref=[1], cref=[2]),
            ClassDescriptor(cid=2, max_nref=1, base_size=1, tref=[1], cref=[1]),
        ]
        assert Schema(classes, types).has_cycle(1)

    def test_has_cycle_clean_graph(self):
        assert not make_schema().has_cycle(1)


class TestInstanceSizes:
    def test_inheritance_adds_ancestor_sizes(self):
        schema = make_schema()
        schema.compute_instance_sizes()
        # Class 3 inherits 2 which inherits 1: 5 + 20 + 100.
        assert schema.get(3).instance_size == 125
        assert schema.get(2).instance_size == 120
        assert schema.get(1).instance_size == 100

    def test_diamond_counts_ancestor_once(self):
        types = (ReferenceTypeSpec(1, "inh", acyclic=True,
                                   is_inheritance=True),)
        classes = [
            ClassDescriptor(cid=1, max_nref=0, base_size=100, tref=[], cref=[]),
            ClassDescriptor(cid=2, max_nref=1, base_size=10,
                            tref=[1], cref=[1]),
            ClassDescriptor(cid=3, max_nref=1, base_size=10,
                            tref=[1], cref=[1]),
            ClassDescriptor(cid=4, max_nref=2, base_size=1,
                            tref=[1, 1], cref=[2, 3]),
        ]
        schema = Schema(classes, types)
        schema.compute_instance_sizes()
        # 4 inherits {2, 3, 1}: 1 + 10 + 10 + 100 (1 counted once).
        assert schema.get(4).instance_size == 121

    def test_population_and_describe(self):
        schema = make_schema()
        schema.get(1).iterator.extend([10, 11])
        assert schema.total_population() == 2
        text = schema.describe()
        assert "3 classes" in text
        assert "population=2" in text

"""Per-entry DIST5 overrides and the ``hot_spot`` preset's skew.

A per-entry root distribution is the composition primitive: one Zipf
entry rides on an otherwise uniform mix, and on a sharded engine the
hot low-oid head lands disproportionately on one residue class.  These
tests pin the override plumbing (draws, serialization round trip) and
the measurable consequence — a shard-access imbalance uniform traffic
does not produce.
"""

from __future__ import annotations

import pytest

from repro.backends.sharded import ShardedSQLiteBackend, shard_of
from repro.core.generation import generate_database
from repro.core.presets import SCENARIO_PRESETS, \
    default_database_parameters, scenario_preset
from repro.core.scenario import MixEntry, ScenarioRunner, WorkloadMix
from repro.errors import ParameterError
from repro.rand.distributions import UniformDistribution, ZipfDistribution
from repro.rand.lewis_payne import LewisPayne

SHARDS = 4


def test_entry_without_override_uses_the_mix_distribution():
    mix_dist = UniformDistribution()
    entry = MixEntry("simple", weight=1.0)
    assert entry.root_distribution(mix_dist) is mix_dist
    hot = MixEntry("simple", weight=1.0, dist5=ZipfDistribution(skew=1.2))
    assert hot.root_distribution(mix_dist) is hot.dist5


def test_dist5_override_serializes_and_round_trips():
    entry = MixEntry("structure_traversal", weight=0.6, depth=4,
                     dist5=ZipfDistribution(skew=1.2))
    spec = entry.to_dict()
    assert spec["dist5"] == {"name": "Zipf", "skew": 1.2}
    rebuilt = MixEntry.from_dict(spec)
    assert isinstance(rebuilt.dist5, ZipfDistribution)
    assert rebuilt.dist5.skew == 1.2
    # A bare name is accepted too; no override survives as None.
    named = MixEntry.from_dict({"kind": "simple", "weight": 1.0,
                                "dist5": "zipf"})
    assert isinstance(named.dist5, ZipfDistribution)
    assert MixEntry.from_dict({"kind": "simple", "weight": 1.0}).dist5 \
        is None


def test_dist5_round_trips_through_the_whole_mix():
    mix = WorkloadMix(name="hot", entries=(
        MixEntry("structure_traversal", weight=0.7,
                 dist5=ZipfDistribution(skew=1.5)),
        MixEntry("simple", weight=0.3),))
    rebuilt = WorkloadMix.from_dict(mix.to_dict())
    assert isinstance(rebuilt.entries[0].dist5, ZipfDistribution)
    assert rebuilt.entries[0].dist5.skew == 1.5
    assert rebuilt.entries[1].dist5 is None


def test_bad_dist5_specs_are_rejected():
    with pytest.raises(ParameterError):
        MixEntry.from_dict({"kind": "simple", "weight": 1.0,
                            "dist5": {"skew": 1.2}})  # no name
    with pytest.raises(ParameterError):
        MixEntry.from_dict({"kind": "simple", "weight": 1.0,
                            "dist5": "no-such-distribution"})


def test_zipf_override_concentrates_roots_on_one_shard():
    """The statistical core of the hot-spot preset, pinned directly:
    Zipf-skewed root draws pile onto the head oids' residue class,
    where uniform draws spread evenly across the shards."""
    rng = LewisPayne(seed=19980323)
    num_objects = 2000
    mix_dist = UniformDistribution()

    def shard_counts(entry):
        counts = [0] * SHARDS
        distribution = entry.root_distribution(mix_dist)
        for _ in range(2000):
            drawn = distribution.draw(rng, 1, num_objects)
            counts[shard_of(drawn, SHARDS)] += 1
        return counts

    uniform = shard_counts(MixEntry("simple", weight=1.0))
    hot = shard_counts(MixEntry("simple", weight=1.0,
                                dist5=ZipfDistribution(skew=1.2)))
    assert max(uniform) / min(uniform) < 1.3  # background stays flat
    # The Zipf head (ranks 1, 2, 3...) dominates: its residue class
    # takes a share no uniform shard ever approaches.
    assert max(hot) / min(hot) > 2.0
    assert hot.index(max(hot)) == shard_of(1, SHARDS)


def test_hot_spot_preset_registers_and_runs(tmp_path):
    assert "hot_spot" in SCENARIO_PRESETS
    scenario = scenario_preset("hot_spot")
    assert scenario.backend == "sharded-sqlite"
    hot_entries = [entry for entry in scenario.mix.entries
                   if entry.dist5 is not None]
    assert len(hot_entries) == 1
    assert isinstance(hot_entries[0].dist5, ZipfDistribution)

    database, _ = generate_database(
        default_database_parameters(scale=0.05, seed=7))
    backend = ShardedSQLiteBackend(path=str(tmp_path / "hot"),
                                   shards=SHARDS, home_shard=0)
    small = type(scenario)(mix=scenario.mix, clients=1,
                           cold_ops=2, warm_ops=30, seed=7,
                           backend=scenario.backend)
    report = ScenarioRunner(database, small, store=backend).run()
    assert report.merged_warm.operation_count == 30
    # Skewed traversal roots leave the pinned home shard measurably.
    assert backend.stats()["remote_reads"] > 0
    accesses = [engine.object_accesses for engine in backend._engines]
    assert sum(accesses) > 0
    backend.close()

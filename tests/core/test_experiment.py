"""Before/after clustering experiment tests (the Tables 4-5 protocol)."""

from __future__ import annotations

import pytest

from repro.clustering.base import NoClustering, PlacementContext
from repro.clustering.dstc import DSTCParameters, DSTCPolicy
from repro.core.experiment import ClusteringExperiment, ExperimentResult
from repro.core.generation import generate_database
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.errors import WorkloadError
from repro.store.storage import StoreConfig


def setup_experiment(policy=None, **workload_overrides):
    db_params = DatabaseParameters(
        num_classes=1, max_nref=3, base_size=30, num_objects=600,
        num_ref_types=3,
        fixed_tref=((3, 3, 3),), fixed_cref=((1, 1, 1),),
        ref_zone=10, seed=11)
    database, _ = generate_database(db_params)
    store = StoreConfig(page_size=512, buffer_pages=24).build()
    records = database.to_records()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    defaults = dict(p_set=0.0, p_simple=1.0, p_hierarchy=0.0,
                    p_stochastic=0.0, simple_depth=4, cold_n=2, hot_n=15,
                    max_visits=400)
    defaults.update(workload_overrides)
    workload = WorkloadParameters(**defaults)
    policy = policy or DSTCPolicy(DSTCParameters(
        observation_period=5, selection_threshold=1,
        unit_weight_threshold=1.0))
    return ClusteringExperiment(database, store, policy, workload,
                                label="test")


class TestProtocol:
    def test_runs_both_phases(self):
        result = setup_experiment().run()
        assert result.before.warm.transaction_count == 15
        assert result.after is not None
        assert result.after.warm.transaction_count == 15

    def test_reorganization_recorded(self):
        result = setup_experiment().run()
        assert result.reorganization is not None
        assert result.reorganization.objects_moved > 0
        assert result.clustering_overhead_ios > 0

    def test_clustering_reduces_ios_on_stereotyped_workload(self):
        result = setup_experiment().run()
        assert result.gain_factor > 1.0
        assert result.ios_after < result.ios_before

    def test_paired_phases_use_same_roots(self):
        result = setup_experiment().run()
        assert result.after is not None
        # Same seed => identical visit counts in both phases.
        assert result.before.warm.totals.visits == \
            result.after.warm.totals.visits

    def test_no_clustering_policy_returns_no_after_phase(self):
        result = setup_experiment(policy=NoClustering()).run()
        assert result.after is None
        assert result.reorganization is None
        assert result.gain_factor == 1.0
        assert result.ios_after == result.ios_before

    def test_invalid_policy_placement_rejected(self):
        class BrokenPolicy(NoClustering):
            def propose_placement(self, current_order, context):
                from repro.clustering.base import Placement
                return Placement(order=[1, 2, 3])  # Not a permutation.

        experiment = setup_experiment(policy=BrokenPolicy())
        with pytest.raises(WorkloadError):
            experiment.run()


class TestResultAccessors:
    def test_table_row(self):
        result = setup_experiment().run()
        label, before, after, gain = result.table_row()
        assert label == "test"
        assert gain == pytest.approx(before / after)

    def test_describe_mentions_gain(self):
        result = setup_experiment().run()
        text = result.describe()
        assert "gain" in text
        assert "test" in text

    def test_policy_name_recorded(self):
        result = setup_experiment().run()
        assert result.policy_name == "dstc"

"""Metrics aggregation tests."""

from __future__ import annotations

import pytest

from repro.core.metrics import KindStats, MetricsCollector, PhaseReport
from repro.core.transactions import TransactionKind, TransactionResult
from repro.store.buffer import BufferStats
from repro.store.disk import DiskStats
from repro.store.storage import StoreSnapshot
from repro.store.swizzle import SwizzleStats


def result(kind=TransactionKind.SET, visits=10, distinct=8, truncated=False):
    return TransactionResult(kind=kind, root=1, visits=visits,
                             distinct_objects=distinct, max_depth_reached=2,
                             reverse=False, ref_type=None, truncated=truncated)


def delta(reads=4, writes=1, hits=6, misses=4, accesses=10, sim=0.05):
    return StoreSnapshot(disk=DiskStats(reads=reads, writes=writes),
                         buffer=BufferStats(hits=hits, misses=misses),
                         swizzle=SwizzleStats(),
                         object_accesses=accesses,
                         sim_time=sim)


class TestKindStats:
    def test_add_accumulates(self):
        stats = KindStats()
        stats.add(result(), delta(), 0.01)
        stats.add(result(visits=20), delta(reads=6), 0.02)
        assert stats.count == 2
        assert stats.visits == 30
        assert stats.io_reads == 10
        assert stats.wall_time == pytest.approx(0.03)

    def test_per_transaction_means(self):
        stats = KindStats()
        stats.add(result(visits=10), delta(reads=4, writes=2), 0.0)
        stats.add(result(visits=20), delta(reads=8, writes=0), 0.0)
        assert stats.reads_per_transaction == 6.0
        assert stats.ios_per_transaction == 7.0
        assert stats.visits_per_transaction == 15.0

    def test_means_zero_when_empty(self):
        stats = KindStats()
        assert stats.ios_per_transaction == 0.0
        assert stats.visits_per_transaction == 0.0
        assert stats.hit_ratio == 0.0

    def test_hit_ratio(self):
        stats = KindStats()
        stats.add(result(), delta(hits=9, misses=1), 0.0)
        assert stats.hit_ratio == pytest.approx(0.9)

    def test_truncation_counted(self):
        stats = KindStats()
        stats.add(result(truncated=True), delta(), 0.0)
        stats.add(result(), delta(), 0.0)
        assert stats.truncated == 1

    def test_merge(self):
        a, b = KindStats(), KindStats()
        a.add(result(), delta(), 0.01)
        b.add(result(visits=30), delta(reads=10), 0.02)
        a.merge(b)
        assert a.count == 2
        assert a.visits == 40
        assert a.io_reads == 14


class TestPhaseReport:
    def build(self):
        collector = MetricsCollector("warm")
        collector.record(result(TransactionKind.SET, visits=10),
                         delta(reads=5), 0.0)
        collector.record(result(TransactionKind.SIMPLE, visits=4),
                         delta(reads=3), 0.0)
        collector.record(result(TransactionKind.SET, visits=20),
                         delta(reads=7), 0.0)
        return collector.report

    def test_per_kind_split(self):
        report = self.build()
        assert report.kind(TransactionKind.SET).count == 2
        assert report.kind(TransactionKind.SIMPLE).count == 1
        assert report.kind(TransactionKind.HIERARCHY).count == 0

    def test_totals(self):
        report = self.build()
        assert report.transaction_count == 3
        assert report.totals.visits == 34
        assert report.totals.io_reads == 15

    def test_rows_include_all_row(self):
        rows = self.build().rows()
        assert rows[-1][0] == "all"
        assert rows[-1][1] == 3
        kinds = [row[0] for row in rows]
        assert "set" in kinds and "simple" in kinds
        assert "hierarchy" not in kinds  # Never ran.

    def test_merge_reports(self):
        a, b = self.build(), self.build()
        a.merge(b)
        assert a.transaction_count == 6
        assert a.kind(TransactionKind.SET).count == 4

    def test_merge_into_empty(self):
        empty = PhaseReport(name="cold")
        empty.merge(self.build())
        assert empty.transaction_count == 3

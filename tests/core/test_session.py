"""The unified execution kernel: construction, access, batching, metrics."""

from __future__ import annotations

import pytest

from repro.backends import MemoryBackend, SQLiteBackend, SimulatedBackend
from repro.core.session import Session
from repro.core.transactions import AccessContext
from repro.errors import BackendError, WorkloadError
from repro.store.storage import StoreConfig


def loaded_sqlite(database):
    backend = SQLiteBackend(page_size=512, cache_pages=16)
    records = database.to_records()
    backend.bulk_load(records.values(), order=sorted(records))
    backend.reset_stats()
    return backend


class TestConstruction:
    def test_access_context_is_the_session(self):
        # The historical name must keep working.
        assert AccessContext is Session

    def test_wraps_classic_store(self, loaded_store):
        session = Session(loaded_store)
        assert session.object_count == loaded_store.object_count
        assert not session.batch_reads

    def test_for_database_with_backend_name(self, small_database):
        session = Session.for_database(small_database, "memory")
        assert session.backend_name == "memory"
        assert session.object_count == small_database.num_objects
        # Counters were reset after the bulk load.
        assert session.snapshot().object_accesses == 0
        session.close()

    def test_for_database_default_is_simulated(self, small_database):
        session = Session.for_database(
            small_database, store_config=StoreConfig(page_size=512,
                                                     buffer_pages=8))
        assert session.backend_name == "simulated"
        session.close()

    def test_for_database_unknown_name(self, small_database):
        with pytest.raises(BackendError):
            Session.for_database(small_database, "no-such-engine")

    def test_require_loaded(self):
        session = Session(MemoryBackend())
        with pytest.raises(WorkloadError):
            session.require_loaded()


class TestBatching:
    def test_auto_detects_sqlite(self, small_database):
        session = Session(loaded_sqlite(small_database))
        assert session.batch_reads
        assert session.batch_writes
        session.close()

    def test_auto_detects_non_batched(self, small_database):
        session = Session.for_database(small_database, "memory")
        assert not session.batch_reads
        session.close()

    def test_forced_off(self, small_database):
        session = Session(loaded_sqlite(small_database), batch=False)
        assert not session.batch_reads
        session.close()

    def test_prefetch_serves_access_without_round_trips(self, small_database):
        backend = loaded_sqlite(small_database)
        session = Session(backend)
        oids = sorted(small_database.objects)[:10]
        fetched = session.prefetch(oids)
        assert fetched == len(oids)
        trips = backend.sql_round_trips
        for oid in oids:
            session.access(oid)
        assert backend.sql_round_trips == trips  # All served from cache.
        session.close()

    def test_prefetch_skips_cached(self, small_database):
        session = Session(loaded_sqlite(small_database))
        oids = sorted(small_database.objects)[:5]
        assert session.prefetch(oids) == 5
        assert session.prefetch(oids) == 0
        session.close()

    def test_prefetch_noop_without_batching(self, loaded_store,
                                            small_database):
        session = Session(loaded_store)
        assert session.prefetch(sorted(small_database.objects)[:5]) == 0

    def test_prefetched_record_consumed_by_first_serve(self, small_database):
        # Repeat visits are charged to the engine, exactly as without
        # batching (OO1 heritage: duplicate visits count).
        backend = loaded_sqlite(small_database)
        session = Session(backend)
        oid = sorted(small_database.objects)[0]
        session.prefetch([oid])
        trips = backend.sql_round_trips
        session.access(oid)
        assert backend.sql_round_trips == trips       # Served from cache.
        session.access(oid)
        assert backend.sql_round_trips == trips + 1   # Cache was consumed.
        session.close()

    def test_scan_cache_stays_bounded(self, small_database):
        from repro.core.generic_ops import GenericOperationsRunner
        backend = loaded_sqlite(small_database)
        session = Session(backend)
        runner = GenericOperationsRunner(small_database, session)
        runner.sequential_scan()
        assert not session._prefetched  # Every chunk record was consumed.
        session.close()

    def test_end_transaction_clears_cache(self, small_database):
        backend = loaded_sqlite(small_database)
        session = Session(backend)
        oid = sorted(small_database.objects)[0]
        session.prefetch([oid])
        session.end_transaction()
        trips = backend.sql_round_trips
        session.access(oid)
        assert backend.sql_round_trips == trips + 1  # Cache was dropped.
        session.close()

    def test_write_invalidates_prefetched_record(self, small_database):
        session = Session(loaded_sqlite(small_database))
        records = small_database.to_records()
        oid = sorted(records)[0]
        session.prefetch([oid])
        changed = records[oid].with_back_refs(((999, 0),))
        session.write_record(changed)
        assert session.access(oid) == changed
        session.close()


class TestMetricsCharging:
    def test_measure_span(self, loaded_store, small_database):
        session = Session(loaded_store)
        oids = sorted(small_database.objects)[:5]
        with session.measure() as span:
            for oid in oids:
                session.access(oid)
        assert span.delta is not None
        assert span.delta.object_accesses == 5
        assert span.wall > 0.0

    def test_charge_think_time(self, loaded_store):
        session = Session(loaded_store)
        before = loaded_store.clock.now
        session.charge_think_time(0.5)
        assert loaded_store.clock.now == pytest.approx(before + 0.5)

    def test_zero_think_time_is_free(self, loaded_store):
        session = Session(loaded_store)
        before = loaded_store.clock.now
        session.charge_think_time(0.0)
        assert loaded_store.clock.now == before


class TestLifecycle:
    def test_drop_caches_reports_honestly(self, small_database):
        config = StoreConfig(page_size=512, buffer_pages=8)
        records = small_database.to_records()

        for factory, expected in (
                (lambda: SimulatedBackend(store_config=config), True),
                (MemoryBackend, False),
                (lambda: SQLiteBackend(page_size=512, cache_pages=8), True)):
            backend = factory()
            backend.bulk_load(records.values(), order=sorted(records))
            session = Session(backend)
            assert session.drop_caches() is expected
            # The engine still answers reads after a cache drop.
            oid = sorted(records)[0]
            assert session.access(oid) == records[oid]
            session.close()

    def test_drop_caches_on_classic_store(self, loaded_store):
        assert Session(loaded_store).drop_caches() is True

    def test_flush_and_reset(self, loaded_store, small_database):
        session = Session(loaded_store)
        session.access(sorted(small_database.objects)[0])
        session.flush()
        session.reset_stats()
        assert session.snapshot().object_accesses == 0


class TestPolicyOwnership:
    """A Session owns its policy; conflicting explicit policies error."""

    def test_workload_runner_rejects_conflicting_policy(self, small_database,
                                                        loaded_store):
        from repro.clustering.dstc import DSTCPolicy
        from repro.core.parameters import WorkloadParameters
        from repro.core.workload import WorkloadRunner
        session = Session(loaded_store)
        params = WorkloadParameters(cold_n=0, hot_n=1)
        with pytest.raises(WorkloadError, match="conflicting"):
            WorkloadRunner(small_database, session, params,
                           policy=DSTCPolicy())

    def test_generic_ops_rejects_conflicting_policy(self, small_database,
                                                    loaded_store):
        from repro.clustering.dstc import DSTCPolicy
        from repro.core.generic_ops import GenericOperationsRunner
        session = Session(loaded_store)
        with pytest.raises(WorkloadError, match="conflicting"):
            GenericOperationsRunner(small_database, session,
                                    policy=DSTCPolicy())

    def test_same_policy_instance_accepted(self, small_database,
                                           loaded_store):
        from repro.core.parameters import WorkloadParameters
        from repro.core.workload import WorkloadRunner
        from repro.clustering.base import NoClustering
        policy = NoClustering()
        session = Session(loaded_store, policy=policy)
        params = WorkloadParameters(cold_n=0, hot_n=1)
        runner = WorkloadRunner(small_database, session, params,
                                policy=policy)
        assert runner.policy is policy

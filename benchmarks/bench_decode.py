"""Decode-free fast-path benchmark: decoded vs lazy vs structure-only.

One generated database in a SQLite engine with the link index on, and
the same set of BFS frontier expansions walked three ways:

* **decoded** — every frontier fetched with :meth:`read_many` and fully
  decoded (refs *and* back_refs materialized), the pre-fast-path cost;
* **lazy** — the same fetches with ``lazy=True``: zero-copy records
  whose headers parse eagerly but whose reference vectors unpack only
  when the walk touches ``.refs`` (back_refs never);
* **structure** — no record fetch at all:
  :meth:`traverse_refs_many` answers each frontier from the ``refs``
  link index alone.

All three modes expand identical frontiers from identical roots (the
equivalence is asserted), so the wall-clock ratio is a pure decode-cost
measurement.  The run lands as one schema-versioned ``decode_fastpath``
document; ``BENCH_decode_baseline.json`` is the committed trajectory
the CI ``decode-smoke`` leg gates with ``ocb bench --compare``.

Runs as a plain pytest module (no pytest-benchmark required)::

    PYTHONPATH=src python -m pytest benchmarks/bench_decode.py -q

Set ``BENCH_DECODE_OUT=/path/to.json`` to persist the document (the CI
leg does, to feed the compare gate).  Wall-clock depends on the host —
assertions pin structure (identical visit sets, decode counters, the
structure path beating the decoded one), never a millisecond value.
"""

from __future__ import annotations

import json
import os
import time

import pytest

try:
    from conftest import term_print
except ImportError:
    def term_print(*args, **kwargs):
        print(*args, **kwargs)

from repro.backends.sqlite import SQLiteBackend
from repro.core.generation import generate_database
from repro.core.presets import default_database_parameters

#: Scaled-down database; the seed is the paper's conference date.
DB_SCALE = 0.1
SEED = 19980323  # EDBT '98.
WALKS = 50
DEPTH = 5
MAX_VISITS = 512


def _percentile(sorted_seconds, fraction):
    index = min(len(sorted_seconds) - 1,
                max(0, int(fraction * len(sorted_seconds))))
    return sorted_seconds[index] * 1e3


def _roots(database):
    """WALKS deterministic roots, spread across the oid space."""
    oids = sorted(database.objects)
    step = max(1, len(oids) // WALKS)
    return [oids[(i * step) % len(oids)] for i in range(WALKS)]


def _expand_decoded(backend, frontier, lazy):
    records = backend.read_many(frontier, lazy=lazy)
    targets = []
    for oid in frontier:
        targets.extend(ref for ref in records[oid].refs if ref is not None)
    return targets


def _expand_structure(backend, frontier):
    answers = backend.traverse_refs_many(frontier)
    targets = []
    for oid in frontier:
        targets.extend(answers[oid])
    return targets


def _walk(backend, root, mode):
    """BFS to DEPTH (capped at MAX_VISITS); returns the visited set."""
    visited = {root}
    frontier = [root]
    for _ in range(DEPTH):
        if not frontier or len(visited) >= MAX_VISITS:
            break
        if mode == "structure":
            targets = _expand_structure(backend, frontier)
        else:
            targets = _expand_decoded(backend, frontier,
                                      lazy=(mode == "lazy"))
        frontier = []
        for target in targets:
            if len(visited) >= MAX_VISITS:
                break
            if target not in visited:
                visited.add(target)
                frontier.append(target)
    return visited


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    database, _ = generate_database(
        default_database_parameters(scale=DB_SCALE, seed=SEED))
    path = str(tmp_path_factory.mktemp("decode") / "bench.db")
    backend = SQLiteBackend(path=path, ref_index=True)
    database.load_into(backend)
    roots = _roots(database)
    # One untimed warmup so every mode sees the same hot page cache.
    for root in roots:
        _walk(backend, root, "decoded")
    return backend, roots


@pytest.fixture(scope="module")
def frontiers(env):
    """Every frontier the WALKS walks expand, precomputed once.

    All three modes expand identical frontiers (the equivalence test
    pins it), so the sequence is mode-independent — and timing only the
    expansion of each precomputed frontier keeps the BFS bookkeeping
    (visited sets, frontier rebuilds, identical client-side work) out
    of the A/B entirely.  What remains per mode is exactly the cost the
    fast paths attack: the engine call plus reference extraction.
    """
    backend, roots = env
    sequences = []
    for root in roots:
        visited = {root}
        frontier = [root]
        for _ in range(DEPTH):
            if not frontier or len(visited) >= MAX_VISITS:
                break
            sequences.append(list(frontier))
            targets = _expand_structure(backend, frontier)
            frontier = []
            for target in targets:
                if len(visited) >= MAX_VISITS:
                    break
                if target not in visited:
                    visited.add(target)
                    frontier.append(target)
    return sequences


@pytest.fixture(scope="module")
def cells(env, frontiers):
    backend, _ = env
    measured = []
    for mode in ("decoded", "lazy", "structure"):
        backend.reset_stats()
        expansion_seconds = []
        targets_total = 0
        started = time.perf_counter()
        for frontier in frontiers:
            expansion_start = time.perf_counter()
            if mode == "structure":
                targets = _expand_structure(backend, frontier)
            else:
                targets = _expand_decoded(backend, frontier,
                                          lazy=(mode == "lazy"))
            expansion_seconds.append(time.perf_counter() - expansion_start)
            targets_total += len(targets)
        elapsed = time.perf_counter() - started
        stats = backend.stats()
        expansion_seconds.sort()
        measured.append({
            "key": f"sqlite/decode_walk/c1/{mode}",
            "backend": "sqlite",
            "scenario": "decode_walk",
            "clients": 1,
            "mode": mode,
            "operations": len(frontiers),
            "write_operations": 0,
            "targets": targets_total,
            "elapsed_seconds": elapsed,
            "throughput": len(frontiers) / elapsed if elapsed > 0 else 0.0,
            "wall_p50_ms": _percentile(expansion_seconds, 0.50),
            "wall_p95_ms": _percentile(expansion_seconds, 0.95),
            "wall_p99_ms": _percentile(expansion_seconds, 0.99),
            "records_decoded": int(stats["records_decoded"]),
            "decodes_avoided": int(stats["decodes_avoided"]),
        })
    return measured


def test_modes_visit_identical_sets(env):
    """The ratio only means something if the walks do the same work."""
    backend, roots = env
    for root in roots[:5]:
        decoded = _walk(backend, root, "decoded")
        assert _walk(backend, root, "lazy") == decoded
        assert _walk(backend, root, "structure") == decoded


def test_decode_counters_split_by_mode(cells):
    by_mode = {cell["mode"]: cell for cell in cells}
    assert by_mode["decoded"]["records_decoded"] > 0
    assert by_mode["decoded"]["decodes_avoided"] == 0
    assert by_mode["lazy"]["records_decoded"] == 0
    assert by_mode["lazy"]["decodes_avoided"] > 0
    # Structure-only never touches a record blob at all.
    assert by_mode["structure"]["records_decoded"] == 0
    assert by_mode["structure"]["decodes_avoided"] > 0
    assert by_mode["decoded"]["targets"] == by_mode["lazy"]["targets"] \
        == by_mode["structure"]["targets"]


def test_structure_walk_beats_the_decoded_walk(cells):
    """The structural assertion (the committed baseline pins >= 2x; a
    loaded CI host still has to show the direction)."""
    by_mode = {cell["mode"]: cell for cell in cells}
    ratio = (by_mode["structure"]["throughput"]
             / by_mode["decoded"]["throughput"])
    term_print(f"structure/decoded throughput ratio: {ratio:.2f}x")
    assert ratio > 1.0


def test_document_round_trips_and_persists(cells):
    from repro.obs import results
    document = results.build_document(
        kind="decode_fastpath",
        cells=cells,
        config={"db_scale": DB_SCALE, "seed": SEED, "walks": WALKS,
                "depth": DEPTH, "max_visits": MAX_VISITS,
                "backend": "sqlite", "ref_index": True},
        name="bench_decode")
    term_print(json.dumps(document, indent=2))
    assert results.validate_document(document) is document
    out = os.environ.get("BENCH_DECODE_OUT")
    if out:
        written = results.write_document(document, path=out)
        term_print(f"bench_decode: wrote {written}")

"""Comparator benchmark operations (the paper's Related Work, Section 2).

Times the characteristic operations of OO1, HyperModel and OO7 on the
shared store substrate.  Shape contracts come from each benchmark's own
literature: OO1 lookups are cheap and traversals dominated by faults;
HyperModel warm runs beat cold runs (its caching-effect protocol); OO7's
T1 touches far more objects than T6.
"""

from __future__ import annotations

import pytest

from repro.comparators.hypermodel import (
    HyperModelBenchmark,
    HyperModelParameters,
    build_hypermodel_store,
)
from repro.comparators.oo1 import OO1Benchmark, OO1Parameters, build_oo1_store
from repro.comparators.oo7 import OO7Benchmark, OO7Parameters, build_oo7_store
from repro.store.storage import StoreConfig


@pytest.fixture(scope="module")
def oo1():
    database, store = build_oo1_store(
        OO1Parameters(num_parts=4000, traversal_depth=4,
                      lookups_per_run=200, inserts_per_run=20),
        StoreConfig(buffer_pages=96))
    return OO1Benchmark(database, store)


@pytest.fixture(scope="module")
def hypermodel():
    database, store = build_hypermodel_store(
        HyperModelParameters(levels=5, fan_out=5, inputs=25),
        StoreConfig(buffer_pages=48))
    return HyperModelBenchmark(database, store)


@pytest.fixture(scope="module")
def oo7():
    database, store = build_oo7_store(
        OO7Parameters(num_modules=1, assembly_levels=4, assembly_fan_out=3,
                      comp_per_module=30, comp_per_assm=3,
                      atomic_per_comp=10, connections_per_atomic=3),
        StoreConfig(buffer_pages=96))
    return OO7Benchmark(database, store)


class TestOO1:
    def test_lookup(self, benchmark, oo1):
        run = benchmark.pedantic(oo1.lookup_run, rounds=3, iterations=1)
        assert run.objects_accessed == 200

    def test_traversal(self, benchmark, oo1):
        run = benchmark.pedantic(oo1.traversal_run, rounds=3, iterations=1)
        assert run.objects_accessed >= 1

    def test_reverse_traversal(self, benchmark, oo1):
        run = benchmark.pedantic(lambda: oo1.traversal_run(reverse=True),
                                 rounds=3, iterations=1)
        assert run.operation == "reverse-traversal"

    def test_insert(self, benchmark, oo1):
        run = benchmark.pedantic(oo1.insert_run, rounds=2, iterations=1)
        assert run.io_writes > 0


class TestHyperModel:
    @pytest.mark.parametrize("operation", ["nameLookup", "groupLookup",
                                           "refLookup", "closureTraversal",
                                           "rangeLookup", "editing"])
    def test_operation(self, benchmark, hypermodel, operation):
        report = benchmark.pedantic(
            lambda: hypermodel.run_operation(operation),
            rounds=1, iterations=1)
        benchmark.extra_info["operation"] = operation
        benchmark.extra_info["cold_reads"] = report.cold_reads
        benchmark.extra_info["warm_reads"] = report.warm_reads
        # The benchmark's caching-effect protocol: warm never reads more.
        assert report.warm_reads <= report.cold_reads

    def test_seq_scan(self, benchmark, hypermodel):
        report = benchmark.pedantic(
            lambda: hypermodel.run_operation("seqScan"),
            rounds=1, iterations=1)
        assert report.inputs == 1


class TestOO7:
    def test_t1_full_traversal(self, benchmark, oo7):
        run = benchmark.pedantic(oo7.t1_traversal, rounds=2, iterations=1)
        benchmark.extra_info["objects"] = run.objects_accessed
        assert run.objects_accessed > 100

    def test_t6_root_traversal(self, benchmark, oo7):
        run = benchmark.pedantic(oo7.t6_traversal, rounds=2, iterations=1)
        t1 = oo7.t1_traversal()
        assert run.objects_accessed < t1.objects_accessed

    def test_q1_lookup(self, benchmark, oo7):
        run = benchmark.pedantic(lambda: oo7.q1_lookup(10),
                                 rounds=3, iterations=1)
        assert run.objects_accessed == 10

    def test_q3_range(self, benchmark, oo7):
        run = benchmark.pedantic(oo7.q3_range, rounds=2, iterations=1)
        q2 = oo7.q2_range()
        assert q2.objects_accessed <= run.objects_accessed

    def test_q7_scan(self, benchmark, oo7):
        run = benchmark.pedantic(oo7.q7_scan, rounds=2, iterations=1)
        assert run.objects_accessed == len(oo7.database.atomic_oids)

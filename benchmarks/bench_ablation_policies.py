"""Ablation — clustering-policy shoot-out (DESIGN.md §6.2).

The paper's stated future work is "the benchmarking of several different
clustering techniques for the sake of performance comparison".  This
bench stages the comparison on the workload where the policies genuinely
differ: a database whose classes carry *three* reference types while the
workload's hierarchy traversals follow only *one* of them — i.e. usage
diverges from structure.

* ``none``                — keep the load order (baseline, gain 1),
* ``static-by_class``     — type-level placement; blind to both the graph
  and the traffic, lands at the baseline,
* ``static-depth_first``  — Tsangaris/Naughton structural DFS; clusters
  *all three* reference types, so only a third of each fetched page is
  useful — a modest win,
* ``dstc`` / ``dro``      — usage-aware policies cluster exactly the
  links the workload crosses and win by an order of magnitude.

Shape contract: gain(dstc) ≫ gain(static-depth_first) > gain(none) = 1,
and DRO (the cheaper bookkeeping) also lands in the usage-aware regime.
"""

from __future__ import annotations

import pytest

from conftest import term_print
from repro.clustering.base import NoClustering
from repro.clustering.dro import DROParameters, DROPolicy
from repro.clustering.dstc import DSTCParameters, DSTCPolicy
from repro.clustering.placements import StaticPolicy
from repro.core.experiment import ClusteringExperiment
from repro.core.generation import generate_database
from repro.core.parameters import (
    DatabaseParameters,
    ReferenceTypeSpec,
    WorkloadParameters,
)
from repro.store.storage import StoreConfig

NUM_OBJECTS = 3000
TRANSACTIONS = 30

_RESULTS = {}


def build_database():
    """One class, three association types; refs drawn uniformly."""
    types = tuple(ReferenceTypeSpec(i, f"assoc-{i}") for i in (1, 2, 3))
    params = DatabaseParameters(
        num_classes=1, max_nref=3, base_size=40, num_objects=NUM_OBJECTS,
        num_ref_types=3, reference_types=types,
        fixed_tref=((1, 2, 3),), fixed_cref=((1, 1, 1),), seed=97)
    database, _ = generate_database(params)
    return database


FACTORIES = {
    "none": lambda db: NoClustering(),
    "static-by_class": lambda db: StaticPolicy(db.to_records(),
                                               strategy="by_class"),
    "static-depth_first": lambda db: StaticPolicy(db.to_records(),
                                                  strategy="depth_first"),
    "dstc": lambda db: DSTCPolicy(DSTCParameters(
        observation_period=TRANSACTIONS + 5, selection_threshold=1,
        consolidation_weight=1.0, unit_weight_threshold=1.0)),
    "dro": lambda db: DROPolicy(DROParameters(min_heat=1, min_transition=1)),
}


def run_policy(name: str):
    database = build_database()
    # The database spans ~90 pages; 24 buffer pages keep the cache in the
    # paper-like "far smaller than the database" regime.
    store = StoreConfig(buffer_pages=24).build()
    records = database.to_records()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    workload = WorkloadParameters(
        p_set=0.0, p_simple=0.0, p_hierarchy=1.0, p_stochastic=0.0,
        hierarchy_depth=12, hierarchy_ref_type=1,
        cold_n=5, hot_n=TRANSACTIONS, max_visits=500)
    policy = FACTORIES[name](database)
    return ClusteringExperiment(database, store, policy, workload,
                                label=name).run()


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_policy(benchmark, name):
    """Before/after I/Os for one policy on the shared setup."""
    result = benchmark.pedantic(lambda: run_policy(name),
                                rounds=1, iterations=1)
    _RESULTS[name] = result
    benchmark.extra_info["policy"] = name
    benchmark.extra_info["ios_before"] = round(result.ios_before, 2)
    benchmark.extra_info["ios_after"] = round(result.ios_after, 2)
    benchmark.extra_info["gain"] = round(result.gain_factor, 2)


def test_policy_shootout_shape(benchmark):
    """Usage-aware ≫ structure-aware > oblivious."""
    def collect():
        for name in FACTORIES:
            if name not in _RESULTS:
                _RESULTS[name] = run_policy(name)
        return {name: r.gain_factor for name, r in _RESULTS.items()}

    gains = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert gains["none"] == pytest.approx(1.0)
    assert gains["static-depth_first"] > 1.2
    assert gains["dstc"] > 5.0
    assert gains["dro"] > 5.0
    assert gains["dstc"] > gains["static-depth_first"]
    assert gains["dro"] > gains["static-depth_first"]
    term_print()
    term_print("policy gains:", {k: round(v, 2) for k, v in sorted(gains.items())})

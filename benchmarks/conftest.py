"""Shared helpers for the benchmark harness.

Every bench prints a paper-vs-measured comparison through
``attach_paper_comparison`` so `pytest benchmarks/ --benchmark-only`
regenerates the paper's tables/figures next to the published numbers
(recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from typing import Mapping

import pytest


def pytest_collection_modifyitems(config, items):
    """Degrade cleanly when the pytest-benchmark plugin is unavailable.

    Without the plugin (not installed, or disabled with
    ``-p no:benchmark``) the ``benchmark`` fixture does not exist and
    every bench using it errors at setup.  Skip those benches instead,
    so ``pytest benchmarks/`` still runs the plugin-free ones (e.g.
    ``bench_backends.py``).
    """
    if config.pluginmanager.hasplugin("benchmark"):
        return
    skip = pytest.mark.skip(reason="pytest-benchmark plugin not available")
    for item in items:
        if "benchmark" in getattr(item, "fixturenames", ()):
            item.add_marker(skip)


def attach_paper_comparison(benchmark, measured: Mapping[str, float],
                            paper: Mapping[str, float]) -> None:
    """Record measured-vs-paper pairs in the benchmark's extra info."""
    for key, value in measured.items():
        benchmark.extra_info[f"measured_{key}"] = round(float(value), 3)
    for key, value in paper.items():
        benchmark.extra_info[f"paper_{key}"] = value


#: Rendered paper tables / series collected during the run; flushed into
#: the terminal summary so they land in ``bench_output.txt`` despite
#: pytest's output capture.
_REPORT_LINES = []


def term_print(*args, **kwargs) -> None:
    """Queue output for the end-of-run report (and echo it normally).

    pytest captures stdout at the file-descriptor level, so plain prints
    from passing tests never reach ``pytest benchmarks/ | tee ...``.  The
    queued lines are emitted by :func:`pytest_terminal_summary` below.
    """
    text = " ".join(str(a) for a in args)
    _REPORT_LINES.append(text)
    print(*args, **kwargs)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Emit the reproduced paper tables after the benchmark summary."""
    if not _REPORT_LINES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "reproduced paper tables & figures")
    for line in _REPORT_LINES:
        for sub in line.splitlines() or [""]:
            terminalreporter.write_line(sub)

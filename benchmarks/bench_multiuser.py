"""Multi-user scaling bench (the paper's CLIENTN axis).

OCB is "to be multi-user"; this bench runs the queueing simulation with
1, 2 and 4 clients on the same database and reports throughput and mean
response time.

Shape contracts: response time grows with the number of clients
(contention on the shared disk), while aggregate throughput does not
degrade below the single-client level.
"""

from __future__ import annotations

import pytest

from conftest import term_print
from repro.core.generation import generate_database
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.multiuser.des import SimulatedMultiUser
from repro.store.storage import StoreConfig

CLIENT_COUNTS = (1, 2, 4)

_REPORTS = {}


def run_clients(clients: int):
    db_params = DatabaseParameters(num_classes=10, max_nref=4, base_size=40,
                                   num_objects=1500, seed=61)
    database, _ = generate_database(db_params)
    store = StoreConfig(buffer_pages=64).build()
    records = database.to_records()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    workload = WorkloadParameters(
        clients=clients, cold_n=0, hot_n=6, set_depth=2, simple_depth=2,
        hierarchy_depth=3, stochastic_depth=10, max_visits=300)
    return SimulatedMultiUser(database, store, workload,
                              transactions_per_client=6).run()


@pytest.mark.parametrize("clients", CLIENT_COUNTS)
def test_clients(benchmark, clients):
    """Throughput / response time at one client count."""
    report = benchmark.pedantic(lambda: run_clients(clients),
                                rounds=1, iterations=1)
    _REPORTS[clients] = report
    benchmark.extra_info["clients"] = clients
    benchmark.extra_info["throughput_txn_per_s"] = round(report.throughput, 3)
    benchmark.extra_info["mean_response_s"] = round(report.mean_response, 4)
    benchmark.extra_info["disk_utilisation"] = round(
        report.disk_utilisation, 3)


def test_multiuser_shape(benchmark):
    """Contention raises response times; throughput holds up."""
    def collect():
        for clients in CLIENT_COUNTS:
            if clients not in _REPORTS:
                _REPORTS[clients] = run_clients(clients)
        return dict(_REPORTS)

    reports = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert reports[4].mean_response >= reports[1].mean_response
    assert reports[4].throughput >= reports[1].throughput * 0.8
    term_print()
    for clients in CLIENT_COUNTS:
        report = reports[clients]
        term_print(f"  {clients} client(s): {report.throughput:.2f} txn/s, "
              f"mean response {report.mean_response * 1000:.1f} ms, "
              f"disk {report.disk_utilisation * 100:.0f}% busy")

"""Table 5 — Texas/DSTC measured with OCB's *default* mixed workload.

Paper (full scale):

    Benchmark   I/Os before   I/Os after   Gain
    OCB              31           12        2.58

The paper's headline: with a realistic transaction mix (set-oriented,
simple, hierarchy and stochastic traversals at 25 % each), DSTC's access
patterns stop being stereotyped and the gain factor collapses from
13.2/8.71 to 2.58 — still a clear win, but a much more honest one.

Shape contract at the calibrated scale:

* the gain stays above 1 (DSTC still wins), and
* it is markedly smaller than either Table 4 gain measured on the same
  substrate (`bench_table4_dstc_club.py`).
"""

from __future__ import annotations

import pytest

from conftest import attach_paper_comparison, term_print
from repro.experiments import (
    PAPER_TABLE4,
    PAPER_TABLE5,
    render_table5,
    run_table4,
    run_table5,
)


def test_table5_default_workload(benchmark):
    """The full before/after protocol under the Table 1+2 defaults."""
    row = benchmark.pedantic(
        lambda: run_table5(num_objects=8000, transactions=60,
                           buffer_pages=340),
        rounds=1, iterations=1)

    assert row.gain > 1.0
    assert row.ios_after < row.ios_before
    # The mixed workload's gain must be far below Table 4's stereotyped
    # gains — compare against the calibrated Table 4 run at the same
    # buffer/database ratio (measured in its own bench; the paper values
    # give the reference ratio 13.2 / 2.58 ≈ 5).
    paper = PAPER_TABLE5["OCB"]
    attach_paper_comparison(
        benchmark,
        {"ios_before": row.ios_before, "ios_after": row.ios_after,
         "gain": row.gain},
        {"ios_before": paper[0], "ios_after": paper[1], "gain": paper[2]})
    benchmark.extra_info["paper_table4_gains"] = [
        PAPER_TABLE4["DSTC-CluB"][2], PAPER_TABLE4["OCB"][2]]
    term_print()
    term_print(render_table5(row))


def test_table5_gain_below_table4(benchmark):
    """The cross-table relationship (the paper's central claim)."""
    def both():
        table4 = run_table4(num_objects=8000, transactions=15,
                            buffer_pages=192)
        table5 = run_table5(num_objects=4000, transactions=40,
                            buffer_pages=170)
        return table4, table5

    table4, table5 = benchmark.pedantic(both, rounds=1, iterations=1)
    best_table4_gain = max(row.gain for row in table4)
    assert table5.gain > 1.0
    assert table5.gain < best_table4_gain
    benchmark.extra_info["table4_best_gain"] = round(best_table4_gain, 2)
    benchmark.extra_info["table5_gain"] = round(table5.gain, 2)

"""Open-loop load benchmark: latency vs offered rate with DES validation.

The observability companion to ``bench_scenarios.py`` — one generated
database, the ``mixed_oltp`` scenario on the memory engine, swept
across three offered arrival rates by the open-loop driver
(:mod:`repro.core.loadgen`).  Each rate reports achieved throughput,
the response/service latency split from the coordinated-omission-
correct collector, the late-start backlog, and the DES-predicted wait
next to the measured one; the sweep lands as one schema-versioned
``load_sweep`` document (the unified :mod:`repro.obs.results` shape,
regression-gated against ``BENCH_loadtest_baseline.json`` by the
CI-facing ``ocb loadtest --compare`` path).

Runs as a plain pytest module (no pytest-benchmark required)::

    PYTHONPATH=src python -m pytest benchmarks/bench_loadtest.py -q

Note: wall-clock latency depends on the host — assertions pin the
*structure* (every rate measured, predictions present, percentiles
ordered), never a specific millisecond value.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

try:
    from conftest import term_print
except ImportError:
    def term_print(*args, **kwargs):
        print(*args, **kwargs)

from repro.core.generation import generate_database
from repro.core.loadgen import run_load_sweep
from repro.core.presets import default_database_parameters, scenario_preset
from repro.reporting import render_load_report

#: Scaled-down database; fixed arrivals so the realized rate is exact.
DB_SCALE = 0.1
SEED = 19980323  # EDBT '98.
RATES = (100.0, 400.0, 1600.0)
OPERATIONS = 60
ARRIVAL_MODE = "fixed"


@pytest.fixture(scope="module")
def sweep():
    database, _ = generate_database(
        default_database_parameters(scale=DB_SCALE, seed=SEED))
    scenario = replace(scenario_preset("mixed_oltp"), backend="memory",
                       seed=SEED)
    return run_load_sweep(database, scenario, rates=list(RATES),
                          operations=OPERATIONS, mode=ARRIVAL_MODE,
                          seed=SEED)


def test_sweep_table_and_json(sweep):
    from repro.obs import results
    document = results.build_document(
        kind="load_sweep",
        cells=sweep["cells"],
        config={"db_scale": DB_SCALE, "seed": SEED,
                "rates": list(RATES), "operations": OPERATIONS,
                "arrival_mode": ARRIVAL_MODE, "scenario": "mixed_oltp",
                "knee": sweep["knee"]},
        name="bench_loadtest")
    term_print(render_load_report(document))
    term_print(json.dumps(document, indent=2))
    assert results.validate_document(document) is document


def test_every_rate_was_measured(sweep):
    cells = sweep["cells"]
    assert [cell["offered_rate"] for cell in cells] == list(RATES)
    for cell in cells:
        assert cell["operations"] == OPERATIONS
        assert cell["throughput"] > 0.0
        assert cell["elapsed_seconds"] > 0.0


def test_percentiles_are_ordered_within_every_cell(sweep):
    for cell in sweep["cells"]:
        assert cell["response_p50_ms"] <= cell["response_p95_ms"] \
            <= cell["response_p99_ms"] <= cell["response_p999_ms"]
        assert cell["service_p50_ms"] <= cell["service_p95_ms"]
        # Response includes queueing; it can never undercut service.
        assert cell["response_p95_ms"] >= cell["service_p95_ms"] * 0.99


def test_des_prediction_lands_in_every_cell(sweep):
    for cell in sweep["cells"]:
        assert cell["predicted_wait_mean_ms"] >= 0.0
        assert cell["predicted_throughput"] > 0.0
        assert 0.0 <= cell["predicted_utilization"] <= 1.0


def test_low_rate_tracks_offered_load(sweep):
    """The memory engine must keep up at 100 op/s: achieved throughput
    within the knee-detector's own divergence band."""
    low = sweep["cells"][0]
    assert low["throughput"] >= low["offered_rate"] * (1.0 - 0.10)
    assert not low["saturated"]

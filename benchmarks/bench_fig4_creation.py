"""Figure 4 — database average creation time vs. size and schema width.

Paper: creation time rises with the number of instances (x axis, 10 to
20 000, log) and with the number of classes (1 / 20 / 50 curves), the
50-class schema being slowest because the inheritance-graph consistency
check dominates.

The bench measures the same grid (the two largest paper sizes are an
opt-in flag away; the shapes are identical at 5 000 objects) and prints
the series table plus log-log chart.
"""

from __future__ import annotations

import pytest

from conftest import term_print
from repro.core.generation import generate_database
from repro.core.parameters import DatabaseParameters
from repro.experiments import PAPER_FIG4_SIZES
from repro.reporting.figures import render_line_chart, render_series_table

SIZES = (10, 100, 1000, 5000)
CLASS_COUNTS = (1, 20, 50)

_RESULTS = {}


@pytest.mark.parametrize("num_classes", CLASS_COUNTS)
@pytest.mark.parametrize("num_objects", SIZES)
def test_fig4_creation_time(benchmark, num_objects, num_classes):
    """One (NO, NC) grid point of Figure 4."""
    params = DatabaseParameters(num_classes=num_classes, max_nref=10,
                                base_size=50, num_objects=num_objects)

    result = benchmark.pedantic(
        lambda: generate_database(params),
        rounds=2, iterations=1, warmup_rounds=0)
    database, report = result
    assert database.num_objects == num_objects

    benchmark.extra_info["num_objects"] = num_objects
    benchmark.extra_info["num_classes"] = num_classes
    benchmark.extra_info["paper_x_axis"] = list(PAPER_FIG4_SIZES)
    _RESULTS[(num_classes, num_objects)] = report.total_seconds


def test_fig4_shape(benchmark):
    """Assert Figure 4's shape on the measured grid and print the figure."""
    def check():
        # Fill any grid points that did not run (e.g. -k filtering).
        for nc in CLASS_COUNTS:
            for no in SIZES:
                if (nc, no) not in _RESULTS:
                    params = DatabaseParameters(num_classes=nc, max_nref=10,
                                                base_size=50, num_objects=no)
                    _, report = generate_database(params)
                    _RESULTS[(nc, no)] = report.total_seconds
        return dict(_RESULTS)

    results = benchmark.pedantic(check, rounds=1, iterations=1)

    # Shape 1: time grows with database size for every schema width.
    for nc in CLASS_COUNTS:
        assert results[(nc, SIZES[-1])] > results[(nc, SIZES[0])]
    # Shape 2: at full size, more classes cost more (consistency check).
    assert results[(50, SIZES[-1])] > results[(1, SIZES[-1])]

    series = {f"{nc} classes": [(float(no), results[(nc, no)])
                                for no in SIZES]
              for nc in CLASS_COUNTS}
    term_print()
    term_print(render_series_table(series, x_header="objects",
                              title="Figure 4 - creation time (seconds)"))
    term_print(render_line_chart(series, log_x=True, log_y=True,
                            title="Figure 4 (log-log)",
                            x_label="objects", y_label="seconds"))

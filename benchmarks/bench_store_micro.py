"""Micro-benchmarks of the Texas-like store substrate.

Not a paper artefact — these keep the substrate honest (the shapes the
macro benches rely on: cache hits are orders of magnitude cheaper than
faults, bulk load scales linearly, reorganization is O(database)).
"""

from __future__ import annotations

import pytest

from repro.rand.lewis_payne import LewisPayne
from repro.store.serializer import StoredObject, decode_object, encode_object
from repro.store.storage import ObjectStore

# When the pytest-benchmark plugin is unavailable, every test here is
# skipped cleanly by conftest.pytest_collection_modifyitems (they all
# use the ``benchmark`` fixture).


def make_records(count, filler=60):
    return [StoredObject(oid=i + 1, cid=1 + i % 5,
                         refs=(i % count + 1, (i * 7) % count + 1),
                         filler=filler)
            for i in range(count)]


def loaded_store(count=2000, buffer_pages=64):
    store = ObjectStore(page_size=4096, buffer_pages=buffer_pages)
    store.bulk_load(make_records(count))
    store.reset_stats()
    return store


def test_encode_decode_roundtrip(benchmark):
    record = StoredObject(oid=123, cid=7, refs=(1, None, 3, 4),
                          back_refs=((9, 0), (10, 1)), filler=100)

    def roundtrip():
        return decode_object(encode_object(record))

    assert benchmark(roundtrip) == record


def test_read_resident_object(benchmark):
    store = loaded_store()
    store.read_object(1)  # Fault it in once.

    benchmark(lambda: store.read_object(1))
    assert store.snapshot().buffer.hit_ratio > 0.99


def test_read_cold_objects(benchmark):
    store = loaded_store(buffer_pages=1)
    rng = LewisPayne(1)
    oids = [rng.randint(1, 2000) for _ in range(64)]

    def sweep():
        for oid in oids:
            store.read_object(oid)

    benchmark(sweep)
    assert store.snapshot().buffer.misses > 0


def test_bulk_load_2000_objects(benchmark):
    records = make_records(2000)

    def load():
        store = ObjectStore(page_size=4096, buffer_pages=64)
        store.bulk_load(records)
        return store

    store = benchmark(load)
    assert store.object_count == 2000


def test_reorganize_2000_objects(benchmark):
    records = make_records(2000)
    order = [r.oid for r in records]
    LewisPayne(3).shuffle(order)

    def reorganize():
        store = ObjectStore(page_size=4096, buffer_pages=64)
        store.bulk_load(records)
        return store.reorganize(order)

    stats = benchmark.pedantic(reorganize, rounds=3, iterations=1)
    assert stats.objects_moved > 0


def test_insert_throughput(benchmark):
    counter = [100_000]

    store = loaded_store()

    def insert():
        counter[0] += 1
        store.insert_object(StoredObject(oid=counter[0], cid=1, filler=60))

    benchmark(insert)
    assert store.object_count > 2000

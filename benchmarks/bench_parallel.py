"""Throughput-scaling benchmark: worker processes on file-backed SQLite.

The process-parallel companion to ``bench_backends.py`` — one generated
database, one seed, executed at 1/2/4/8 worker processes against a
shared WAL SQLite file.  Each point reports aggregate throughput,
merged warm latency tails and the contention counters; the sweep is
emitted both as the ASCII scaling table and as one schema-versioned
``BENCH`` document (kind ``parallel_scaling``, cells =
:class:`~repro.reporting.scaling.ScalingPoint` dicts — the unified
shape of :mod:`repro.obs.results`, see ``docs/bench_schema.md``).

A second sweep measures the sharded engine against that single-WAL
ceiling (kind ``shard_scaling``): the same database and seed run as a
lane-partitioned write-heavy scenario on single-file ``sqlite`` and on
``sharded-sqlite`` with ``shards == workers``, side by side at every
width.  The database is generated with ``MAXNREF = 0`` so every update
is a pure home-lane write — the configuration that isolates the WAL
write path itself from cross-shard graph maintenance (which the
``remote_writes`` counter prices separately, see the Sharding section
of the README) — and both engines run with ``ref_index`` pinned off so
the A/B compares write paths, not link-index maintenance.

Runs as a plain pytest module (no pytest-benchmark required)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -q

or as a script that persists the document::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        --backend sharded-sqlite --out BENCH_shards.json

Note: speedup depends on the host's CPU count — on a single-core
runner the curve is flat and that is the honest result; the assertions
therefore pin correctness (transaction counts, WAL mode, percentile
coverage), never scaling factors.  The host-independent signal of the
shard sweep is contention itself: with aligned lanes the sharded
engine's ``busy_retries`` collapse to zero at every width while the
single file's climb with the worker count.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

try:
    from conftest import term_print
except ImportError:
    # When benchmarks/ and tests/ are collected in one invocation, the
    # top-level name "conftest" can resolve to tests/conftest.py, which
    # has no term_print; plain printing is a fine fallback.
    def term_print(*args, **kwargs):
        print(*args, **kwargs)

from repro.core.generation import generate_database
from repro.core.presets import (
    default_database_parameters,
    default_workload_parameters,
)
from repro.core.scenario import (
    MixEntry,
    Scenario,
    ScenarioRunner,
    WorkloadMix,
)
from repro.parallel import ParallelConfig, ParallelRunner
from repro.reporting import render_scaling_sweep, summarize_parallel_run
from repro.reporting.tables import render_table

#: Scaled-down defaults: 2 000 objects; 3 cold + 30 warm txns per worker.
DB_SCALE = 0.1
SEED = 19980323  # EDBT '98.
WORKERS = (1, 2, 4, 8)
COLD_N = 3
HOT_N = 30

#: Shard-sweep widths; every sharded point runs ``shards == workers``.
SHARD_WORKERS = (1, 2, 4)
SHARD_COLD_OPS = 5
SHARD_WARM_OPS = 300

#: The write-heavy shard mix: 90% reference-free updates (pure
#: home-lane writes on a MAXNREF=0 database), 10% partition-local
#: range reads.
SHARD_MIX = WorkloadMix(name="update_storm", entries=(
    MixEntry("update", weight=0.9),
    MixEntry("range_lookup", weight=0.1, range_width=5),
))


def shard_database():
    """The shard-sweep database: scaled defaults with ``MAXNREF = 0``."""
    params = replace(
        default_database_parameters(scale=DB_SCALE, seed=SEED), max_nref=0)
    database, _ = generate_database(params)
    return database


def run_shard_cell(database, backend: str, workers: int) -> dict:
    """One (backend, workers) cell of the shard sweep, as a flat dict."""
    scenario = Scenario(
        mix=SHARD_MIX, clients=workers, cold_ops=SHARD_COLD_OPS,
        warm_ops=SHARD_WARM_OPS, backend=backend, seed=SEED,
        backend_options={"ref_index": False})
    sharded = backend == "sharded-sqlite"
    config = ParallelConfig(busy_timeout_ms=5000,
                            shards=workers if sharded else None)
    report = ScenarioRunner(database, scenario).run_processes(config=config)
    summary = report.to_dict()
    merged = report.merged_warm.wall_percentiles()
    return {
        "backend": backend,
        "workers": workers,
        "shards": workers if backend == "sharded-sqlite" else None,
        "mode": summary["mode"],
        "executed_parallel": summary["executed_parallel"],
        "operations": summary["operations"],
        "write_operations": summary["write_operations"],
        "throughput": summary["throughput"],
        "elapsed_seconds": summary["elapsed_seconds"],
        "wall_p50_ms": merged.p50 * 1e3,
        "wall_p95_ms": merged.p95 * 1e3,
        "wall_p99_ms": merged.p99 * 1e3,
        "busy_retries": summary["busy_retries"],
        "busy_wait_seconds": summary["busy_wait_seconds"],
        "remote_reads": summary["remote_reads"],
    }


def run_shard_sweep(database=None) -> list:
    """Both backends at every width, single-file first at each."""
    if database is None:
        database = shard_database()
    cells = []
    for workers in SHARD_WORKERS:
        for backend in ("sqlite", "sharded-sqlite"):
            cells.append(run_shard_cell(database, backend, workers))
    return cells


def shard_scaling_document(cells) -> dict:
    from repro.obs import results

    return results.build_document(
        kind="shard_scaling",
        cells=cells,
        config={"db_scale": DB_SCALE, "seed": SEED, "max_nref": 0,
                "mix": SHARD_MIX.name, "workers": list(SHARD_WORKERS),
                "cold_ops": SHARD_COLD_OPS, "warm_ops": SHARD_WARM_OPS,
                "ref_index": False, "shards": "workers"},
        name="bench_parallel_shards")


def render_shard_sweep(cells) -> str:
    """The side-by-side A/B table, one row per (backend, width)."""
    rows = []
    for cell in cells:
        rows.append([
            cell["workers"],
            cell["backend"],
            cell["shards"] if cell["shards"] is not None else "-",
            cell["operations"],
            cell["throughput"],
            cell["wall_p95_ms"],
            cell["busy_retries"],
            cell["busy_wait_seconds"],
        ])
    return render_table(
        ["workers", "backend", "shards", "ops", "ops/s", "P95 (ms)",
         "busy retries", "busy wait (s)"],
        rows, title="Sharded vs single-WAL write scaling "
                    "(update_storm, shards == workers)", precision=3)


@pytest.fixture(scope="module")
def sweep():
    database, _ = generate_database(
        default_database_parameters(scale=DB_SCALE, seed=SEED))
    base = default_workload_parameters(scale=0.02)
    config = ParallelConfig(busy_timeout_ms=5000)
    points = []
    for workers in WORKERS:
        params = replace(base, clients=workers, cold_n=COLD_N, hot_n=HOT_N)
        report = ParallelRunner(database, "sqlite", params,
                                config=config).run()
        points.append((report, summarize_parallel_run(report)))
    return points


def test_scaling_table_and_json(sweep):
    from repro.obs import results

    points = [point for _, point in sweep]
    term_print(render_scaling_sweep(
        points, title="Throughput scaling on shared WAL SQLite"))
    document = results.build_document(
        kind="parallel_scaling",
        cells=[point.to_dict() for point in points],
        config={"db_scale": DB_SCALE, "seed": SEED,
                "workers": list(WORKERS), "cold_n": COLD_N, "hot_n": HOT_N},
        name="bench_parallel")
    term_print(json.dumps(document, indent=2))
    assert len(points) == len(WORKERS)
    assert results.validate_document(document) is document


def test_every_point_ran_its_full_workload(sweep):
    for report, point in sweep:
        assert point.transactions == point.workers * (COLD_N + HOT_N)
        assert point.throughput > 0.0
        assert report.merged_warm.transaction_count == \
            point.workers * HOT_N


def test_shared_wal_storage_at_every_width(sweep):
    for report, point in sweep:
        assert point.mode == "shared"
        for worker in report.workers:
            assert worker.backend_stats["journal_mode"] == "wal"


def test_latency_tails_ordered(sweep):
    for _, point in sweep:
        assert 0.0 < point.warm_p50_ms <= point.warm_p95_ms \
            <= point.warm_p99_ms


def test_logical_workload_independent_of_width(sweep):
    """Worker 0's logical metrics are identical at every sweep width —
    the per-client RNG substream never sees the other processes."""
    signatures = []
    for report, _ in sweep:
        worker0 = report.workers[0].report
        totals = worker0.warm.totals
        signatures.append((totals.count, totals.visits,
                           totals.distinct_objects))
    assert len(set(signatures)) == 1, signatures


# ---------------------------------------------------------------------- #
# Shard sweep: sharded-sqlite vs the single-WAL write ceiling
# ---------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def shard_sweep():
    return run_shard_sweep()


def _by_backend(cells):
    split = {"sqlite": {}, "sharded-sqlite": {}}
    for cell in cells:
        split[cell["backend"]][cell["workers"]] = cell
    return split


def test_shard_scaling_table_and_document(shard_sweep):
    from repro.obs import results

    term_print(render_shard_sweep(shard_sweep))
    document = shard_scaling_document(shard_sweep)
    term_print(json.dumps(document, indent=2))
    assert len(document["cells"]) == 2 * len(SHARD_WORKERS)
    assert results.validate_document(document) is document


def test_both_backends_run_the_same_workload(shard_sweep):
    """Same mix, seed and width → identical logical op counts."""
    split = _by_backend(shard_sweep)
    for workers in SHARD_WORKERS:
        single, sharded = split["sqlite"][workers], \
            split["sharded-sqlite"][workers]
        assert single["operations"] == sharded["operations"] \
            == workers * (SHARD_COLD_OPS + SHARD_WARM_OPS)
        assert single["write_operations"] == sharded["write_operations"]
        assert single["write_operations"] > 0


def test_shard_affinity_eliminates_write_contention(shard_sweep):
    """The host-independent claim: with ``shards == workers`` every
    update lands in its worker's home shard, so the sharded engine
    never waits on a write lock — while the single file's collisions
    only ever grow with width.  (Throughput ratios are reported, not
    asserted: on a single-core host the wall-clock curve is flat and
    that is the honest result.)"""
    split = _by_backend(shard_sweep)
    for workers in SHARD_WORKERS:
        sharded = split["sharded-sqlite"][workers]
        single = split["sqlite"][workers]
        assert sharded["busy_retries"] == 0
        assert sharded["busy_wait_seconds"] == 0.0
        assert sharded["busy_retries"] <= single["busy_retries"]
        # A perfectly partitioned mix also never reads off-shard.
        assert sharded["remote_reads"] == 0


def test_shard_cells_executed_parallel(shard_sweep):
    for cell in shard_sweep:
        assert cell["mode"] == "shared"
        if cell["workers"] > 1:
            assert cell["executed_parallel"]


# ---------------------------------------------------------------------- #
# Script entry point
# ---------------------------------------------------------------------- #

def main(argv=None) -> int:
    """Persist a sweep as a ``BENCH`` document without going via pytest."""
    import argparse

    from repro.obs import results

    parser = argparse.ArgumentParser(
        description="process-parallel throughput benchmarks")
    parser.add_argument(
        "--backend", default="sqlite",
        choices=("sqlite", "sharded-sqlite"),
        help="'sqlite' runs the worker-count sweep on the shared WAL "
             "file (kind parallel_scaling); 'sharded-sqlite' runs the "
             "side-by-side shard sweep (kind shard_scaling)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="output path (default: BENCH_<date>.json)")
    parser.add_argument("--json", action="store_true",
                        help="print the document to stdout as well")
    args = parser.parse_args(argv)

    if args.backend == "sharded-sqlite":
        cells = run_shard_sweep()
        print(render_shard_sweep(cells))
        document = shard_scaling_document(cells)
    else:
        database, _ = generate_database(
            default_database_parameters(scale=DB_SCALE, seed=SEED))
        base = default_workload_parameters(scale=0.02)
        config = ParallelConfig(busy_timeout_ms=5000)
        points = []
        for workers in WORKERS:
            params = replace(base, clients=workers,
                             cold_n=COLD_N, hot_n=HOT_N)
            report = ParallelRunner(database, "sqlite", params,
                                    config=config).run()
            points.append(summarize_parallel_run(report))
        print(render_scaling_sweep(
            points, title="Throughput scaling on shared WAL SQLite"))
        document = results.build_document(
            kind="parallel_scaling",
            cells=[point.to_dict() for point in points],
            config={"db_scale": DB_SCALE, "seed": SEED,
                    "workers": list(WORKERS),
                    "cold_n": COLD_N, "hot_n": HOT_N},
            name="bench_parallel")
    written = results.write_document(document, path=args.out)
    print(f"bench_parallel: wrote {written}")
    if args.json:
        print(json.dumps(document, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Throughput-scaling benchmark: worker processes on file-backed SQLite.

The process-parallel companion to ``bench_backends.py`` — one generated
database, one seed, executed at 1/2/4/8 worker processes against a
shared WAL SQLite file.  Each point reports aggregate throughput,
merged warm latency tails and the contention counters; the sweep is
emitted both as the ASCII scaling table and as one schema-versioned
``BENCH`` document (kind ``parallel_scaling``, cells =
:class:`~repro.reporting.scaling.ScalingPoint` dicts — the unified
shape of :mod:`repro.obs.results`, see ``docs/bench_schema.md``).

Runs as a plain pytest module (no pytest-benchmark required)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -q

Note: speedup depends on the host's CPU count — on a single-core
runner the curve is flat and that is the honest result; the assertions
therefore pin correctness (transaction counts, WAL mode, percentile
coverage), never scaling factors.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

try:
    from conftest import term_print
except ImportError:
    # When benchmarks/ and tests/ are collected in one invocation, the
    # top-level name "conftest" can resolve to tests/conftest.py, which
    # has no term_print; plain printing is a fine fallback.
    def term_print(*args, **kwargs):
        print(*args, **kwargs)

from repro.core.generation import generate_database
from repro.core.presets import (
    default_database_parameters,
    default_workload_parameters,
)
from repro.parallel import ParallelConfig, ParallelRunner
from repro.reporting import render_scaling_sweep, summarize_parallel_run

#: Scaled-down defaults: 2 000 objects; 3 cold + 30 warm txns per worker.
DB_SCALE = 0.1
SEED = 19980323  # EDBT '98.
WORKERS = (1, 2, 4, 8)
COLD_N = 3
HOT_N = 30


@pytest.fixture(scope="module")
def sweep():
    database, _ = generate_database(
        default_database_parameters(scale=DB_SCALE, seed=SEED))
    base = default_workload_parameters(scale=0.02)
    config = ParallelConfig(busy_timeout_ms=5000)
    points = []
    for workers in WORKERS:
        params = replace(base, clients=workers, cold_n=COLD_N, hot_n=HOT_N)
        report = ParallelRunner(database, "sqlite", params,
                                config=config).run()
        points.append((report, summarize_parallel_run(report)))
    return points


def test_scaling_table_and_json(sweep):
    from repro.obs import results

    points = [point for _, point in sweep]
    term_print(render_scaling_sweep(
        points, title="Throughput scaling on shared WAL SQLite"))
    document = results.build_document(
        kind="parallel_scaling",
        cells=[point.to_dict() for point in points],
        config={"db_scale": DB_SCALE, "seed": SEED,
                "workers": list(WORKERS), "cold_n": COLD_N, "hot_n": HOT_N},
        name="bench_parallel")
    term_print(json.dumps(document, indent=2))
    assert len(points) == len(WORKERS)
    assert results.validate_document(document) is document


def test_every_point_ran_its_full_workload(sweep):
    for report, point in sweep:
        assert point.transactions == point.workers * (COLD_N + HOT_N)
        assert point.throughput > 0.0
        assert report.merged_warm.transaction_count == \
            point.workers * HOT_N


def test_shared_wal_storage_at_every_width(sweep):
    for report, point in sweep:
        assert point.mode == "shared"
        for worker in report.workers:
            assert worker.backend_stats["journal_mode"] == "wal"


def test_latency_tails_ordered(sweep):
    for _, point in sweep:
        assert 0.0 < point.warm_p50_ms <= point.warm_p95_ms \
            <= point.warm_p99_ms


def test_logical_workload_independent_of_width(sweep):
    """Worker 0's logical metrics are identical at every sweep width —
    the per-client RNG substream never sees the other processes."""
    signatures = []
    for report, _ in sweep:
        worker0 = report.workers[0].report
        totals = worker0.warm.totals
        signatures.append((totals.count, totals.visits,
                           totals.distinct_objects))
    assert len(set(signatures)) == 1, signatures

"""Concurrent I/O benchmark: sequential vs shard fan-out vs pipelined.

One generated database loaded into three engine configurations, and the
same set of BFS frontier expansions walked through each:

* **sequential** — a 2-shard :class:`ShardedSQLiteBackend` with the
  concurrent fan-out off: touched shards answer one after another on
  the coordinator thread, the pre-pipeline cost;
* **fanout** — the same sharded engine with ``concurrent_fanout=True``:
  every touched shard's ``IN``-clause batch runs simultaneously on a
  pooled read connection (one executor task per shard);
* **pipelined** — the single-file :class:`PipelinedSQLiteBackend`: each
  frontier batch splits into ``pool_size`` sub-batches executed
  concurrently against pooled connections to the one file.

All three modes expand identical precomputed frontiers (the equivalence
is asserted), so the wall-clock ratio is a pure I/O-overlap
measurement — and, host speed aside, the *structural* overlap counters
are pinned exactly: the fan-out engine's ``concurrent_batches`` equals
the touched-shard count, ``max_inflight_reads`` exceeds 1 whenever
reads genuinely overlapped, and the sequential engine's peak never
leaves 1.  The run lands as one schema-versioned ``pipeline_fanout``
document; ``BENCH_pipeline_baseline.json`` is the committed trajectory
the CI ``pipeline-smoke`` leg gates with ``ocb bench --compare``.

Runs as a plain pytest module (no pytest-benchmark required)::

    PYTHONPATH=src python -m pytest benchmarks/bench_pipeline.py -q

Set ``BENCH_PIPELINE_OUT=/path/to.json`` to persist the document (the
CI leg does, to feed the compare gate).  Wall-clock depends on the
host — assertions pin structure (identical answers, overlap counters,
batch splits), never a millisecond value.
"""

from __future__ import annotations

import json
import os
import time

import pytest

try:
    from conftest import term_print
except ImportError:
    def term_print(*args, **kwargs):
        print(*args, **kwargs)

from repro.backends.pipelined import PipelinedSQLiteBackend
from repro.backends.sharded import ShardedSQLiteBackend
from repro.core.generation import generate_database
from repro.core.presets import default_database_parameters
from repro.core.session import Session, _PIPELINE_CHUNK

#: Scaled-down database; the seed is the paper's conference date.
DB_SCALE = 0.1
SEED = 19980323  # EDBT '98.
WALKS = 50
DEPTH = 5
MAX_VISITS = 512
SHARDS = 2
POOL_SIZE = 2

MODES = ("sequential", "fanout", "pipelined")


def _percentile(sorted_seconds, fraction):
    index = min(len(sorted_seconds) - 1,
                max(0, int(fraction * len(sorted_seconds))))
    return sorted_seconds[index] * 1e3


def _roots(database):
    """WALKS deterministic roots, spread across the oid space."""
    oids = sorted(database.objects)
    step = max(1, len(oids) // WALKS)
    return [oids[(i * step) % len(oids)] for i in range(WALKS)]


def _expand(backend, frontier):
    """One frontier's structure-only expansion, frontier order."""
    answers = backend.traverse_refs_many(frontier)
    targets = []
    for oid in frontier:
        targets.extend(answers[oid])
    return targets


@pytest.fixture(scope="module")
def database():
    db, _ = generate_database(
        default_database_parameters(scale=DB_SCALE, seed=SEED))
    return db


@pytest.fixture(scope="module")
def env(tmp_path_factory, database):
    """The three engine configurations, loaded with the same database."""
    root = tmp_path_factory.mktemp("pipeline")
    backends = {
        "sequential": ShardedSQLiteBackend(
            path=str(root / "seq"), shards=SHARDS),
        "fanout": ShardedSQLiteBackend(
            path=str(root / "fan"), shards=SHARDS,
            concurrent_fanout=True, pool_size=POOL_SIZE),
        "pipelined": PipelinedSQLiteBackend(
            path=str(root / "pipe.db"), ref_index=True,
            pool_size=POOL_SIZE + 1),
    }
    for backend in backends.values():
        database.load_into(backend)
    yield backends
    for backend in backends.values():
        backend.close()


@pytest.fixture(scope="module")
def frontiers(env, database):
    """Every frontier the WALKS walks expand, precomputed once.

    All modes expand identical frontiers (the equivalence test pins
    it), so the sequence is mode-independent — and timing only the
    expansion of each precomputed frontier keeps the BFS bookkeeping
    (visited sets, frontier rebuilds, identical client-side work) out
    of the A/B.  What remains per mode is exactly the cost the
    concurrent I/O layer attacks: the engine round trips.
    """
    backend = env["sequential"]
    sequences = []
    for root in _roots(database):
        visited = {root}
        frontier = [root]
        for _ in range(DEPTH):
            if not frontier or len(visited) >= MAX_VISITS:
                break
            sequences.append(list(frontier))
            targets = _expand(backend, frontier)
            frontier = []
            for target in targets:
                if len(visited) >= MAX_VISITS:
                    break
                if target not in visited:
                    visited.add(target)
                    frontier.append(target)
    return sequences


@pytest.fixture(scope="module")
def cells(env, frontiers):
    measured = []
    for mode in MODES:
        backend = env[mode]
        # One untimed pass so every mode sees hot page caches (and the
        # pools' read connections are already open when timing starts).
        for frontier in frontiers:
            _expand(backend, frontier)
        backend.reset_stats()
        expansion_seconds = []
        targets_total = 0
        started = time.perf_counter()
        for frontier in frontiers:
            expansion_start = time.perf_counter()
            targets = _expand(backend, frontier)
            expansion_seconds.append(time.perf_counter() - expansion_start)
            targets_total += len(targets)
        elapsed = time.perf_counter() - started
        stats = backend.stats()
        expansion_seconds.sort()
        measured.append({
            "key": f"{backend.name}/pipeline_walk/c1/{mode}",
            "backend": backend.name,
            "scenario": "pipeline_walk",
            "clients": 1,
            "mode": mode,
            "operations": len(frontiers),
            "write_operations": 0,
            "targets": targets_total,
            "elapsed_seconds": elapsed,
            "throughput": len(frontiers) / elapsed if elapsed > 0 else 0.0,
            "wall_p50_ms": _percentile(expansion_seconds, 0.50),
            "wall_p95_ms": _percentile(expansion_seconds, 0.95),
            "wall_p99_ms": _percentile(expansion_seconds, 0.99),
            "sql_round_trips": int(stats["sql_round_trips"]),
            "concurrent_batches": int(stats["concurrent_batches"]),
            "max_inflight_reads": int(stats["max_inflight_reads"]),
            "pool_wait_seconds": float(stats["pool_wait_seconds"]),
        })
    return measured


def test_modes_answer_identically(env, frontiers):
    """The ratio only means something if the engines do the same work."""
    for frontier in frontiers[:25]:
        sequential = env["sequential"].traverse_refs_many(frontier)
        assert env["fanout"].traverse_refs_many(frontier) == sequential
        assert env["pipelined"].traverse_refs_many(frontier) == sequential
        assert list(sequential) == list(dict.fromkeys(frontier))


def test_fanout_covers_every_touched_shard(env, frontiers):
    """``concurrent_batches`` == touched shards on a multi-shard read."""
    backend = env["fanout"]
    frontier = next(f for f in frontiers
                    if len({oid % SHARDS for oid in f}) == SHARDS)
    backend.reset_stats()
    backend.traverse_refs_many(frontier)
    stats = backend.stats()
    assert stats["concurrent_batches"] == SHARDS
    assert stats["max_inflight_reads"] == SHARDS


def test_overlap_counters_split_by_mode(cells):
    by_mode = {cell["mode"]: cell for cell in cells}
    # Sequential: one batch after another, nothing ever in flight.
    assert by_mode["sequential"]["max_inflight_reads"] <= 1
    assert by_mode["sequential"]["concurrent_batches"] <= 1
    assert by_mode["sequential"]["pool_wait_seconds"] == 0.0
    # Fan-out: both shards' batches genuinely in flight together.
    assert by_mode["fanout"]["max_inflight_reads"] > 1
    assert by_mode["fanout"]["concurrent_batches"] == SHARDS
    # Pipelined: multi-oid batches split into concurrent sub-batches.
    assert by_mode["pipelined"]["max_inflight_reads"] > 1
    assert by_mode["pipelined"]["concurrent_batches"] >= 2
    # Identical logical work, mode over mode.
    assert by_mode["sequential"]["targets"] \
        == by_mode["fanout"]["targets"] == by_mode["pipelined"]["targets"]


def test_pipelined_bfs_session_equivalence(env, database):
    """The session's one-chunk-ahead BFS returns the sequential answers.

    A frontier wider than the pipeline chunk forces the chunked path
    (ceil(len/chunk) yields, the next chunk in flight while the caller
    consumes the current one); folding the yielded answers in order
    must reproduce the single sequential round trip exactly.
    """
    backend = env["pipelined"]
    frontier = sorted(database.objects)[:3 * _PIPELINE_CHUNK - 7]
    session = Session(backend, pipeline=True)
    assert session.pipeline
    chunks = 0
    merged = {}
    for answers in session.iter_frontier_refs(frontier):
        chunks += 1
        merged.update(answers)
    assert chunks == 3
    assert merged == env["sequential"].traverse_refs_many(frontier)

    off = Session(backend, pipeline=False)
    answers = list(off.iter_frontier_refs(frontier))
    assert len(answers) == 1
    assert answers[0] == merged


def test_document_round_trips_and_persists(cells):
    from repro.obs import results
    document = results.build_document(
        kind="pipeline_fanout",
        cells=cells,
        config={"db_scale": DB_SCALE, "seed": SEED, "walks": WALKS,
                "depth": DEPTH, "max_visits": MAX_VISITS,
                "shards": SHARDS, "pool_size": POOL_SIZE},
        name="bench_pipeline")
    term_print(json.dumps(document, indent=2))
    assert results.validate_document(document) is document
    out = os.environ.get("BENCH_PIPELINE_OUT")
    if out:
        written = results.write_document(document, path=out)
        term_print(f"bench_pipeline: wrote {written}")

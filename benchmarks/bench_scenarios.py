"""Scenario-layer benchmark: busy retries vs worker count.

The contention companion to ``bench_parallel.py`` — one generated
database, one ``write_heavy`` scenario, executed at 1/2/4 worker
processes against a shared WAL SQLite file.  Each point reports the
aggregate busy-retry count (real write-write lock collisions, counted
by the engine's retry loop), throughput and write-conflict tolerance
counters; the curve is the benchmark's headline: a single writer cannot
collide, additional writers should.  The sweep is emitted as one
schema-versioned ``BENCH`` document (kind ``scenario_contention`` — the
unified shape of :mod:`repro.obs.results`).

Runs as a plain pytest module (no pytest-benchmark required)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py -q

Note: contention depends on the host's scheduler — the assertions pin
correctness (operation counts, per-client logical determinism across
widths is *not* expected for mutating mixes, whose partitions change
with the client count), never a specific retry count.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

try:
    from conftest import term_print
except ImportError:
    # When benchmarks/ and tests/ are collected in one invocation, the
    # top-level name "conftest" can resolve to tests/conftest.py, which
    # has no term_print; plain printing is a fine fallback.
    def term_print(*args, **kwargs):
        print(*args, **kwargs)

from repro.core.generation import generate_database
from repro.core.presets import default_database_parameters, scenario_preset
from repro.core.scenario import ScenarioRunner
from repro.parallel import ParallelConfig
from repro.reporting import render_table

#: Scaled-down database: 2 000 objects; 2 cold + 40 warm ops per worker.
DB_SCALE = 0.1
SEED = 19980323  # EDBT '98.
WORKERS = (1, 2, 4)
COLD_OPS = 2
WARM_OPS = 40


def _point(report, workers):
    return {
        "workers": workers,
        "mode": report.mode,
        "executed_parallel": report.executed_parallel,
        "operations": report.total_operations,
        "write_operations": report.write_operations,
        "elapsed_seconds": report.elapsed_seconds,
        "throughput": report.throughput,
        "busy_retries": report.busy_retries,
        "busy_wait_seconds": report.busy_wait_seconds,
        "write_conflicts": report.write_conflicts,
        "read_misses": report.read_misses,
    }


@pytest.fixture(scope="module")
def sweep():
    config = ParallelConfig(busy_timeout_ms=10000)
    points = []
    for workers in WORKERS:
        database, _ = generate_database(
            default_database_parameters(scale=DB_SCALE, seed=SEED))
        scenario = replace(scenario_preset("write_heavy"),
                           clients=workers, cold_ops=COLD_OPS,
                           warm_ops=WARM_OPS)
        report = ScenarioRunner(database, scenario).run_processes(
            config=config)
        points.append((report, _point(report, workers)))
    return points


def test_busy_retry_curve_table_and_json(sweep):
    rows = [[p["workers"], p["mode"], p["operations"],
             p["write_operations"], p["throughput"], p["busy_retries"],
             p["busy_wait_seconds"], p["write_conflicts"]]
            for _, p in sweep]
    term_print(render_table(
        ["workers", "mode", "ops", "writes", "op/s", "busy retries",
         "busy wait (s)", "write conflicts"],
        rows, title="write_heavy contention vs worker count "
                    "(shared WAL SQLite)", precision=3))
    from repro.obs import results
    document = results.build_document(
        kind="scenario_contention",
        cells=[p for _, p in sweep],
        config={"db_scale": DB_SCALE, "seed": SEED,
                "workers": list(WORKERS), "cold_ops": COLD_OPS,
                "warm_ops": WARM_OPS, "scenario": "write_heavy"},
        name="bench_scenarios")
    term_print(json.dumps(document, indent=2))
    assert len(sweep) == len(WORKERS)
    assert results.validate_document(document) is document


def test_every_point_ran_its_full_workload(sweep):
    for _, point in sweep:
        assert point["operations"] == \
            point["workers"] * (COLD_OPS + WARM_OPS)
        assert point["write_operations"] > 0
        assert point["throughput"] > 0.0


def test_single_writer_cannot_collide(sweep):
    report, point = sweep[0]
    assert point["workers"] == 1
    assert point["busy_retries"] == 0


def test_shared_storage_at_every_width(sweep):
    for report, point in sweep:
        assert point["mode"] == "shared"
        for client in report.clients:
            assert client.operations == COLD_OPS + WARM_OPS


def test_contended_widths_fire_busy_retries(sweep):
    """>= 2 concurrent writers on one WAL file must collide at least
    once across the whole sweep — the accounting the read-only era
    could never exercise."""
    if not all(point["executed_parallel"] for _, point in sweep[1:]):
        pytest.skip("worker processes unavailable in this environment")
    contended = sum(point["busy_retries"] for _, point in sweep[1:])
    assert contended > 0

"""Ablation — workload mix and root-selection skew (DESIGN.md §6.4).

Probes the axes behind the Table 4 → Table 5 gain drop.  At paper scale
the drop combines two effects: the database loses its RefZone locality
(OO1-like vs. OCB-default) *and* the workload diversifies.  At bench
scale the database axis dominates (the table benches assert it:
`bench_table5_default.py::test_table5_gain_below_table4`); here we sweep
the remaining axes on a fixed database and assert the robust invariants:

* DSTC keeps a gain above 1 for *every* transaction mix (the measured
  per-mix gains are reported for the record — their ordering is a
  scale-dependent effect, not a stable shape);
* a Zipf-skewed DIST5 (hot roots) never materially hurts, and keeps the
  full mix clustering-friendly: repeated hot patterns are exactly what
  DSTC's consolidated matrix rewards.
"""

from __future__ import annotations

import pytest

from conftest import term_print
from repro.clustering.dstc import DSTCParameters, DSTCPolicy
from repro.core.experiment import ClusteringExperiment
from repro.core.generation import generate_database
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.rand.distributions import UniformDistribution, ZipfDistribution
from repro.store.storage import StoreConfig

NUM_OBJECTS = 2500
TRANSACTIONS = 30

MIXES = {
    "pure-traversal": dict(p_set=0.0, p_simple=1.0, p_hierarchy=0.0,
                           p_stochastic=0.0),
    "half-mix": dict(p_set=0.25, p_simple=0.5, p_hierarchy=0.0,
                     p_stochastic=0.25),
    "full-mix": dict(p_set=0.25, p_simple=0.25, p_hierarchy=0.25,
                     p_stochastic=0.25),
}

_GAINS = {}


def run_mix(mix_name: str, dist5=None) -> float:
    db_params = DatabaseParameters(
        num_classes=10, max_nref=5, base_size=40, num_objects=NUM_OBJECTS,
        seed=41)
    database, _ = generate_database(db_params)
    # ~120-page database; keep the cache well below it.
    store = StoreConfig(buffer_pages=48).build()
    records = database.to_records()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    workload = WorkloadParameters(
        set_depth=2, simple_depth=3, hierarchy_depth=4, stochastic_depth=20,
        cold_n=5, hot_n=TRANSACTIONS, max_visits=800,
        dist5=dist5 or UniformDistribution(),
        **MIXES[mix_name])
    policy = DSTCPolicy(DSTCParameters(
        observation_period=TRANSACTIONS, selection_threshold=1,
        consolidation_weight=1.0, unit_weight_threshold=1.0))
    result = ClusteringExperiment(database, store, policy, workload,
                                  label=mix_name).run()
    return result.gain_factor


@pytest.mark.parametrize("mix_name", sorted(MIXES))
def test_mix(benchmark, mix_name):
    """Gain factor for one transaction mix."""
    gain = benchmark.pedantic(lambda: run_mix(mix_name),
                              rounds=1, iterations=1)
    _GAINS[mix_name] = gain
    benchmark.extra_info["mix"] = mix_name
    benchmark.extra_info["gain"] = round(gain, 2)


def test_mix_shape(benchmark):
    """DSTC wins under every mix; per-mix gains go on the record."""
    def collect():
        for mix_name in MIXES:
            if mix_name not in _GAINS:
                _GAINS[mix_name] = run_mix(mix_name)
        return dict(_GAINS)

    gains = benchmark.pedantic(collect, rounds=1, iterations=1)
    for mix_name, gain in gains.items():
        assert gain > 1.0, f"{mix_name} lost to the unclustered layout"
        benchmark.extra_info[f"gain_{mix_name}"] = round(gain, 2)
    term_print()
    term_print("mix gains:", {k: round(v, 2) for k, v in sorted(gains.items())})


def test_zipf_roots_restore_gain(benchmark):
    """Hot roots (Zipf DIST5) make even the full mix cluster well."""
    def both():
        uniform = run_mix("full-mix")
        zipf = run_mix("full-mix", dist5=ZipfDistribution(skew=1.5))
        return uniform, zipf

    uniform, zipf = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["gain_uniform_roots"] = round(uniform, 2)
    benchmark.extra_info["gain_zipf_roots"] = round(zipf, 2)
    assert zipf > uniform * 0.9  # Skew never hurts materially...
    assert zipf > 1.0            # ...and clustering still wins.

"""Table 4 — Texas/DSTC I/Os measured with DSTC-CluB and with OCB.

Paper (full scale, Sun ELC):

    Benchmark   I/Os before   I/Os after   Gain
    DSTC-CluB        66            5       13.2
    OCB              61            7        8.71

Shape contract at the calibrated scale (16 000 parts, depth-4 traversals,
buffer at the paper's RAM/database ratio — see EXPERIMENTS.md):

* both rows improve strongly after DSTC reorganizes (gain ≫ 1),
* DSTC-CluB's gain exceeds OCB's (the mimicking benchmark reports a
  slightly less flattering but consistent picture — the paper's point).
"""

from __future__ import annotations

import pytest

from conftest import attach_paper_comparison, term_print
from repro.experiments import PAPER_TABLE4, render_table4, run_table4

_ROWS = {}


def test_table4_row_dstc_club(benchmark):
    """Row 1: the native OO1-derived DSTC-CluB benchmark."""
    rows = benchmark.pedantic(
        lambda: run_table4(num_objects=16000, transactions=20,
                           buffer_pages=384),
        rounds=1, iterations=1)
    club, ocb = rows
    _ROWS["club"] = club
    _ROWS["ocb"] = ocb

    assert club.gain > 2.0
    assert club.ios_after < club.ios_before
    paper = PAPER_TABLE4["DSTC-CluB"]
    attach_paper_comparison(
        benchmark,
        {"ios_before": club.ios_before, "ios_after": club.ios_after,
         "gain": club.gain},
        {"ios_before": paper[0], "ios_after": paper[1], "gain": paper[2]})


def test_table4_row_ocb_mimic(benchmark):
    """Row 2: OCB parameterized per Table 3 to approximate DSTC-CluB."""
    if "ocb" not in _ROWS:  # Run standalone (e.g. -k filtering).
        club, ocb = run_table4(num_objects=16000, transactions=20,
                               buffer_pages=384)
        _ROWS["club"], _ROWS["ocb"] = club, ocb

    def read_row():
        return _ROWS["ocb"]

    ocb = benchmark.pedantic(read_row, rounds=1, iterations=1)
    assert ocb.gain > 1.5
    assert ocb.ios_after < ocb.ios_before
    paper = PAPER_TABLE4["OCB"]
    attach_paper_comparison(
        benchmark,
        {"ios_before": ocb.ios_before, "ios_after": ocb.ios_after,
         "gain": ocb.gain},
        {"ios_before": paper[0], "ios_after": paper[1], "gain": paper[2]})


def test_table4_shape(benchmark):
    """Cross-row orderings of Table 4 + printed table."""
    def rows():
        if "club" not in _ROWS:
            club, ocb = run_table4(num_objects=16000, transactions=20,
                                   buffer_pages=384)
            _ROWS["club"], _ROWS["ocb"] = club, ocb
        return _ROWS["club"], _ROWS["ocb"]

    club, ocb = benchmark.pedantic(rows, rounds=1, iterations=1)
    # Paper orderings: CluB gains more than OCB; CluB's "after" is lower.
    assert club.gain > ocb.gain
    assert club.ios_after <= ocb.ios_after
    term_print()
    term_print(render_table4([club, ocb]))

"""Ablation — clustering gain vs. buffer capacity (DESIGN.md §6.1).

The paper's hardware fixes the RAM/database ratio at roughly 8 MB / 15 MB.
This ablation sweeps the buffer pool to show the two regimes around it:

* tiny buffers: every traversal is cold; clustering compresses the
  per-traversal footprint, but nothing is retained across transactions;
* buffers near the clustered hot-set size: the clustered layout suddenly
  *fits*, and the gain factor jumps (the Table 4 operating point);
* buffers larger than the whole database: everything is cached either
  way and the gain collapses toward 1.

Shape contract: gain(best intermediate buffer) > gain(huge buffer).
"""

from __future__ import annotations

import pytest

from conftest import term_print
from repro.clustering.dstc import DSTCParameters, DSTCPolicy
from repro.comparators.dstc_club import DSTCClubBenchmark
from repro.comparators.oo1 import OO1Parameters
from repro.store.storage import StoreConfig

PARTS = 6000
TRANSACTIONS = 12
BUFFERS = (48, 192, 320, 1600)  # Pages; the store is ~520 pages.

_GAINS = {}


def run_club(buffer_pages: int):
    policy = DSTCPolicy(DSTCParameters(
        observation_period=TRANSACTIONS, selection_threshold=1,
        consolidation_weight=1.0, unit_weight_threshold=1.0))
    club = DSTCClubBenchmark(
        parameters=OO1Parameters(num_parts=PARTS, ref_zone=PARTS // 100,
                                 traversal_depth=4),
        store_config=StoreConfig(buffer_pages=buffer_pages),
        policy=policy,
        transactions=TRANSACTIONS, warmup=3)
    return club.run()


@pytest.mark.parametrize("buffer_pages", BUFFERS)
def test_buffer_sweep(benchmark, buffer_pages):
    """Gain factor at one buffer size."""
    result = benchmark.pedantic(lambda: run_club(buffer_pages),
                                rounds=1, iterations=1)
    _GAINS[buffer_pages] = result.gain_factor
    benchmark.extra_info["buffer_pages"] = buffer_pages
    benchmark.extra_info["ios_before"] = round(result.ios_before, 2)
    benchmark.extra_info["ios_after"] = round(result.ios_after, 2)
    benchmark.extra_info["gain"] = round(result.gain_factor, 2)


def test_buffer_sweep_shape(benchmark):
    """Intermediate buffers beat a database-sized buffer."""
    def collect():
        for buffer_pages in BUFFERS:
            if buffer_pages not in _GAINS:
                _GAINS[buffer_pages] = run_club(buffer_pages).gain_factor
        return dict(_GAINS)

    gains = benchmark.pedantic(collect, rounds=1, iterations=1)
    best_mid = max(gains[b] for b in BUFFERS[:-1])
    whole_db = gains[BUFFERS[-1]]
    assert best_mid > whole_db
    assert best_mid > 1.5
    term_print()
    term_print("buffer sweep gains:",
          {b: round(g, 2) for b, g in sorted(gains.items())})

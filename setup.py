"""Packaging for the OCB reproduction.

The reference environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` / ``pip install .`` must use the classic
``setup.py`` code path — all metadata therefore lives here (there is no
pyproject.toml on purpose).  The ``console_scripts`` entry point
guarantees the ``ocb`` command exists after installation.
"""

import os.path

from setuptools import find_packages, setup

_HERE = os.path.abspath(os.path.dirname(__file__))


def _read_version():
    namespace = {}
    with open(os.path.join(_HERE, "src", "repro", "_version.py"),
              encoding="utf-8") as handle:
        exec(handle.read(), namespace)
    return namespace["__version__"]


def _read_long_description():
    readme = os.path.join(_HERE, "README.md")
    if not os.path.exists(readme):
        return ""
    with open(readme, encoding="utf-8") as handle:
        return handle.read()


setup(
    name="ocb-repro",
    version=_read_version(),
    description="Reproduction of OCB, the generic object-oriented "
                "database benchmark (Darmont, Petit & Schneider, "
                "EDBT '98), with pluggable storage backends",
    long_description=_read_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    url="https://example.invalid/ocb-repro",
    keywords=["benchmark", "oodb", "object database", "clustering",
              "OCB", "reproduction"],
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.9",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Database",
        "Topic :: System :: Benchmark",
    ],
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[],  # Standard library only, by design.
    extras_require={
        "test": ["pytest", "hypothesis"],
        "bench": ["pytest", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "ocb=repro.cli:main",
        ],
    },
)

"""Legacy setup shim.

The reference environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` must use the classic ``setup.py develop`` code path.
All metadata lives in pyproject.toml; this file only hands control to
setuptools.
"""

from setuptools import setup

setup()

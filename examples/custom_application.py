#!/usr/bin/env python
"""Model a custom application with OCB's parameters.

"Since there exists no canonical OODB application, this is an important
feature" — the paper's case for a fully parameterized benchmark.  This
example models a *document management system*:

* five classes: Folder, Document, Section, Paragraph, Annotation, with
  per-class sizes and fan-outs set a priori (the paper's "fixed" mode);
* composition links Folder→Document→Section→Paragraph (acyclic), plus
  cross-reference and annotation links (free associations);
* a workload dominated by hierarchy traversals ("open a document") with
  Zipf-hot roots (a few documents get most of the traffic).

The script generates the database, validates its structure, runs the
workload, and shows what DSTC clustering does to the hot paths.

Run:  python examples/custom_application.py
"""

from __future__ import annotations

from repro import DSTCParameters, DSTCPolicy, StoreConfig
from repro.core.experiment import ClusteringExperiment
from repro.core.generation import generate_database
from repro.core.parameters import (
    DatabaseParameters,
    ReferenceTypeSpec,
    WorkloadParameters,
)
from repro.rand.distributions import ZipfDistribution

FOLDER, DOCUMENT, SECTION, PARAGRAPH, ANNOTATION = 1, 2, 3, 4, 5


def document_management_parameters() -> DatabaseParameters:
    """A 5-class schema wired a priori, like a real application's."""
    reference_types = (
        ReferenceTypeSpec(1, "composition", acyclic=True),
        ReferenceTypeSpec(2, "cross-reference"),
        ReferenceTypeSpec(3, "annotates"),
    )
    #                 Folder     Document      Section      Paragraph  Annotation
    max_nref = (4, 5, 6, 2, 1)
    base_size = (30, 120, 60, 200, 40)
    fixed_tref = (
        (1, 1, 1, 1),              # Folder: 4 composition slots.
        (1, 1, 1, 1, 2),           # Document: 4 sections + 1 cross-ref.
        (1, 1, 1, 1, 1, 2),        # Section: 5 paragraphs + 1 cross-ref.
        (2, 2),                    # Paragraph: cross-references.
        (3,),                      # Annotation -> annotates a paragraph.
    )
    fixed_cref = (
        (DOCUMENT,) * 4,
        (SECTION,) * 4 + (DOCUMENT,),
        (PARAGRAPH,) * 5 + (SECTION,),
        (PARAGRAPH, PARAGRAPH),
        (PARAGRAPH,),
    )
    return DatabaseParameters(
        num_classes=5,
        max_nref=max_nref,
        base_size=base_size,
        num_objects=4000,
        num_ref_types=3,
        reference_types=reference_types,
        fixed_tref=fixed_tref,
        fixed_cref=fixed_cref,
        seed=2026)


def main() -> None:
    parameters = document_management_parameters()
    database, report = generate_database(parameters, validate=True)
    print("Document store generated and validated "
          f"({report.total_seconds:.2f}s):")
    print(" ", database.statistics().describe())
    for descriptor in database.schema:
        name = ["Folder", "Document", "Section", "Paragraph",
                "Annotation"][descriptor.cid - 1]
        print(f"  class {descriptor.cid} {name:<10} "
              f"instance={descriptor.instance_size:>4} B  "
              f"population={descriptor.population}")
    print()

    store = StoreConfig(buffer_pages=48).build()
    records = database.to_records()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()

    # "Open a document": descend the composition hierarchy from a hot root.
    workload = WorkloadParameters(
        p_set=0.1, p_simple=0.1, p_hierarchy=0.7, p_stochastic=0.1,
        hierarchy_depth=4, hierarchy_ref_type=1,
        set_depth=1, simple_depth=2, stochastic_depth=10,
        dist5=ZipfDistribution(skew=1.2),   # A few hot documents.
        cold_n=10, hot_n=60, max_visits=600)

    policy = DSTCPolicy(DSTCParameters(
        observation_period=70, selection_threshold=1,
        consolidation_weight=1.0, unit_weight_threshold=1.0))
    result = ClusteringExperiment(database, store, policy, workload,
                                  label="doc-mgmt").run()

    print("Workload: 70% document-open traversals, Zipf-hot roots")
    print(f"  I/Os per transaction before clustering : "
          f"{result.ios_before:6.2f}")
    print(f"  I/Os per transaction after DSTC        : "
          f"{result.ios_after:6.2f}")
    print(f"  gain factor                            : "
          f"{result.gain_factor:6.2f}x")
    print(f"  one-off clustering overhead            : "
          f"{result.clustering_overhead_ios} I/Os")


if __name__ == "__main__":
    main()

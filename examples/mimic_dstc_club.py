#!/usr/bin/env python
"""Genericity demo: tune OCB to mimic DSTC-CluB (the paper's Table 3/4).

The paper's validation argument is that OCB, being fully parameterized,
can *approximate other benchmarks*: Table 3 lists the parameter values
that make OCB's database behave like DSTC-CluB's (which is OO1-derived).
This script runs both sides at a reduced scale:

* the native DSTC-CluB benchmark (OO1 Part/Connection database, depth-
  limited traversals, before/after-DSTC protocol), and
* OCB parameterized per Table 3 (two classes, three references, Constant
  DIST1-3, the Special RefZone locality for DIST4, traversal-only
  workload),

then prints the Table 4 comparison — same protocol, same store, same
clustering policy.

Run:  python examples/mimic_dstc_club.py
"""

from __future__ import annotations

from repro.experiments import render_table4, run_table4


def main() -> None:
    print("Running the native DSTC-CluB benchmark and the OCB mimicry...")
    print("(reduced scale: 16 000 parts, depth-4 traversals — see")
    print(" EXPERIMENTS.md for the scale notes)")
    print()
    rows = run_table4(num_objects=8000, transactions=15, buffer_pages=192)
    print(render_table4(rows))
    print()
    club, ocb = rows
    print(f"Both rows improve strongly after DSTC reorganizes "
          f"(x{club.gain:.1f} and x{ocb.gain:.1f});")
    print("OCB reports a smaller gain than DSTC-CluB — the same, less")
    print("flattering picture the paper found (8.71 vs 13.2 at full scale).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: generate an OCB database, run the workload, read the report.

This is the three-step loop every other example elaborates:

1. pick parameters (here: the paper's Table 1/2 defaults, scaled down so
   the script finishes in seconds),
2. ``OCBBenchmark.setup()`` — run the Fig. 2 generation algorithm and
   bulk-load the object graph into the Texas-like store,
3. ``run()`` — execute the cold/warm protocol and print the metrics the
   paper defines: response time, objects accessed and I/Os, per
   transaction type.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import OCBBenchmark, StoreConfig
from repro.core.presets import (
    default_database_parameters,
    default_workload_parameters,
)
from repro.reporting.tables import render_table


def main() -> None:
    database_parameters = default_database_parameters(scale=0.1)  # 2000 objects
    workload_parameters = default_workload_parameters(scale=0.02)  # 20 + 200 txns

    benchmark = OCBBenchmark(
        database_parameters,
        workload_parameters,
        StoreConfig(buffer_pages=128),   # ~0.5 MB of cache over a ~2 MB DB.
        initial_placement="sequential")

    database = benchmark.setup()
    print("Generated:", database.statistics().describe())
    print()

    result = benchmark.run()
    print(result.describe())
    print()
    print(render_table(
        ["kind", "n", "objects/txn", "reads/txn", "IOs/txn", "t_sim/txn (s)"],
        result.report.warm.rows(),
        title="Warm-run metrics per transaction type",
        precision=3))


if __name__ == "__main__":
    main()

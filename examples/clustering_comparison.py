#!/usr/bin/env python
"""Compare clustering policies on one workload — OCB's core use case.

The paper: "It is actually interesting to compare clustering policies
together, instead of comparing them to a non-clustering policy."

The scenario: a single-class database whose objects carry three
reference types, while the application's hierarchy traversals follow only
one of them (usage ≠ structure — think part-of hierarchies in a CAD
model that also stores version and documentation links).  Policies:

* none                 — whatever order the objects were loaded in,
* static by-class      — type-level clustering (no graph knowledge),
* static depth-first   — structural clustering (all reference types),
* DSTC                 — the paper's dynamic, statistics-based policy,
* DRO                  — the cheaper heat/transition-based policy.

Run:  python examples/clustering_comparison.py
"""

from __future__ import annotations

from repro import DSTCParameters, DSTCPolicy, DROPolicy, NoClustering, StoreConfig
from repro.clustering.dro import DROParameters
from repro.clustering.placements import StaticPolicy
from repro.core.experiment import ClusteringExperiment
from repro.core.generation import generate_database
from repro.core.parameters import (
    DatabaseParameters,
    ReferenceTypeSpec,
    WorkloadParameters,
)
from repro.reporting.tables import render_table

NUM_OBJECTS = 3000
TRANSACTIONS = 30


def build_database():
    reference_types = tuple(
        ReferenceTypeSpec(i, name)
        for i, name in ((1, "part-of"), (2, "version-of"), (3, "documents")))
    parameters = DatabaseParameters(
        num_classes=1, max_nref=3, base_size=40, num_objects=NUM_OBJECTS,
        num_ref_types=3, reference_types=reference_types,
        fixed_tref=((1, 2, 3),), fixed_cref=((1, 1, 1),), seed=97)
    database, _ = generate_database(parameters)
    return database


def run_policy(name, policy_factory):
    database = build_database()
    store = StoreConfig(buffer_pages=24).build()
    records = database.to_records()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    workload = WorkloadParameters(
        p_set=0.0, p_simple=0.0, p_hierarchy=1.0, p_stochastic=0.0,
        hierarchy_depth=12, hierarchy_ref_type=1,  # Only "part-of" links.
        cold_n=5, hot_n=TRANSACTIONS, max_visits=500)
    experiment = ClusteringExperiment(database, store,
                                      policy_factory(database), workload,
                                      label=name)
    return experiment.run()


def main() -> None:
    policies = {
        "none": lambda db: NoClustering(),
        "static by-class": lambda db: StaticPolicy(db.to_records(),
                                                   strategy="by_class"),
        "static depth-first": lambda db: StaticPolicy(db.to_records(),
                                                      strategy="depth_first"),
        "DSTC": lambda db: DSTCPolicy(DSTCParameters(
            observation_period=TRANSACTIONS + 5, selection_threshold=1,
            consolidation_weight=1.0, unit_weight_threshold=1.0)),
        "DRO": lambda db: DROPolicy(DROParameters(min_heat=1,
                                                  min_transition=1)),
    }
    rows = []
    for name, factory in policies.items():
        result = run_policy(name, factory)
        rows.append([name, result.ios_before, result.ios_after,
                     result.gain_factor, result.clustering_overhead_ios])
        print(f"  {name:<20} done: {result.describe()}")

    print()
    print(render_table(
        ["policy", "I/Os before", "I/Os after", "gain", "overhead I/Os"],
        rows, title="Clustering policy comparison "
                    "(hierarchy workload, usage != structure)"))
    print()
    print("Reading: usage-aware policies (DSTC, DRO) cluster only the links")
    print("the workload crosses; the structural DFS placement also drags in")
    print("the version/documentation links and wins far less.")


if __name__ == "__main__":
    main()

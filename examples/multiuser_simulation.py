#!/usr/bin/env python
"""Multi-user OCB: clients contending for the shared disk (CLIENTN axis).

The paper's OCB "supports multiple users, in a very simple way (using
processes)".  This example uses the discrete-event queueing model (the
reproduction's analogue of the paper's QNAP2 simulation port) to show
what clustering buys under concurrency: fewer I/Os per transaction means
less time queueing behind other clients.

The script runs 1/2/4 clients twice — on the freshly loaded database and
on the same database after DSTC reorganizes it — and compares throughput
and mean response time.

With ``--backend NAME`` the same multi-user workload runs through the
unified execution kernel against any registered engine instead of the
queueing model: ``--backend sqlite`` interleaves the clients round-robin
on one shared SQLite database (with batched frontier fetches) and
reports merged wall-clock percentiles, the real-engine analogue of the
simulated response times below.

Run:  python examples/multiuser_simulation.py [--backend sqlite]
"""

from __future__ import annotations

import argparse

from repro import DSTCParameters, DSTCPolicy, StoreConfig
from repro.backends import backend_names
from repro.clustering.base import PlacementContext
from repro.core.generation import generate_database
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.core.workload import WorkloadRunner
from repro.multiuser.des import SimulatedMultiUser
from repro.multiuser.runner import MultiClientRunner
from repro.reporting.tables import render_table

CLIENT_COUNTS = (1, 2, 4)


def build():
    db_params = DatabaseParameters(
        num_classes=1, max_nref=3, base_size=40, num_objects=2500,
        num_ref_types=3, fixed_tref=((3, 3, 3),), fixed_cref=((1, 1, 1),),
        ref_zone=25, seed=73)
    database, _ = generate_database(db_params)
    store = StoreConfig(buffer_pages=32).build()
    records = database.to_records()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    return database, store


def workload(clients):
    return WorkloadParameters(
        clients=clients, cold_n=0, hot_n=8, think_time=0.02,
        p_set=0.0, p_simple=1.0, p_hierarchy=0.0, p_stochastic=0.0,
        simple_depth=4, max_visits=400)


def simulate(database, store, clients):
    store.drop_caches()
    store.reset_stats()
    sim = SimulatedMultiUser(database, store, workload(clients),
                             transactions_per_client=8)
    return sim.run()


def cluster(database, store):
    """Observe one single-user pass, then let DSTC reorganize."""
    policy = DSTCPolicy(DSTCParameters(
        observation_period=20, selection_threshold=1,
        consolidation_weight=1.0, unit_weight_threshold=1.0))
    runner = WorkloadRunner(database, store, workload(1), policy=policy)
    runner.run_phase("observe", 20)
    placement = policy.propose_placement(
        store.current_order(),
        PlacementContext(sizes=database.record_sizes(),
                         page_size=store.page_size))
    if placement is not None:
        store.reorganize(placement.order,
                         aligned_groups=placement.aligned_groups)


def run_on_backend(backend: str) -> None:
    """Multi-user runs on a real engine through the unified kernel."""
    db_params = DatabaseParameters(
        num_classes=1, max_nref=3, base_size=40, num_objects=2500,
        num_ref_types=3, fixed_tref=((3, 3, 3),), fixed_cref=((1, 1, 1),),
        ref_zone=25, seed=73)
    database, _ = generate_database(db_params)

    rows = []
    for clients in CLIENT_COUNTS:
        report = MultiClientRunner(database, backend,
                                   workload(clients)).run()
        wall = report.warm_wall_percentiles
        totals = report.merged_warm.totals
        rows.append([clients, totals.count, totals.visits_per_transaction,
                     wall.p50 * 1000, wall.p95 * 1000, wall.p99 * 1000])

    print(render_table(
        ["clients", "warm txns", "objects/txn", "P50 (ms)", "P95 (ms)",
         "P99 (ms)"],
        rows, title=f"Multi-user OCB on the {backend!r} engine "
                    f"(shared store, merged percentiles)", precision=3))
    print()
    print(f"Reading: every client interleaves on one shared {backend} "
          f"engine; the")
    print("logical workload per client is identical to the simulated run, "
          "so the")
    print("percentile spread is pure engine cost.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="simulated",
                        choices=backend_names(),
                        help="run through the execution kernel on this "
                             "engine instead of the queueing model")
    args = parser.parse_args()
    if args.backend != "simulated":
        run_on_backend(args.backend)
        return

    database, store = build()

    rows = []
    for clients in CLIENT_COUNTS:
        report = simulate(database, store, clients)
        rows.append([f"{clients} (unclustered)", report.throughput,
                     report.mean_response * 1000,
                     report.disk_utilisation * 100])

    cluster(database, store)
    for clients in CLIENT_COUNTS:
        report = simulate(database, store, clients)
        rows.append([f"{clients} (DSTC-clustered)", report.throughput,
                     report.mean_response * 1000,
                     report.disk_utilisation * 100])

    print(render_table(
        ["clients", "throughput (txn/s)", "mean response (ms)",
         "disk busy (%)"],
        rows, title="Multi-user OCB, before vs after DSTC clustering"))
    print()
    print("Reading: clustering cuts each transaction's I/O demand, so the")
    print("shared disk saturates later and response times grow more slowly")
    print("with the number of clients.")


if __name__ == "__main__":
    main()

"""Reproduction harness for every table and figure of the paper.

One function per experiment (see DESIGN.md §4):

* :func:`run_fig4`   — Figure 4, database creation time vs. size for 1-,
  20- and 50-class schemas;
* :func:`run_table4` — Table 4, I/Os before/after DSTC reorganization for
  the native DSTC-CluB benchmark and for OCB parameterized per Table 3;
* :func:`run_table5` — Table 5, the same protocol with OCB defaults
  (mixed workload).

Scaled-down sizes are used by default (the paper's full 20 000-object,
10 000-transaction runs take minutes in pure Python); every size knob is
exposed, and EXPERIMENTS.md records paper-vs-measured at the scales used.
The PAPER_* constants hold the published values so benches and tests can
assert the *shape* (orderings, gain ranges) rather than absolute numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clustering.dstc import DSTCParameters, DSTCPolicy
from repro.comparators.dstc_club import DSTCClubBenchmark, DSTCClubResult
from repro.comparators.oo1 import OO1Parameters
from repro.core.experiment import ClusteringExperiment, ExperimentResult
from repro.core.generation import generate_database
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.core.presets import (
    default_database_parameters,
    default_workload_parameters,
    dstc_club_database_parameters,
    dstc_club_workload_parameters,
)
from repro.clustering.placements import placement_from_name
from repro.rand.lewis_payne import DEFAULT_SEED
from repro.reporting.figures import Series
from repro.reporting.tables import render_table
from repro.store.storage import StoreConfig

__all__ = [
    "PAPER_FIG4_SIZES",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "Fig4Point",
    "run_fig4",
    "fig4_series",
    "Table4Row",
    "run_table4",
    "run_table5",
    "render_table4",
    "render_table5",
]

#: Figure 4's x axis (number of instances).
PAPER_FIG4_SIZES: Tuple[int, ...] = (10, 100, 1000, 10000, 20000)

#: Table 4 of the paper: label -> (I/Os before, I/Os after, gain factor).
PAPER_TABLE4: Dict[str, Tuple[float, float, float]] = {
    "DSTC-CluB": (66.0, 5.0, 13.2),
    "OCB": (61.0, 7.0, 8.71),
}

#: Table 5 of the paper: OCB default workload.
PAPER_TABLE5: Dict[str, Tuple[float, float, float]] = {
    "OCB": (31.0, 12.0, 2.58),
}


# ---------------------------------------------------------------------- #
# Figure 4 — database creation time
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class Fig4Point:
    """One measured generation."""

    num_classes: int
    num_objects: int
    seconds: float


def run_fig4(sizes: Sequence[int] = (10, 100, 1000, 5000),
             class_counts: Sequence[int] = (1, 20, 50),
             seed: int = DEFAULT_SEED,
             repeats: int = 1) -> List[Fig4Point]:
    """Measure database generation time over the (NC, NO) grid.

    ``repeats`` > 1 keeps the fastest run per point (the usual best-of-N
    timing discipline for short measurements).
    """
    points: List[Fig4Point] = []
    for num_classes in class_counts:
        for num_objects in sizes:
            best = float("inf")
            for _ in range(max(1, repeats)):
                params = DatabaseParameters(
                    num_classes=num_classes,
                    max_nref=10,
                    base_size=50,
                    num_objects=num_objects,
                    seed=seed)
                start = time.perf_counter()
                generate_database(params)
                best = min(best, time.perf_counter() - start)
            points.append(Fig4Point(num_classes=num_classes,
                                    num_objects=num_objects,
                                    seconds=best))
    return points


def fig4_series(points: Sequence[Fig4Point]) -> Series:
    """Regroup Fig. 4 points into plottable series keyed by class count."""
    series: Series = {}
    for point in points:
        series.setdefault(f"{point.num_classes} classes", []).append(
            (float(point.num_objects), point.seconds))
    for pts in series.values():
        pts.sort()
    return series


# ---------------------------------------------------------------------- #
# Table 4 — DSTC-CluB vs. OCB-mimicking-CluB
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class Table4Row:
    """One measured row next to the paper's."""

    label: str
    ios_before: float
    ios_after: float
    gain: float
    clustering_overhead_ios: int
    paper_before: float
    paper_after: float
    paper_gain: float


def _dstc_policy(transactions: int) -> DSTCPolicy:
    """The DSTC tuning used by the reproduction experiments.

    The thresholds are set to their most inclusive values because the
    scaled runs cross each link only a handful of times (the "T" in DSTC
    is exactly this tunability); the observation window spans the whole
    measured phase so nothing is aged out before consolidation.
    """
    return DSTCPolicy(DSTCParameters(
        observation_period=max(1, transactions),
        selection_threshold=1,
        consolidation_weight=1.0,
        unit_weight_threshold=1.0,
        unit_strategy="greedy"))


def run_table4(num_objects: int = 16000,
               transactions: int = 20,
               buffer_pages: int = 384,
               club_depth: int = 4,
               ocb_depth: int = 4,
               seed: int = DEFAULT_SEED) -> List[Table4Row]:
    """Both Table 4 rows at a configurable scale.

    Row 1 runs the *native* DSTC-CluB benchmark (OO1 database, depth-7
    traversals); row 2 runs OCB parameterized per Table 3 to approximate
    it.  RefZone is 1 % of the population, as in OO1.  The default depths
    are scaled down from OO1's 7 hops so the traversal footprint stays
    proportional to the scaled database (EXPERIMENTS.md, exp. T4); buffer
    size follows the paper's RAM/database ratio (8 MB vs ~15 MB).
    """
    ref_zone = max(1, num_objects // 100)
    rows: List[Table4Row] = []

    # Row 1 — native DSTC-CluB.
    club = DSTCClubBenchmark(
        parameters=OO1Parameters(num_parts=num_objects, ref_zone=ref_zone,
                                 traversal_depth=club_depth, seed=seed),
        store_config=StoreConfig(buffer_pages=buffer_pages),
        policy=_dstc_policy(transactions),
        transactions=transactions)
    club_result: DSTCClubResult = club.run()
    paper = PAPER_TABLE4["DSTC-CluB"]
    rows.append(Table4Row(
        label="DSTC-CluB",
        ios_before=club_result.ios_before,
        ios_after=club_result.ios_after,
        gain=club_result.gain_factor,
        clustering_overhead_ios=club_result.clustering_overhead_ios,
        paper_before=paper[0], paper_after=paper[1], paper_gain=paper[2]))

    # Row 2 — OCB parameterized per Table 3.  The OO1 database above holds
    # parts *and* connections; OCB's approximation folds connections into
    # direct part-to-part references, so the object count is matched to
    # the OO1 run's total population for a comparable database size.
    ocb_objects = num_objects * 2
    db_params = dstc_club_database_parameters(
        num_objects=ocb_objects, ref_zone=max(1, ocb_objects // 100),
        seed=seed)
    wl_params = dstc_club_workload_parameters(
        transactions=transactions, cold=max(1, transactions // 10),
        depth=ocb_depth)
    ocb_result = _run_ocb_experiment(db_params, wl_params, buffer_pages,
                                     transactions, label="OCB")
    paper = PAPER_TABLE4["OCB"]
    rows.append(Table4Row(
        label="OCB",
        ios_before=ocb_result.ios_before,
        ios_after=ocb_result.ios_after,
        gain=ocb_result.gain_factor,
        clustering_overhead_ios=ocb_result.clustering_overhead_ios,
        paper_before=paper[0], paper_after=paper[1], paper_gain=paper[2]))
    return rows


def _run_ocb_experiment(db_params: DatabaseParameters,
                        wl_params: WorkloadParameters,
                        buffer_pages: int,
                        transactions: int,
                        label: str) -> ExperimentResult:
    database, _report = generate_database(db_params)
    store = StoreConfig(buffer_pages=buffer_pages).build()
    records = database.to_records()
    order = placement_from_name("sequential")(records)
    store.bulk_load(records.values(), order=order)
    store.reset_stats()
    experiment = ClusteringExperiment(
        database, store, _dstc_policy(transactions), wl_params, label=label)
    return experiment.run()


# ---------------------------------------------------------------------- #
# Table 5 — OCB defaults (mixed workload)
# ---------------------------------------------------------------------- #

def run_table5(num_objects: int = 8000,
               transactions: int = 60,
               buffer_pages: int = 340,
               seed: int = DEFAULT_SEED) -> Table4Row:
    """Table 5: the before/after protocol under OCB's default mix.

    The defaults keep the same buffer/database ratio as :func:`run_table4`
    so the two tables are comparable — the shape to reproduce is the
    *drop* in gain factor once the workload stops being a single
    stereotyped traversal (paper: 13.2/8.71 -> 2.58).
    """
    db_params = default_database_parameters(
        scale=num_objects / 20000, seed=seed)
    base = default_workload_parameters()
    wl_params = WorkloadParameters(
        set_depth=base.set_depth,
        simple_depth=base.simple_depth,
        hierarchy_depth=base.hierarchy_depth,
        stochastic_depth=base.stochastic_depth,
        cold_n=max(1, transactions // 5),
        hot_n=transactions,
        p_set=base.p_set, p_simple=base.p_simple,
        p_hierarchy=base.p_hierarchy, p_stochastic=base.p_stochastic,
        max_visits=2000)
    result = _run_ocb_experiment(db_params, wl_params, buffer_pages,
                                 transactions, label="OCB")
    paper = PAPER_TABLE5["OCB"]
    return Table4Row(
        label="OCB",
        ios_before=result.ios_before,
        ios_after=result.ios_after,
        gain=result.gain_factor,
        clustering_overhead_ios=result.clustering_overhead_ios,
        paper_before=paper[0], paper_after=paper[1], paper_gain=paper[2])


# ---------------------------------------------------------------------- #
# Rendering
# ---------------------------------------------------------------------- #

_TABLE_HEADERS = ("Benchmark", "I/Os before", "I/Os after", "Gain",
                  "paper before", "paper after", "paper gain")


def render_table4(rows: Sequence[Table4Row]) -> str:
    """Measured Table 4 next to the paper's values."""
    body = [[r.label, r.ios_before, r.ios_after, r.gain,
             r.paper_before, r.paper_after, r.paper_gain] for r in rows]
    return render_table(_TABLE_HEADERS, body,
                        title="Table 4 — Texas/DSTC, OCB vs DSTC-CluB")


def render_table5(row: Table4Row) -> str:
    """Measured Table 5 next to the paper's values."""
    body = [[row.label, row.ios_before, row.ios_after, row.gain,
             row.paper_before, row.paper_after, row.paper_gain]]
    return render_table(_TABLE_HEADERS, body,
                        title="Table 5 — Texas/DSTC with OCB defaults")

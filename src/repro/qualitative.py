"""Qualitative evaluation of clustering policies — the paper's last word.

Section 5: *"though very important, performance is not the only factor to
consider.  Functionality is also very significant ... we plan to work in
this direction, and add a qualitative element into OCB, a bit the way
[Kempe et al.] operated for the CAD-oriented OCAD benchmark.  For
instance, we could evaluate if a clustering heuristic's parameters are
easy to apprehend and set up, if the algorithm is easy to use, or
transparent to the user."*

This module implements that grid.  Each criterion is scored 0-4; some are
derived automatically from the policy object (parameter count, whether it
needs workload statistics, whether it can trigger itself), the rest come
from a per-policy assessment.  The built-in assessments cover the
policies shipped in :mod:`repro.clustering`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.clustering.base import ClusteringPolicy, NoClustering
from repro.clustering.dro import DROPolicy
from repro.clustering.dstc import DSTCPolicy
from repro.clustering.placements import StaticPolicy
from repro.errors import ParameterError
from repro.reporting.tables import render_table

__all__ = ["Criterion", "CRITERIA", "QualitativeAssessment",
           "assess_policy", "render_assessments"]

_SCALE = (0, 1, 2, 3, 4)


@dataclass(frozen=True)
class Criterion:
    """One qualitative criterion, scored 0 (poor) to 4 (excellent)."""

    key: str
    question: str


#: The OCAD-inspired criteria grid (paper Section 5's examples + the
#: operational ones any deployment asks about).
CRITERIA: Tuple[Criterion, ...] = (
    Criterion("parameter_simplicity",
              "Are the heuristic's parameters easy to apprehend and set up?"),
    Criterion("transparency",
              "Is the algorithm transparent to the user/application?"),
    Criterion("autonomy",
              "Can it trigger reorganization itself (no DBA intervention)?"),
    Criterion("bookkeeping_cost",
              "How light is its run-time statistics gathering?"),
    Criterion("adaptivity",
              "Does it adapt when the access patterns change?"),
    Criterion("predictability",
              "Is its placement decision explainable/deterministic?"),
)


@dataclass
class QualitativeAssessment:
    """Scores of one policy over the criteria grid."""

    policy_name: str
    scores: Dict[str, int] = field(default_factory=dict)
    notes: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key, value in self.scores.items():
            if key not in {c.key for c in CRITERIA}:
                raise ParameterError(f"unknown criterion {key!r}")
            if value not in _SCALE:
                raise ParameterError(
                    f"score for {key!r} must be in {_SCALE}, got {value}")

    @property
    def total(self) -> int:
        """Sum over all criteria (missing criteria count 0)."""
        return sum(self.scores.get(c.key, 0) for c in CRITERIA)

    def score(self, key: str) -> int:
        """Score for one criterion (0 when unset)."""
        return self.scores.get(key, 0)


def _derived_scores(policy: ClusteringPolicy) -> Dict[str, int]:
    """Scores computable from the policy object itself."""
    scores: Dict[str, int] = {}

    # parameter_simplicity: fewer tunables = simpler.
    parameters = getattr(policy, "parameters", None)
    if parameters is None:
        scores["parameter_simplicity"] = 4
    else:
        count = len(getattr(parameters, "__dataclass_fields__", {}))
        scores["parameter_simplicity"] = max(0, 4 - max(0, count - 2) // 2)

    # transparency: does observe_access actually do anything?
    observes = type(policy).observe_access is not \
        ClusteringPolicy.observe_access
    scores["transparency"] = 2 if observes else 4

    # autonomy: can the policy self-trigger?
    try:
        can_trigger = (getattr(getattr(policy, "parameters", None),
                               "trigger_period", None) is not None) or \
            policy.wants_reorganization()
    except Exception:  # pragma: no cover - defensive
        can_trigger = False
    trigger_field = hasattr(getattr(policy, "parameters", None),
                            "trigger_period")
    scores["autonomy"] = 4 if (can_trigger or trigger_field) else 1
    return scores


#: Hand-assessed scores for the criteria that need judgement.
_JUDGED: Dict[type, Dict[str, int]] = {
    NoClustering: {"bookkeeping_cost": 4, "adaptivity": 0,
                   "predictability": 4},
    StaticPolicy: {"bookkeeping_cost": 4, "adaptivity": 0,
                   "predictability": 4},
    DSTCPolicy: {"bookkeeping_cost": 1, "adaptivity": 4,
                 "predictability": 2},
    DROPolicy: {"bookkeeping_cost": 3, "adaptivity": 3,
                "predictability": 3},
}

_JUDGED_NOTES: Dict[type, Dict[str, str]] = {
    DSTCPolicy: {
        "bookkeeping_cost": "full link-crossing matrices (O(edges crossed))",
        "adaptivity": "aging consolidation tracks pattern drift",
    },
    DROPolicy: {
        "bookkeeping_cost": "per-object heat + consecutive transitions only",
    },
    NoClustering: {"adaptivity": "never reorganizes"},
    StaticPolicy: {"adaptivity": "structure only; blind to traffic"},
}


def assess_policy(policy: ClusteringPolicy) -> QualitativeAssessment:
    """Build the qualitative assessment of a policy.

    Derived criteria are computed from the object; judged criteria come
    from the built-in grid (unknown policy types get judged criteria of 0
    — callers can fill them in on the returned object).
    """
    scores = _derived_scores(policy)
    notes: Dict[str, str] = {}
    for policy_type, judged in _JUDGED.items():
        if isinstance(policy, policy_type):
            scores.update(judged)
            notes.update(_JUDGED_NOTES.get(policy_type, {}))
            break
    return QualitativeAssessment(policy_name=policy.name, scores=scores,
                                 notes=notes)


def render_assessments(assessments: List[QualitativeAssessment]) -> str:
    """Render the criteria grid as an ASCII table, one policy per column."""
    if not assessments:
        raise ParameterError("nothing to render")
    headers = ["criterion"] + [a.policy_name for a in assessments]
    rows = []
    for criterion in CRITERIA:
        rows.append([criterion.key] +
                    [a.score(criterion.key) for a in assessments])
    rows.append(["TOTAL"] + [a.total for a in assessments])
    return render_table(headers, rows,
                        title="Qualitative evaluation (0=poor .. 4=excellent)")

"""Clustering policy interface.

A clustering policy watches the workload (inter-object link crossings — the
signal DSTC is built on), and, when asked, proposes a new physical order
for the stored objects.  The policy never touches the store itself: the
:class:`~repro.core.experiment.ClusteringExperiment` (or a workload runner
in auto mode) feeds it access events and applies its proposals, so the same
policy can be evaluated against any store configuration — exactly the
"compare clustering policies on the same basis" goal of the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar, List, Mapping, Optional, Sequence

from repro.store.costs import DEFAULT_PAGE_SIZE

__all__ = ["PlacementContext", "ClusteringPolicy"]


@dataclass(frozen=True)
class Placement:
    """A proposed physical layout.

    ``order`` is the full permutation of stored oids.  ``aligned_groups``
    (optional) lists clustering units that the store should start on page
    boundaries — DSTC's phase 5 materialises each unit in its own page(s),
    which is what makes "I/Os per traversal ≈ units touched" hold.
    Grouped oids must form a prefix of ``order``.
    """

    order: List[int]
    aligned_groups: Optional[List[List[int]]] = None


@dataclass(frozen=True)
class PlacementContext:
    """What a policy may know about the physical layer when proposing.

    ``sizes`` maps each object id to its on-disk byte size; ``page_size``
    bounds clustering units (DSTC sizes units to pages).
    """

    sizes: Mapping[int, int] = field(default_factory=dict)
    page_size: int = DEFAULT_PAGE_SIZE

    def size_of(self, oid: int, default: int = 64) -> int:
        """Byte size of *oid*, with a conservative default."""
        return self.sizes.get(oid, default)


class ClusteringPolicy(ABC):
    """Base class for clustering policies (DSTC, DRO, static placements...)."""

    #: Short name used in reports and CLI flags.
    name: ClassVar[str] = "abstract"

    # ------------------------------------------------------------------ #
    # Observation hooks (called by the workload layer)
    # ------------------------------------------------------------------ #

    def observe_access(self, source: Optional[int], target: int,
                       ref_type: Optional[int] = None) -> None:
        """Record one object access.

        ``source`` is the object whose reference was crossed to reach
        ``target`` (``None`` for root accesses); ``ref_type`` is the OCB
        reference type when known.  The default implementation ignores the
        event (static policies need no statistics).
        """

    def on_transaction_end(self) -> None:
        """Signal that one transaction completed (observation windows)."""

    # ------------------------------------------------------------------ #
    # Reorganization
    # ------------------------------------------------------------------ #

    def wants_reorganization(self) -> bool:
        """Whether the policy has gathered enough evidence to recluster."""
        return False

    @abstractmethod
    def propose_order(self, current_order: Sequence[int],
                      context: PlacementContext) -> Optional[List[int]]:
        """Return a new physical order, or ``None`` to keep the current one.

        The result must be a permutation of *current_order*.
        """

    def propose_placement(self, current_order: Sequence[int],
                          context: PlacementContext) -> Optional[Placement]:
        """Like :meth:`propose_order`, optionally with aligned groups.

        The default wraps :meth:`propose_order` without alignment;
        policies with page-sized clustering units (DSTC) override this.
        """
        order = self.propose_order(current_order, context)
        if order is None:
            return None
        return Placement(order=order)

    def reset_observations(self) -> None:
        """Drop all gathered statistics (fresh benchmark phase)."""

    # ------------------------------------------------------------------ #
    # Description
    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoClustering(ClusteringPolicy):
    """The do-nothing baseline: keep objects wherever they were loaded."""

    name = "none"

    def propose_order(self, current_order: Sequence[int],
                      context: PlacementContext) -> Optional[List[int]]:
        return None

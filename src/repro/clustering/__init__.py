"""Clustering policies: DSTC (the paper's subject), DRO, static baselines."""

from repro.clustering.base import ClusteringPolicy, NoClustering, PlacementContext
from repro.clustering.dro import DROParameters, DROPolicy
from repro.clustering.dstc import ClusteringUnit, DSTCParameters, DSTCPolicy
from repro.clustering.placements import (
    PLACEMENT_STRATEGIES,
    StaticPolicy,
    breadth_first_order,
    by_class_order,
    depth_first_order,
    placement_from_name,
    sequential_order,
)

__all__ = [
    "ClusteringPolicy",
    "NoClustering",
    "PlacementContext",
    "DSTCParameters",
    "DSTCPolicy",
    "ClusteringUnit",
    "DROParameters",
    "DROPolicy",
    "StaticPolicy",
    "PLACEMENT_STRATEGIES",
    "placement_from_name",
    "sequential_order",
    "by_class_order",
    "depth_first_order",
    "breadth_first_order",
]

"""DSTC — the Dynamic, Statistical and Tunable Clustering technique.

Reimplementation of the policy the paper evaluates (Bullat & Schneider,
ECOOP '96; Bullat's 1996 thesis), structured around the five phases the
paper enumerates in Section 4.1:

1. **Observation** — during an *observation period* (a fixed number of
   transactions), every inter-object link crossing is counted in a
   transient **observation matrix**.
2. **Selection** — at the end of the period, only statistically significant
   pairs (count ≥ ``selection_threshold``, the technique's *Tfa*) survive.
3. **Consolidation** — surviving counts are merged into the persistent
   **consolidated matrix** with an aging weight ``consolidation_weight``
   (*w*): ``consolidated = w · old + observed``.
4. **Dynamic cluster reorganization** — consolidated links above
   ``unit_weight_threshold`` (*Tfc*) are sorted by weight and greedily
   merged into **clustering units**, each bounded by ``max_unit_bytes``
   (one disk page by default, as in DSTC).
5. **Physical organization** — units are laid out contiguously at the
   front of the store (heaviest unit first, members ordered by a
   strongest-link-first walk); unclustered objects keep their relative
   order.  The store charges the move as clustering I/O overhead.

Every threshold is a tunable — the "T" in DSTC — exposed through
:class:`DSTCParameters`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.clustering.base import ClusteringPolicy, Placement, PlacementContext
from repro.errors import ParameterError

__all__ = ["DSTCParameters", "ClusteringUnit", "DSTCPolicy"]


@dataclass(frozen=True)
class DSTCParameters:
    """Tuning knobs of DSTC (defaults follow the published prototype)."""

    #: Transactions per observation period (phase 1 window).
    observation_period: int = 100
    #: *Tfa* — minimum link-crossing count for a pair to survive selection.
    selection_threshold: int = 2
    #: *w* — aging weight applied to old consolidated values on update.
    consolidation_weight: float = 0.5
    #: *Tfc* — minimum consolidated weight for a link to seed/extend a unit.
    unit_weight_threshold: float = 2.0
    #: Unit byte budget; ``None`` means one disk page (DSTC's choice).
    max_unit_bytes: Optional[int] = None
    #: Optional cap on the number of units built per reorganization.
    max_units: Optional[int] = None
    #: Reorganize automatically after this many transactions (``None`` =
    #: only when the experiment asks, i.e. "when the system is idle").
    trigger_period: Optional[int] = None
    #: Unit construction strategy: ``"greedy"`` merges the heaviest links
    #: first under the page budget (DSTC's per-starter unit growth);
    #: ``"component-walk"`` lays whole co-usage components out along a
    #: strongest-link walk before chunking (useful when co-usage
    #: neighbourhoods are disjoint).
    unit_strategy: str = "greedy"

    def __post_init__(self) -> None:
        if self.observation_period < 1:
            raise ParameterError("observation_period must be >= 1, got "
                                 f"{self.observation_period}")
        if self.selection_threshold < 1:
            raise ParameterError("selection_threshold must be >= 1, got "
                                 f"{self.selection_threshold}")
        if not 0.0 <= self.consolidation_weight <= 1.0:
            raise ParameterError("consolidation_weight must be in [0, 1], "
                                 f"got {self.consolidation_weight}")
        if self.unit_weight_threshold < 0.0:
            raise ParameterError("unit_weight_threshold must be >= 0, got "
                                 f"{self.unit_weight_threshold}")
        if self.max_unit_bytes is not None and self.max_unit_bytes < 1:
            raise ParameterError("max_unit_bytes must be >= 1, got "
                                 f"{self.max_unit_bytes}")
        if self.max_units is not None and self.max_units < 1:
            raise ParameterError(f"max_units must be >= 1, got {self.max_units}")
        if self.trigger_period is not None and self.trigger_period < 1:
            raise ParameterError("trigger_period must be >= 1, got "
                                 f"{self.trigger_period}")
        if self.unit_strategy not in ("greedy", "component-walk"):
            raise ParameterError(
                "unit_strategy must be 'greedy' or 'component-walk', got "
                f"{self.unit_strategy!r}")


@dataclass
class ClusteringUnit:
    """One clustering unit: an ordered run of objects placed contiguously."""

    members: List[int]
    weight: float

    def __len__(self) -> int:
        return len(self.members)


class DSTCPolicy(ClusteringPolicy):
    """The DSTC dynamic clustering policy."""

    name = "dstc"

    def __init__(self, parameters: Optional[DSTCParameters] = None) -> None:
        self.parameters = parameters or DSTCParameters()
        self._observation: Dict[Tuple[int, int], int] = {}
        self._consolidated: Dict[Tuple[int, int], float] = {}
        self._transactions = 0
        self._since_reorganization = 0
        self.observation_flushes = 0
        self.reorganizations = 0

    # ------------------------------------------------------------------ #
    # Phase 1 — observation
    # ------------------------------------------------------------------ #

    def observe_access(self, source: Optional[int], target: int,
                       ref_type: Optional[int] = None) -> None:
        if source is None or source == target:
            return
        key = (source, target)
        self._observation[key] = self._observation.get(key, 0) + 1

    def on_transaction_end(self) -> None:
        self._transactions += 1
        self._since_reorganization += 1
        if self._transactions % self.parameters.observation_period == 0:
            self._select_and_consolidate()

    # ------------------------------------------------------------------ #
    # Phases 2 & 3 — selection and consolidation
    # ------------------------------------------------------------------ #

    def _select_and_consolidate(self) -> None:
        """End-of-period bookkeeping: filter, then merge with aging."""
        threshold = self.parameters.selection_threshold
        weight = self.parameters.consolidation_weight
        consolidated = self._consolidated
        for pair, count in self._observation.items():
            if count >= threshold:
                old = consolidated.get(pair, 0.0)
                consolidated[pair] = weight * old + count
        self._observation.clear()
        self.observation_flushes += 1

    def flush_observations(self) -> None:
        """Force an end-of-period selection/consolidation (idle trigger)."""
        if self._observation:
            self._select_and_consolidate()

    # ------------------------------------------------------------------ #
    # Phase 4 — building clustering units
    # ------------------------------------------------------------------ #

    def build_units(self, context: PlacementContext) -> List[ClusteringUnit]:
        """Unit construction from the consolidated matrix.

        The consolidated link graph is first decomposed into connected
        components (the co-usage neighbourhoods — a traversal's whole
        path lands in one component).  Each component is ordered by a
        strongest-link-first walk, then chopped into page-bounded
        clustering units.  Because :meth:`propose_order` lays units out
        in this exact sequence, a component ends up *contiguous* on disk
        — which is what lets a replayed traversal fault in only
        ``unique_bytes / page_size`` pages.
        """
        params = self.parameters
        budget = params.max_unit_bytes or context.page_size

        # Symmetrise: co-location is direction-free.
        weights: Dict[Tuple[int, int], float] = {}
        for (a, b), value in self._consolidated.items():
            if value < params.unit_weight_threshold:
                continue
            key = (a, b) if a < b else (b, a)
            weights[key] = weights.get(key, 0.0) + value
        if not weights:
            return []

        if params.unit_strategy == "greedy":
            units = self._greedy_units(weights, budget, context)
        else:
            units = self._component_walk_units(weights, budget, context)
        if params.max_units is not None:
            units = units[:params.max_units]
        return units

    def _greedy_units(self, weights: Dict[Tuple[int, int], float],
                      budget: int, context: PlacementContext
                      ) -> List[ClusteringUnit]:
        """Merge the heaviest co-usage links first, under the page budget.

        This mirrors DSTC's unit growth: the most significant links seed
        units, which absorb neighbours until a unit would no longer fit
        in a page.  Members are then ordered by a strongest-link walk so
        intra-unit layout follows the hot path.
        """
        edges = [(value, a, b) for (a, b), value in weights.items()]
        edges.sort(key=lambda edge: (-edge[0], edge[1], edge[2]))

        parent: Dict[int, int] = {}
        size: Dict[int, int] = {}
        gain: Dict[int, float] = {}

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:  # Path compression.
                parent[x], x = root, parent[x]
            return root

        def ensure(x: int) -> None:
            if x not in parent:
                parent[x] = x
                size[x] = context.size_of(x)
                gain[x] = 0.0

        for value, a, b in edges:
            ensure(a)
            ensure(b)
            ra, rb = find(a), find(b)
            if ra == rb:
                gain[ra] += value
                continue
            if size[ra] + size[rb] > budget:
                continue
            parent[rb] = ra
            size[ra] += size[rb]
            gain[ra] += gain[rb] + value

        groups: Dict[int, List[int]] = {}
        for node in parent:
            groups.setdefault(find(node), []).append(node)

        adjacency: Dict[int, List[Tuple[float, int]]] = {}
        for (a, b), value in weights.items():
            adjacency.setdefault(a, []).append((value, b))
            adjacency.setdefault(b, []).append((value, a))

        units = []
        for root, members in groups.items():
            if len(members) < 2:
                continue
            ordered = self._strongest_walk(sorted(members), adjacency)
            units.append(ClusteringUnit(members=ordered, weight=gain[root]))
        units.sort(key=lambda u: (-u.weight, u.members[0]))
        return self._chain_units(units, weights)

    @staticmethod
    def _chain_units(units: List[ClusteringUnit],
                     weights: Dict[Tuple[int, int], float]
                     ) -> List[ClusteringUnit]:
        """Order units so strongly linked units are physically adjacent.

        Several page-bounded units serve the same access pattern (one
        traversal splits into many units).  Since the store packs
        consecutive units into the same pages when they fit, chaining by
        inter-unit link weight keeps each pattern's units together —
        without it, pages mix units of unrelated patterns and the
        clustering gain evaporates.
        """
        if len(units) <= 2:
            return units
        unit_of: Dict[int, int] = {}
        for index, unit in enumerate(units):
            for member in unit.members:
                unit_of[member] = index
        inter: Dict[int, Dict[int, float]] = {}
        for (a, b), value in weights.items():
            ua, ub = unit_of.get(a), unit_of.get(b)
            if ua is None or ub is None or ua == ub:
                continue
            inter.setdefault(ua, {})[ub] = inter.get(ua, {}).get(ub, 0.0) + value
            inter.setdefault(ub, {})[ua] = inter.get(ub, {}).get(ua, 0.0) + value

        remaining = set(range(len(units)))
        chained: List[ClusteringUnit] = []
        current: Optional[int] = None
        while remaining:
            if current is None or not inter.get(current):
                # Start (or restart) from the heaviest unplaced unit.
                current = min(remaining,
                              key=lambda i: (-units[i].weight,
                                             units[i].members[0]))
            else:
                candidates = [(v, i) for i, v in inter[current].items()
                              if i in remaining]
                if candidates:
                    candidates.sort(key=lambda edge: (-edge[0], edge[1]))
                    current = candidates[0][1]
                else:
                    current = min(remaining,
                                  key=lambda i: (-units[i].weight,
                                                 units[i].members[0]))
            remaining.discard(current)
            chained.append(units[current])
        return chained

    def _component_walk_units(self, weights: Dict[Tuple[int, int], float],
                              budget: int, context: PlacementContext
                              ) -> List[ClusteringUnit]:
        """Whole-component walks chunked into page-sized units."""
        adjacency: Dict[int, List[Tuple[float, int]]] = {}
        for (a, b), value in weights.items():
            adjacency.setdefault(a, []).append((value, b))
            adjacency.setdefault(b, []).append((value, a))

        components = self._connected_components(adjacency)
        component_rank = []
        for members in components:
            total = sum(value for (a, b), value in weights.items()
                        if a in members)
            component_rank.append((total, sorted(members)))
        component_rank.sort(key=lambda item: (-item[0], item[1][0]))

        units: List[ClusteringUnit] = []
        for total, members in component_rank:
            if len(members) < 2:
                continue
            ordered = self._strongest_walk(members, adjacency)
            units.extend(self._chunk(ordered, total, budget, context))
        return units

    @staticmethod
    def _connected_components(
            adjacency: Dict[int, List[Tuple[float, int]]]
    ) -> List[Set[int]]:
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in adjacency:
            if start in seen:
                continue
            component = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for _value, neighbour in adjacency[node]:
                    if neighbour not in component:
                        component.add(neighbour)
                        stack.append(neighbour)
            seen |= component
            components.append(component)
        return components

    @staticmethod
    def _strongest_walk(members: List[int],
                        adjacency: Dict[int, List[Tuple[float, int]]]
                        ) -> List[int]:
        """Prim-style walk: always extend with the strongest reachable link."""
        member_set = set(members)
        start = max(members,
                    key=lambda m: (sum(v for v, _ in adjacency.get(m, ())), -m))
        ordered = [start]
        placed = {start}
        heap: List[Tuple[float, int, int]] = []
        tie = 0
        for value, neighbour in adjacency.get(start, ()):
            tie += 1
            heapq.heappush(heap, (-value, tie, neighbour))
        while heap and len(ordered) < len(member_set):
            _negv, _tie, node = heapq.heappop(heap)
            if node in placed or node not in member_set:
                continue
            placed.add(node)
            ordered.append(node)
            for value, neighbour in adjacency.get(node, ()):
                if neighbour not in placed:
                    tie += 1
                    heapq.heappush(heap, (-value, tie, neighbour))
        for node in sorted(member_set - placed):  # Defensive; unreachable.
            ordered.append(node)
        return ordered

    def _chunk(self, ordered: List[int], component_weight: float,
               budget: int, context: PlacementContext
               ) -> List[ClusteringUnit]:
        """Split a component walk into page-bounded clustering units."""
        units: List[ClusteringUnit] = []
        current: List[int] = []
        current_bytes = 0
        for oid in ordered:
            size = context.size_of(oid)
            if current and current_bytes + size > budget:
                units.append(ClusteringUnit(members=current,
                                            weight=component_weight))
                current = []
                current_bytes = 0
            current.append(oid)
            current_bytes += size
        if current:
            units.append(ClusteringUnit(members=current,
                                        weight=component_weight))
        return units

    # ------------------------------------------------------------------ #
    # Phase 5 — physical order proposal
    # ------------------------------------------------------------------ #

    def wants_reorganization(self) -> bool:
        trigger = self.parameters.trigger_period
        if trigger is None:
            return False
        return (self._since_reorganization >= trigger
                and bool(self._consolidated or self._observation))

    def propose_order(self, current_order: Sequence[int],
                      context: PlacementContext) -> Optional[List[int]]:
        placement = self.propose_placement(current_order, context)
        return placement.order if placement is not None else None

    def propose_placement(self, current_order: Sequence[int],
                          context: PlacementContext) -> Optional[Placement]:
        self.flush_observations()
        units = self.build_units(context)
        if not units:
            return None
        present = set(current_order)
        groups: List[List[int]] = []
        clustered_set: Set[int] = set()
        for unit in units:
            members = [oid for oid in unit.members
                       if oid in present and oid not in clustered_set]
            if not members:
                continue
            groups.append(members)
            clustered_set.update(members)
        if not groups:
            return None
        clustered = [oid for group in groups for oid in group]
        remainder = [oid for oid in current_order if oid not in clustered_set]
        self.reorganizations += 1
        self._since_reorganization = 0
        return Placement(order=clustered + remainder, aligned_groups=groups)

    # ------------------------------------------------------------------ #
    # Introspection & lifecycle
    # ------------------------------------------------------------------ #

    @property
    def observation_size(self) -> int:
        """Pairs currently in the transient observation matrix."""
        return len(self._observation)

    @property
    def consolidated_size(self) -> int:
        """Pairs currently in the persistent consolidated matrix."""
        return len(self._consolidated)

    def consolidated_weight(self, source: int, target: int) -> float:
        """Consolidated statistic for a directed pair (0.0 if absent)."""
        return self._consolidated.get((source, target), 0.0)

    def reset_observations(self) -> None:
        self._observation.clear()
        self._consolidated.clear()
        self._transactions = 0
        self._since_reorganization = 0

    def describe(self) -> str:
        p = self.parameters
        return (f"DSTC(period={p.observation_period}, Tfa={p.selection_threshold}, "
                f"w={p.consolidation_weight:g}, Tfc={p.unit_weight_threshold:g})")

    def __repr__(self) -> str:
        return f"DSTCPolicy({self.parameters!r})"

"""Static placement strategies.

These compute an object order from the *structure* of the database (not
from usage statistics) and serve two purposes:

* as **initial placements** when a generated database is bulk-loaded, and
* as **baseline clustering policies** (wrapped in :class:`StaticPolicy`)
  against which dynamic policies like DSTC are compared — the classic
  static strategies studied by Tsangaris & Naughton (SIGMOD '92), which the
  paper cites as the origin of its traversal workload.

All functions take a mapping ``oid -> StoredObject`` and return a
deterministic permutation of the oids.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.clustering.base import ClusteringPolicy, PlacementContext
from repro.errors import ClusteringError
from repro.store.serializer import StoredObject

__all__ = [
    "sequential_order",
    "by_class_order",
    "depth_first_order",
    "breadth_first_order",
    "PLACEMENT_STRATEGIES",
    "placement_from_name",
    "StaticPolicy",
]

Records = Mapping[int, StoredObject]


def sequential_order(records: Records,
                     roots: Optional[Sequence[int]] = None) -> List[int]:
    """Creation (oid) order — what a store does with no clustering at all."""
    return sorted(records)


def by_class_order(records: Records,
                   roots: Optional[Sequence[int]] = None) -> List[int]:
    """Group objects of the same class together (type-level clustering)."""
    return sorted(records, key=lambda oid: (records[oid].cid, oid))


def depth_first_order(records: Records,
                      roots: Optional[Sequence[int]] = None) -> List[int]:
    """DFS over forward references — Tsangaris/Naughton's depth-first
    placement, a good static match for navigational workloads."""
    return _graph_order(records, roots, depth_first=True)


def breadth_first_order(records: Records,
                        roots: Optional[Sequence[int]] = None) -> List[int]:
    """BFS over forward references — matches set-oriented access patterns."""
    return _graph_order(records, roots, depth_first=False)


def _graph_order(records: Records, roots: Optional[Sequence[int]],
                 depth_first: bool) -> List[int]:
    if roots is None:
        roots = sorted(records)
    order: List[int] = []
    seen: Dict[int, bool] = {}
    for root in roots:
        if root not in records or root in seen:
            continue
        frontier: deque = deque([root])
        seen[root] = True
        while frontier:
            oid = frontier.pop() if depth_first else frontier.popleft()
            order.append(oid)
            record = records[oid]
            targets = [t for t in record.refs if t is not None]
            if depth_first:
                # Reverse so the first reference is explored first.
                targets = targets[::-1]
            for target in targets:
                if target in records and target not in seen:
                    seen[target] = True
                    frontier.append(target)
    # Objects unreachable from any root keep their oid order at the end.
    for oid in sorted(records):
        if oid not in seen:
            order.append(oid)
    return order


#: Name -> placement function registry (CLI / presets).
PLACEMENT_STRATEGIES: Dict[str, Callable[..., List[int]]] = {
    "sequential": sequential_order,
    "by_class": by_class_order,
    "depth_first": depth_first_order,
    "breadth_first": breadth_first_order,
}


def placement_from_name(name: str) -> Callable[..., List[int]]:
    """Look up a placement strategy by name."""
    try:
        return PLACEMENT_STRATEGIES[name.strip().lower()]
    except KeyError:
        raise ClusteringError(
            f"unknown placement {name!r}; choose from "
            f"{sorted(PLACEMENT_STRATEGIES)}") from None


class StaticPolicy(ClusteringPolicy):
    """A clustering policy that always proposes one static placement.

    Useful as a baseline in policy comparisons: it ignores the workload and
    reorganizes the database according to pure structure.
    """

    name = "static"

    def __init__(self, records: Records, strategy: str = "depth_first",
                 roots: Optional[Sequence[int]] = None) -> None:
        self._records = dict(records)
        self._strategy_name = strategy
        self._strategy = placement_from_name(strategy)
        self._roots = list(roots) if roots is not None else None
        self.name = f"static-{strategy}"

    def propose_order(self, current_order: Sequence[int],
                      context: PlacementContext) -> Optional[List[int]]:
        order = self._strategy(self._records, self._roots)
        present = set(current_order)
        filtered = [oid for oid in order if oid in present]
        missing = [oid for oid in current_order if oid not in set(filtered)]
        return filtered + sorted(missing)

    def describe(self) -> str:
        return f"static placement ({self._strategy_name})"

"""DRO-style clustering — a lighter dynamic policy (extension).

The paper's conclusion calls for "the benchmarking of several different
clustering techniques for the sake of performance comparison".  DRO
(*Detection & Reorganization of Objects*), proposed later by the same
group, is the natural second dynamic policy: it keeps **per-object heat**
(access frequency) and **consecutive-access transitions** instead of DSTC's
full link-crossing matrices, making its bookkeeping far cheaper.

The variant implemented here:

* observation: each access bumps the target's heat; each *consecutive*
  pair of accesses inside a transaction bumps a transition counter;
* detection: objects with heat ≥ ``min_heat`` are "active";
* reorganization: starting from the hottest active object, follow the
  strongest transition chain (page-bounded, like DSTC units), then restart
  from the next hottest unplaced active object; cold objects keep their
  current relative order at the back.

It is deliberately greedier and cheaper than DSTC — exactly the contrast a
policy shoot-out bench wants to show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clustering.base import ClusteringPolicy, PlacementContext
from repro.errors import ParameterError

__all__ = ["DROParameters", "DROPolicy"]


@dataclass(frozen=True)
class DROParameters:
    """Tuning knobs of the DRO-style policy."""

    #: Minimum access count for an object to take part in reorganization.
    min_heat: int = 2
    #: Minimum transition count for a chain link to be followed.
    min_transition: int = 2
    #: Byte budget of one clustered run; ``None`` = one disk page.
    max_run_bytes: Optional[int] = None
    #: Exponential decay applied to heat/transitions on each flush.
    decay: float = 1.0

    def __post_init__(self) -> None:
        if self.min_heat < 1:
            raise ParameterError(f"min_heat must be >= 1, got {self.min_heat}")
        if self.min_transition < 1:
            raise ParameterError(
                f"min_transition must be >= 1, got {self.min_transition}")
        if self.max_run_bytes is not None and self.max_run_bytes < 1:
            raise ParameterError(
                f"max_run_bytes must be >= 1, got {self.max_run_bytes}")
        if not 0.0 < self.decay <= 1.0:
            raise ParameterError(f"decay must be in (0, 1], got {self.decay}")


class DROPolicy(ClusteringPolicy):
    """Heat-and-transition clustering, cheaper than DSTC."""

    name = "dro"

    def __init__(self, parameters: Optional[DROParameters] = None) -> None:
        self.parameters = parameters or DROParameters()
        self._heat: Dict[int, float] = {}
        self._transitions: Dict[Tuple[int, int], float] = {}
        self._previous: Optional[int] = None
        self.reorganizations = 0

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def observe_access(self, source: Optional[int], target: int,
                       ref_type: Optional[int] = None) -> None:
        self._heat[target] = self._heat.get(target, 0.0) + 1.0
        previous = self._previous
        if previous is not None and previous != target:
            key = (previous, target)
            self._transitions[key] = self._transitions.get(key, 0.0) + 1.0
        self._previous = target

    def on_transaction_end(self) -> None:
        # Transitions never span transactions.
        self._previous = None
        decay = self.parameters.decay
        if decay < 1.0:
            for key in list(self._heat):
                self._heat[key] *= decay
            for key in list(self._transitions):
                self._transitions[key] *= decay

    # ------------------------------------------------------------------ #
    # Reorganization
    # ------------------------------------------------------------------ #

    def propose_order(self, current_order: Sequence[int],
                      context: PlacementContext) -> Optional[List[int]]:
        params = self.parameters
        active = [oid for oid, heat in self._heat.items()
                  if heat >= params.min_heat and oid in set(current_order)]
        if not active:
            return None

        # Symmetric transition weights for chain building.
        weights: Dict[Tuple[int, int], float] = {}
        for (a, b), value in self._transitions.items():
            if value < params.min_transition:
                continue
            key = (a, b) if a < b else (b, a)
            weights[key] = weights.get(key, 0.0) + value
        neighbours: Dict[int, List[Tuple[float, int]]] = {}
        for (a, b), value in weights.items():
            neighbours.setdefault(a, []).append((value, b))
            neighbours.setdefault(b, []).append((value, a))

        budget = params.max_run_bytes or context.page_size
        active.sort(key=lambda oid: (-self._heat[oid], oid))
        placed: List[int] = []
        placed_set = set()
        for seed in active:
            if seed in placed_set:
                continue
            run_bytes = context.size_of(seed)
            placed.append(seed)
            placed_set.add(seed)
            current = seed
            while True:
                candidates = [(v, m) for v, m in neighbours.get(current, ())
                              if m not in placed_set]
                if not candidates:
                    break
                candidates.sort(key=lambda edge: (-edge[0], edge[1]))
                value, nxt = candidates[0]
                nxt_bytes = context.size_of(nxt)
                if run_bytes + nxt_bytes > budget:
                    break
                placed.append(nxt)
                placed_set.add(nxt)
                run_bytes += nxt_bytes
                current = nxt

        remainder = [oid for oid in current_order if oid not in placed_set]
        self.reorganizations += 1
        return placed + remainder

    # ------------------------------------------------------------------ #
    # Introspection & lifecycle
    # ------------------------------------------------------------------ #

    @property
    def tracked_objects(self) -> int:
        """Objects with non-zero heat."""
        return len(self._heat)

    @property
    def tracked_transitions(self) -> int:
        """Transition pairs currently tracked."""
        return len(self._transitions)

    def heat_of(self, oid: int) -> float:
        """Current heat of *oid* (0.0 if never accessed)."""
        return self._heat.get(oid, 0.0)

    def reset_observations(self) -> None:
        self._heat.clear()
        self._transitions.clear()
        self._previous = None

    def describe(self) -> str:
        p = self.parameters
        return (f"DRO(min_heat={p.min_heat}, min_transition={p.min_transition}, "
                f"decay={p.decay:g})")

"""``ocb`` — command-line front end for the OCB reproduction.

Subcommands::

    ocb info                      package / experiment overview
    ocb presets                   list parameter presets
    ocb backends                  list registered storage backends
    ocb generate  [--preset P]    generate a database, print statistics
    ocb run       [--preset P]    generate + run the cold/warm protocol
    ocb ops       [--preset P]    run the generic operation mix
    ocb scenario  NAME|SPEC.json  run a declarative WorkloadMix scenario
                                  (presets: ocb scenario --list;
                                  --processes N for real OS processes —
                                  mutating mixes genuinely contend)
    ocb multiuser [--preset P]    run CLIENTN clients (in-process, or
                                  --processes N for real OS processes
                                  against shared WAL storage)
    ocb scale     [--workers ...] worker-count sweep: throughput scaling
                                  + contention table
    ocb bench     [--spec FILE]   run the resource-monitored experiment
                                  matrix, persist BENCH_<date>.json and
                                  optionally --compare BASELINE.json
                                  (exit code 2 on regression)
    ocb loadtest  [NAME]          open-loop offered-rate sweep against a
                                  scenario (--rate A,B,C): coordinated-
                                  omission-correct response vs service
                                  latency, saturation-knee detection,
                                  DES predicted-vs-measured waits;
                                  persists a load_sweep document with
                                  the same --compare regression gate
    ocb tables --id {1,2,3}       print the paper's parameter tables
    ocb fig4                      reproduce Figure 4 (creation time)
    ocb table4                    reproduce Table 4 (DSTC-CluB vs OCB)
    ocb table5                    reproduce Table 5 (OCB defaults)

Every execution command (``run``, ``ops``, ``multiuser``) goes through
the unified kernel and accepts ``--backend NAME`` (see ``ocb
backends``) to target any registered storage engine; runs against real
engines report wall-clock latency percentiles next to the simulated
costs, and ``run --cold-start`` drops the engine's caches first so the
cold phase is honest on engines that can evict state.  All experiment
commands accept ``--scale``-style size flags so the full paper-scale
runs (slow in pure Python) remain one flag away.

``run``, ``ops`` and ``scenario`` accept ``--json`` to emit a single
machine-readable JSON document instead of the tables (flat metric
mappings, the same emission convention as ``ocb scale --json``).

``run``, ``ops``, ``scenario`` and ``bench`` accept ``--trace FILE`` to
stream per-operation trace records (:mod:`repro.obs.trace`) to a JSONL
file; a per-name summary lands on stderr after the run.  ``run``,
``ops``, ``scenario`` and ``loadtest`` accept ``--profile FILE`` to
cProfile the whole command (:mod:`repro.obs.profiler`): a JSON report
of per-function cumulative times goes to FILE and the top functions to
stderr — the tool that shows ``decode_object`` falling off the hot
path under the lazy record mode (``ocb scenario --lazy``).  ``ocb scale
--json`` and ``ocb bench`` emit the one schema-versioned document shape
of :mod:`repro.obs.results` (see ``docs/bench_schema.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro._version import __version__
from repro.backends import available_backends, backend_names, create_backend
from repro.core.benchmark import OCBBenchmark
from repro.core.generation import generate_database
from repro.core.presets import (
    PRESETS,
    default_database_parameters,
    default_workload_parameters,
    dstc_club_database_parameters,
    preset,
)
from repro.experiments import (
    fig4_series,
    run_fig4,
    run_table4,
    run_table5,
    render_table4,
    render_table5,
)
from repro.reporting.figures import render_line_chart, render_series_table
from repro.reporting.tables import render_kv, render_table
from repro.store.storage import StoreConfig

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The complete argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="ocb",
        description="OCB, the Object Clustering Benchmark (EDBT '98) — "
                    "Python reproduction")
    parser.add_argument("--version", action="version",
                        version=f"ocb {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and experiment overview")
    sub.add_parser("presets", help="list parameter presets")
    sub.add_parser("backends", help="list registered storage backends")

    generate = sub.add_parser("generate", help="generate a database")
    generate.add_argument("--preset", default="default-small",
                          choices=sorted(PRESETS))
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--validate", action="store_true",
                          help="run structural validation after generation")
    generate.add_argument("--backend", default=None,
                          choices=backend_names(),
                          help="also bulk-load the database into this "
                               "backend and report load statistics")
    generate.add_argument("--sqlite-path", default=":memory:",
                          help="database file for --backend sqlite "
                               "(default: in-memory)")

    run = sub.add_parser("run", help="generate and run the workload")
    run.add_argument("--preset", default="default-small",
                     choices=sorted(PRESETS))
    run.add_argument("--buffer-pages", type=int, default=128)
    run.add_argument("--placement", default="sequential",
                     choices=("sequential", "by_class", "depth_first",
                              "breadth_first"))
    run.add_argument("--backend", default="simulated",
                     choices=backend_names(),
                     help="storage engine to drive (default: simulated)")
    run.add_argument("--sqlite-path", default=":memory:",
                     help="database file for --backend sqlite "
                          "(default: in-memory)")
    run.add_argument("--cold-start", action="store_true",
                     help="drop the engine's caches before the cold run "
                          "(honest cold measurements on engines that "
                          "support cache eviction)")
    run.add_argument("--json", action="store_true",
                     help="emit one machine-readable JSON document "
                          "instead of the tables")
    run.add_argument("--trace", default=None, metavar="FILE",
                     help="stream per-operation trace records to a "
                          "JSONL file (summary on stderr)")
    run.add_argument("--profile", default=None, metavar="FILE",
                     help="cProfile the whole command; JSON report to "
                          "FILE, top functions on stderr")

    ops = sub.add_parser("ops", help="run the generic operation mix "
                                     "(insert/update/delete/range/scan)")
    ops.add_argument("--preset", default="default-small",
                     choices=sorted(PRESETS))
    ops.add_argument("--operations", type=int, default=50,
                     help="number of operations to draw from the mix")
    ops.add_argument("--backend", default="simulated",
                     choices=backend_names(),
                     help="storage engine to drive (default: simulated)")
    ops.add_argument("--sqlite-path", default=":memory:",
                     help="database file for --backend sqlite "
                          "(default: in-memory)")
    ops.add_argument("--json", action="store_true",
                     help="emit one machine-readable JSON document "
                          "instead of the tables")
    ops.add_argument("--trace", default=None, metavar="FILE",
                     help="stream per-operation trace records to a "
                          "JSONL file (summary on stderr)")
    ops.add_argument("--profile", default=None, metavar="FILE",
                     help="cProfile the whole command; JSON report to "
                          "FILE, top functions on stderr")

    scenario = sub.add_parser(
        "scenario", help="run a declarative WorkloadMix scenario "
                         "(a named preset or a JSON spec file)")
    scenario.add_argument("name", nargs="?", default=None,
                          metavar="NAME|SPEC.json",
                          help="scenario preset name (see --list) or a "
                               "path to a JSON spec file")
    scenario.add_argument("--list", action="store_true",
                          help="list the scenario presets and exit")
    scenario.add_argument("--preset", default="default-small",
                          choices=sorted(PRESETS),
                          help="database preset generating the object "
                               "graph (default: default-small)")
    scenario.add_argument("--backend", default=None,
                          choices=backend_names(),
                          help="override the scenario's storage engine")
    scenario.add_argument("--clients", type=int, default=None,
                          help="override the scenario's client count "
                               "(in-process round-robin)")
    scenario.add_argument("--processes", type=int, default=None,
                          metavar="N",
                          help="run N clients as real OS processes "
                               "against shared storage (mutating mixes "
                               "genuinely contend; overrides --clients)")
    scenario.add_argument("--cold", type=int, default=None, metavar="N",
                          help="override the scenario's cold-phase size")
    scenario.add_argument("--warm", type=int, default=None, metavar="N",
                          help="override the scenario's warm-phase size")
    scenario.add_argument("--seed", type=int, default=None,
                          help="workload RNG seed (default: the "
                               "database seed)")
    scenario.add_argument("--sqlite-path", default=":memory:",
                          help="database file for --backend sqlite, or "
                               "shard directory for sharded-sqlite "
                               "(default: in-memory; process runs "
                               "replace ':memory:' with a temp path)")
    scenario.add_argument("--shards", type=int, default=None, metavar="N",
                          help="shard count for --backend sharded-sqlite "
                               "(default: the worker count of a process "
                               "run, else 4)")
    scenario.add_argument("--journal-mode", default="WAL",
                          help="journal mode for shared SQLite files "
                               "(default: WAL)")
    scenario.add_argument("--busy-timeout", type=int, default=5000,
                          metavar="MS",
                          help="per-connection busy budget in ms for "
                               "shared storage (default: 5000)")
    scenario.add_argument("--lazy", action="store_true",
                          help="serve reads as zero-copy lazy records "
                               "(identical logical results, no record "
                               "decode on access)")
    scenario.add_argument("--pipeline", action="store_true",
                          help="pipelined BFS: keep the next frontier "
                               "chunk's read in flight while the current "
                               "chunk is filtered (engines with the "
                               "'pipelined' capability)")
    scenario.add_argument("--pool-size", type=int, default=None,
                          metavar="N",
                          help="read-connection pool width for "
                               "pipelined-sqlite / sharded-sqlite "
                               "(default: 2)")
    scenario.add_argument("--concurrent-fanout", action="store_true",
                          help="sharded-sqlite only: execute multi-shard "
                               "read batches concurrently, one pooled "
                               "connection per touched shard")
    scenario.add_argument("--json", action="store_true",
                          help="emit one machine-readable JSON document "
                               "instead of the tables")
    scenario.add_argument("--trace", default=None, metavar="FILE",
                          help="stream per-operation trace records to a "
                               "JSONL file (summary on stderr)")
    scenario.add_argument("--profile", default=None, metavar="FILE",
                          help="cProfile the whole command; JSON report "
                               "to FILE, top functions on stderr")

    multiuser = sub.add_parser(
        "multiuser", help="run CLIENTN clients against one shared engine "
                          "(round-robin in-process, or --processes for "
                          "real OS processes)")
    multiuser.add_argument("--preset", default="default-small",
                           choices=sorted(PRESETS))
    multiuser.add_argument("--clients", type=int, default=4)
    multiuser.add_argument("--backend", default="simulated",
                           choices=backend_names(),
                           help="storage engine to drive "
                                "(default: simulated)")
    multiuser.add_argument("--sqlite-path", default=":memory:",
                           help="database file for --backend sqlite, or "
                                "shard directory for sharded-sqlite "
                                "(default: in-memory; process runs "
                                "replace ':memory:' with a temp path)")
    multiuser.add_argument("--shards", type=int, default=None, metavar="N",
                           help="shard count for --backend sharded-sqlite "
                                "(default: the client count)")
    multiuser.add_argument("--processes", type=int, default=None,
                           metavar="N",
                           help="run N clients as real OS processes "
                                "against shared storage instead of "
                                "interleaving them in-process "
                                "(overrides --clients)")
    multiuser.add_argument("--journal-mode", default="WAL",
                           help="journal mode for shared SQLite files "
                                "(default: WAL)")
    multiuser.add_argument("--busy-timeout", type=int, default=5000,
                           metavar="MS",
                           help="per-connection busy budget in ms for "
                                "shared storage (default: 5000)")

    scale = sub.add_parser(
        "scale", help="sweep worker-process counts and print the "
                      "throughput-scaling table")
    scale.add_argument("--preset", default="default-small",
                       choices=sorted(PRESETS))
    scale.add_argument("--backend", default="sqlite",
                       choices=backend_names(),
                       help="storage engine to drive (default: sqlite)")
    scale.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                       help="worker counts to sweep (default: 1 2 4)")
    scale.add_argument("--sqlite-path", default=":memory:",
                       help="database file for --backend sqlite, or "
                            "shard directory for sharded-sqlite "
                            "(default: one shared temp path loaded once "
                            "and reused across the whole sweep)")
    scale.add_argument("--shards", type=int, default=None, metavar="N",
                       help="shard count for --backend sharded-sqlite, "
                            "fixed across the sweep (default: the "
                            "largest worker count)")
    scale.add_argument("--journal-mode", default="WAL",
                       help="journal mode for shared SQLite files "
                            "(default: WAL)")
    scale.add_argument("--busy-timeout", type=int, default=5000,
                       metavar="MS",
                       help="per-connection busy budget in ms "
                            "(default: 5000)")
    scale.add_argument("--json", action="store_true",
                       help="also emit the sweep as one schema-versioned "
                            "BENCH document (kind 'scale_sweep')")

    bench = sub.add_parser(
        "bench", help="run the resource-monitored experiment matrix and "
                      "persist the perf trajectory (BENCH_<date>.json)")
    bench.add_argument("--spec", default=None, metavar="FILE",
                       help="JSON MatrixSpec file (default: the built-in "
                            "2-cell tiny matrix)")
    bench.add_argument("--shard-counts", type=int, nargs="+", default=None,
                       metavar="N",
                       help="add a shard axis: run every cell of a "
                            "'sharded'-capable backend once per count "
                            "(cell keys gain a /sN segment)")
    bench.add_argument("--out", default=None, metavar="FILE",
                       help="output path (default: BENCH_<date>.json in "
                            "the current directory)")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="diff the result against a committed "
                            "BENCH_*.json; exit code 2 on regression")
    bench.add_argument("--current", default=None, metavar="FILE",
                       help="compare/render an existing document instead "
                            "of running the matrix")
    bench.add_argument("--tolerance", type=float, default=0.5,
                       help="relative tolerance band for the perf gates "
                            "(default: 0.5 = 50%%)")
    bench.add_argument("--json", action="store_true",
                       help="print the document to stdout as well")
    bench.add_argument("--trace", default=None, metavar="FILE",
                       help="stream per-operation trace records to a "
                            "JSONL file (summary on stderr)")

    loadtest = sub.add_parser(
        "loadtest", help="open-loop offered-rate sweep against a "
                         "scenario: coordinated-omission-correct "
                         "latency, saturation knee, DES-predicted "
                         "waits (persists a load_sweep document)")
    loadtest.add_argument("name", nargs="?", default="mixed_oltp",
                          metavar="NAME|SPEC.json",
                          help="scenario preset name or JSON spec file "
                               "(default: mixed_oltp)")
    loadtest.add_argument("--rate", nargs="+", default=["25,100,400"],
                          metavar="A[,B,...]",
                          help="offered arrival rates in op/s, space- or "
                               "comma-separated (default: 25,100,400)")
    loadtest.add_argument("--ops", type=int, default=None, metavar="N",
                          help="paced arrivals per rate (default: the "
                               "scenario's warm-phase size)")
    loadtest.add_argument("--arrivals", default="poisson",
                          choices=("poisson", "fixed"),
                          help="arrival process (default: poisson)")
    loadtest.add_argument("--preset", default="default-small",
                          choices=sorted(PRESETS),
                          help="database preset generating the object "
                               "graph (default: default-small)")
    loadtest.add_argument("--backend", default=None,
                          choices=backend_names(),
                          help="override the scenario's storage engine")
    loadtest.add_argument("--clients", type=int, default=None,
                          help="override the scenario's client count "
                               "(the offered rate splits across lanes)")
    loadtest.add_argument("--seed", type=int, default=None,
                          help="arrival + workload RNG seed (default: "
                               "the scenario seed)")
    loadtest.add_argument("--sqlite-path", default=":memory:",
                          help="database file for --backend sqlite "
                               "(default: in-memory)")
    loadtest.add_argument("--journal-mode", default="WAL",
                          help="journal mode for SQLite (default: WAL)")
    loadtest.add_argument("--busy-timeout", type=int, default=5000,
                          metavar="MS",
                          help="SQLite busy budget in ms (default: 5000)")
    loadtest.add_argument("--divergence", type=float, default=0.10,
                          help="knee gate: achieved throughput this far "
                               "below offered saturates (default: 0.10)")
    loadtest.add_argument("--blowup", type=float, default=3.0,
                          help="knee gate: response P95 beyond this "
                               "multiple of the lowest-rate baseline "
                               "saturates (default: 3.0)")
    loadtest.add_argument("--no-predict", action="store_true",
                          help="skip the DES predicted-wait replay")
    loadtest.add_argument("--out", default=None, metavar="FILE",
                          help="output path (default: BENCH_<date>.json "
                               "in the current directory)")
    loadtest.add_argument("--current", default=None, metavar="FILE",
                          help="render/compare an existing load_sweep "
                               "document instead of running the sweep")
    loadtest.add_argument("--compare", default=None, metavar="BASELINE",
                          help="diff against a committed load_sweep "
                               "document; exit code 2 on regression")
    loadtest.add_argument("--tolerance", type=float, default=0.5,
                          help="relative tolerance band for the perf "
                               "gates (default: 0.5 = 50%%)")
    loadtest.add_argument("--json", action="store_true",
                          help="print the document to stdout as well")
    loadtest.add_argument("--trace", default=None, metavar="FILE",
                          help="stream per-operation trace records "
                               "(loadgen.arrival / loadgen.late_start "
                               "spans included) to a JSONL file")
    loadtest.add_argument("--profile", default=None, metavar="FILE",
                          help="cProfile the whole command; JSON report "
                               "to FILE, top functions on stderr")

    tables = sub.add_parser("tables", help="print the paper's parameter tables")
    tables.add_argument("--id", type=int, required=True, choices=(1, 2, 3))

    fig4 = sub.add_parser("fig4", help="reproduce Figure 4")
    fig4.add_argument("--sizes", type=int, nargs="+",
                      default=[10, 100, 1000, 5000])
    fig4.add_argument("--classes", type=int, nargs="+", default=[1, 20, 50])
    fig4.add_argument("--chart", action="store_true",
                      help="also draw the log-log ASCII chart")

    table4 = sub.add_parser("table4", help="reproduce Table 4")
    table4.add_argument("--objects", type=int, default=16000)
    table4.add_argument("--transactions", type=int, default=20)
    table4.add_argument("--buffer-pages", type=int, default=384)

    table5 = sub.add_parser("table5", help="reproduce Table 5")
    table5.add_argument("--objects", type=int, default=8000)
    table5.add_argument("--transactions", type=int, default=60)
    table5.add_argument("--buffer-pages", type=int, default=340)

    sub.add_parser("qualitative",
                   help="qualitative evaluation grid for the built-in "
                        "clustering policies (paper Section 5)")
    return parser


def _cmd_info() -> str:
    pairs = [
        ("package", f"repro {__version__}"),
        ("paper", "OCB: A Generic Benchmark to Evaluate the Performances "
                  "of OODBs (EDBT '98)"),
        ("authors", "Darmont, Petit, Schneider"),
        ("experiments", "fig4, table4, table5 (see DESIGN.md)"),
        ("presets", ", ".join(sorted(PRESETS))),
    ]
    return render_kv(pairs, title="OCB reproduction")


def _cmd_presets() -> str:
    rows = []
    for name in sorted(PRESETS):
        db, wl = preset(name)
        rows.append([name, db.num_classes, db.num_objects,
                     wl.cold_n, wl.hot_n])
    return render_table(["preset", "NC", "NO", "COLDN", "HOTN"], rows,
                        title="Parameter presets")


def _cmd_backends() -> str:
    rows = [[info.name,
             "simulated + wall" if not info.wall_clock_only else "wall only",
             ", ".join(info.capabilities) or "-",
             info.description]
            for info in available_backends()]
    return render_table(["backend", "metrics", "extras", "description"],
                        rows, title="Registered storage backends")


def _cmd_generate(args: argparse.Namespace) -> str:
    db_params, _ = preset(args.preset)
    if args.seed is not None:
        # Dataclasses are frozen; rebuild with the new seed.
        from dataclasses import replace
        db_params = replace(db_params, seed=args.seed)
    database, report = generate_database(db_params, validate=args.validate)
    stats = database.statistics()
    pairs = [
        ("preset", args.preset),
        ("generation time", f"{report.total_seconds:.3f} s"),
        ("removed references", report.removed_references),
        ("objects", stats.num_objects),
        ("classes", stats.num_classes),
        ("total bytes", stats.total_bytes),
        ("avg object bytes", f"{stats.average_object_bytes:.1f}"),
        ("avg fan-out", f"{stats.average_fanout:.2f}"),
    ]
    if args.backend is not None:
        backend = create_backend(args.backend, StoreConfig(),
                                 **_backend_options(args))
        try:
            # Serialize outside the timer: the "bulk load" line measures
            # the engine's insert path, not Python record construction.
            records = database.to_records()
            start = time.perf_counter()
            units = backend.bulk_load(records.values(),
                                      order=sorted(records))
            elapsed = time.perf_counter() - start
            pairs.extend([
                ("backend", args.backend),
                ("bulk load", f"{elapsed:.3f} s"),
                ("storage units", units),
            ])
        finally:
            backend.close()
    return render_kv(pairs, title="Database generated")


def _backend_options(args: argparse.Namespace) -> dict:
    backend = getattr(args, "backend", None)
    if backend in ("sqlite", "pipelined-sqlite"):
        return {"path": args.sqlite_path}
    if backend == "sharded-sqlite":
        # ``--sqlite-path`` names the shard *directory* here; the
        # engine maps ':memory:' to private in-memory shards itself.
        options: dict = {"path": args.sqlite_path}
        if getattr(args, "shards", None) is not None:
            options["shards"] = args.shards
        return options
    return {}


def _cmd_run(args: argparse.Namespace) -> str:
    db_params, wl_params = preset(args.preset)
    if args.backend != "simulated" and args.placement != "sequential":
        print(f"note: --placement only affects physical layout on the "
              f"simulated backend; the {args.backend!r} engine manages "
              f"its own layout", file=sys.stderr)
    bench = OCBBenchmark(db_params, wl_params,
                         StoreConfig(buffer_pages=args.buffer_pages),
                         initial_placement=args.placement,
                         backend=args.backend,
                         backend_options=_backend_options(args))
    result = bench.run(cold_start=args.cold_start)
    warm = result.report.warm
    wall = warm.wall_percentiles()
    if args.json:
        import json
        document = {
            "command": "run",
            "preset": args.preset,
            "backend": result.backend_name,
            "warm_transactions": warm.totals.count,
            "objects_per_txn": warm.totals.visits_per_transaction,
            "reads_per_txn": warm.totals.reads_per_transaction,
            "ios_per_txn": warm.totals.ios_per_transaction,
            "sim_time_per_txn": warm.totals.sim_time_per_transaction,
            "wall_p50_ms": wall.p50 * 1e3,
            "wall_p95_ms": wall.p95 * 1e3,
            "wall_p99_ms": wall.p99 * 1e3,
            "per_kind": [
                {"kind": kind, "n": count, "objects_per_txn": visits,
                 "reads_per_txn": reads, "ios_per_txn": ios,
                 "sim_time_per_txn": sim}
                for kind, count, visits, reads, ios, sim in warm.rows()],
        }
        return json.dumps(document, indent=2)
    lines = [result.describe(), "",
             render_table(
                 ["kind", "n", "objects/txn", "reads/txn", "IOs/txn",
                  "t_sim/txn (s)"],
                 warm.rows(),
                 title="Warm-run metrics per transaction type",
                 precision=3),
             "",
             f"wall-clock latency (warm, {wall.count} txns): "
             f"{wall.describe()}"]
    return "\n".join(lines)


def _cmd_ops(args: argparse.Namespace) -> str:
    from collections import defaultdict

    db_params, wl_params = preset(args.preset)
    bench = OCBBenchmark(db_params, wl_params,
                         backend=args.backend,
                         backend_options=_backend_options(args))
    results = bench.run_generic_operations(args.operations)
    grouped = defaultdict(list)
    for result in results:
        grouped[result.operation].append(result)
    rows = []
    for operation, bucket in sorted(grouped.items(),
                                    key=lambda item: item[0].value):
        n = len(bucket)
        rows.append([operation.value, n,
                     sum(r.objects_touched for r in bucket) / n,
                     sum(r.io_reads for r in bucket) / n,
                     sum(r.io_writes for r in bucket) / n,
                     sum(r.wall_time for r in bucket) / n * 1e3])
    if args.json:
        import json
        stats = bench.backend.stats() if bench.backend is not None else {}
        document = {
            "command": "ops",
            "preset": args.preset,
            "backend": args.backend,
            "operations": len(results),
            "sql_round_trips": stats.get("sql_round_trips"),
            "per_operation": [
                {"operation": operation, "n": n, "objects_per_op": objects,
                 "reads_per_op": reads, "writes_per_op": writes,
                 "wall_ms_per_op": wall_ms}
                for operation, n, objects, reads, writes, wall_ms in rows],
        }
        bench.backend.close()
        return json.dumps(document, indent=2)
    table = render_table(
        ["operation", "n", "objects/op", "reads/op", "writes/op",
         "wall/op (ms)"],
        rows, title=f"Generic operation mix on {args.backend!r} "
                    f"({args.operations} operations)", precision=3)
    stats = bench.backend.stats() if bench.backend is not None else {}
    lines = [table]
    if "sql_round_trips" in stats:
        lines.append(f"\nSQL round trips: {stats['sql_round_trips']}")
    bench.backend.close()
    return "\n".join(lines)


def _cmd_scenario(args: argparse.Namespace) -> str:
    import json
    from dataclasses import replace

    from repro.core.presets import SCENARIO_PRESETS, scenario_preset
    from repro.core.scenario import ScenarioRunner
    from repro.parallel import ParallelConfig
    from repro.reporting import render_scenario_report

    if args.list or args.name is None:
        rows = []
        for name in sorted(SCENARIO_PRESETS):
            scenario = scenario_preset(name)
            kinds = ", ".join(dict.fromkeys(
                entry.kind for entry in scenario.mix.entries
                if entry.weight > 0.0))
            rows.append([name,
                         "yes" if scenario.mix.mutates else "no",
                         scenario.clients, scenario.backend, kinds])
        listing = render_table(
            ["scenario", "mutates", "clients", "backend", "operation mix"],
            rows, title="Scenario presets (ocb scenario NAME)")
        if args.name is None and not args.list:
            return "\n".join([listing, "",
                              "pick a scenario preset or pass a JSON "
                              "spec file"])
        return listing

    scenario = _load_scenario(args.name)

    overrides = {}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.clients is not None:
        overrides["clients"] = args.clients
    if args.processes is not None:
        overrides["clients"] = args.processes
    if args.cold is not None:
        overrides["cold_ops"] = args.cold
    if args.warm is not None:
        overrides["warm_ops"] = args.warm
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.lazy:
        overrides["lazy"] = True
    if args.pipeline:
        overrides["pipeline"] = True
    if overrides:
        scenario = replace(scenario, **overrides)
    if scenario.backend in ("sqlite", "sharded-sqlite", "pipelined-sqlite"):
        options = dict(scenario.backend_options)
        options.setdefault("path", args.sqlite_path)
        if scenario.backend == "sharded-sqlite" and args.shards is not None:
            options.setdefault("shards", args.shards)
        if scenario.backend == "sharded-sqlite" and args.concurrent_fanout:
            options.setdefault("concurrent_fanout", True)
        if scenario.backend in ("sharded-sqlite", "pipelined-sqlite") \
                and args.pool_size is not None:
            options.setdefault("pool_size", args.pool_size)
        options = _shared_sqlite_options(
            options, args.journal_mode, args.busy_timeout,
            for_processes=args.processes is not None)
        scenario = replace(scenario, backend_options=options)

    db_params, _ = preset(args.preset)
    database, _report = generate_database(db_params)
    runner = ScenarioRunner(database, scenario)
    if args.processes is not None:
        config = ParallelConfig(journal_mode=args.journal_mode,
                                busy_timeout_ms=args.busy_timeout)
        report = runner.run_processes(config=config)
    else:
        report = runner.run()
    if args.json:
        return json.dumps(report.to_dict(), indent=2)
    lines = [render_scenario_report(report)]
    if args.processes is not None and not report.executed_parallel \
            and scenario.clients > 1:
        lines.append("note: worker processes were unavailable; the "
                     "clients ran sequentially in-process")
    return "\n".join(lines)


def _load_scenario(name: str):
    """Resolve a scenario argument: preset name or JSON spec file.

    Preset names win; only non-preset arguments are treated as spec
    files (a stray file in the cwd must never shadow a preset).
    """
    import os

    from repro.core.presets import SCENARIO_PRESETS, scenario_preset
    from repro.core.scenario import Scenario
    from repro.errors import ParameterError

    if name.strip().lower() in SCENARIO_PRESETS:
        return scenario_preset(name)
    if name.endswith(".json") or os.path.exists(name):
        try:
            with open(name, "r", encoding="utf-8") as handle:
                return Scenario.from_json(handle.read())
        except OSError as exc:
            raise ParameterError(
                f"cannot read scenario spec {name!r}: {exc}") from exc
    return scenario_preset(name)


def _shared_sqlite_options(options: dict, journal_mode: str,
                           busy_timeout_ms: int,
                           for_processes: bool) -> dict:
    """The one policy for SQLite under multiple clients.

    Explicit options win; otherwise force the multi-writer settings
    (WAL-ish journal, counted busy budget, crash-safe ``synchronous``,
    matching ``ParallelConfig``) so in-process and process runs
    benchmark the same engine configuration.  Process runs drop a
    ``':memory:'`` path — it cannot be shared — so the runner creates a
    temp file instead.
    """
    options = dict(options)
    options.setdefault("journal_mode", journal_mode)
    options.setdefault("busy_timeout_ms", busy_timeout_ms)
    options.setdefault("synchronous", "NORMAL")
    if for_processes and options.get("path") == ":memory:":
        options.pop("path")
    return options


def _parallel_options(args: argparse.Namespace) -> dict:
    """Backend options for a process run, through the one shared policy."""
    options = _backend_options(args)
    if getattr(args, "backend", None) in ("sqlite", "sharded-sqlite",
                                          "pipelined-sqlite"):
        return _shared_sqlite_options(options, args.journal_mode,
                                      args.busy_timeout,
                                      for_processes=True)
    return options


def _cmd_multiuser(args: argparse.Namespace) -> str:
    from dataclasses import replace

    from repro.multiuser.runner import MultiClientRunner

    db_params, wl_params = preset(args.preset)
    if args.processes is not None:
        wl_params = replace(wl_params, clients=args.processes)
        database, _report = generate_database(db_params)
        return _run_multiuser_processes(args, database, wl_params)
    wl_params = replace(wl_params, clients=args.clients)
    database, _report = generate_database(db_params)
    options = _backend_options(args)
    if args.backend in ("sqlite", "sharded-sqlite", "pipelined-sqlite"):
        # The journal/busy/synchronous knobs apply on the in-process
        # path too, so the two execution modes benchmark the same
        # engine settings.
        options = _shared_sqlite_options(options, args.journal_mode,
                                         args.busy_timeout,
                                         for_processes=False)
    runner = MultiClientRunner(database, args.backend, wl_params,
                               backend_options=options)
    report = runner.run()
    rows = []
    for client, client_report in enumerate(report.clients):
        totals = client_report.warm.totals
        wall = report.client_wall_percentiles(client)
        rows.append([client, totals.count, totals.visits_per_transaction,
                     totals.reads_per_transaction, wall.p95 * 1e3])
    merged = report.merged_warm.totals
    merged_wall = report.warm_wall_percentiles
    rows.append(["all", merged.count, merged.visits_per_transaction,
                 merged.reads_per_transaction, merged_wall.p95 * 1e3])
    table = render_table(
        ["client", "warm txns", "objects/txn", "reads/txn", "P95 (ms)"],
        rows, title=f"{args.clients} clients on {report.backend_name!r} "
                    f"(round-robin, shared engine)", precision=3)
    close = getattr(runner.store, "close", None)
    if close is not None:
        close()
    return "\n".join([
        table, "",
        f"merged warm wall-clock: {merged_wall.describe()}"])


def _run_multiuser_processes(args: argparse.Namespace, database,
                             wl_params) -> str:
    from repro.parallel import ParallelConfig, ParallelRunner
    from repro.reporting import render_parallel_workers

    config = ParallelConfig(journal_mode=args.journal_mode,
                            busy_timeout_ms=args.busy_timeout)
    runner = ParallelRunner(database, args.backend, wl_params,
                            config=config,
                            backend_options=_parallel_options(args))
    report = runner.run()
    merged_wall = report.warm_wall_percentiles
    lines = [render_parallel_workers(report), "",
             report.describe(),
             f"merged warm wall-clock: {merged_wall.describe()}"]
    if not report.executed_parallel and wl_params.clients > 1:
        lines.append("note: worker processes were unavailable; the "
                     "workers ran sequentially in-process")
    return "\n".join(lines)


def _cmd_scale(args: argparse.Namespace) -> str:
    import json
    import os
    import shutil
    import tempfile
    from dataclasses import replace

    from repro.backends.registry import backend_info
    from repro.parallel import ParallelConfig, ParallelRunner
    from repro.reporting import render_scaling_sweep, summarize_parallel_run

    db_params, wl_params = preset(args.preset)
    database, _report = generate_database(db_params)
    shards = None
    if backend_info(args.backend).has_capability("sharded"):
        # One storage layout for the whole sweep: every point attaches
        # to the same shard files, so the count cannot follow the
        # worker count.  ``max(workers)`` keeps the mutation lanes of
        # every smaller width disjoint (shards is a multiple of each).
        shards = getattr(args, "shards", None) or max(args.workers)
    config = ParallelConfig(journal_mode=args.journal_mode,
                            busy_timeout_ms=args.busy_timeout,
                            shards=shards)
    options = _parallel_options(args)
    tempdir = None
    if backend_info(args.backend).has_capability("concurrent") \
            and not options.get("path"):
        # One shared file for the whole sweep: the first point bulk
        # loads it, every later point attaches (after a content check)
        # instead of re-loading the identical read-only database.
        tempdir = tempfile.mkdtemp(prefix="ocb-scale-")
        if backend_info(args.backend).has_capability("sharded"):
            options["path"] = os.path.join(tempdir, "shards")
        else:
            options["path"] = os.path.join(tempdir, "shared.db")
    points = []
    try:
        for workers in args.workers:
            params = replace(wl_params, clients=workers)
            runner = ParallelRunner(database, args.backend, params,
                                    config=config, backend_options=options)
            points.append(summarize_parallel_run(runner.run()))
    finally:
        if tempdir is not None:
            shutil.rmtree(tempdir, ignore_errors=True)
    out = [render_scaling_sweep(points)]
    if args.json:
        from repro.obs import results
        document = results.build_document(
            kind="scale_sweep",
            cells=[point.to_dict() for point in points],
            config={"preset": args.preset, "backend": args.backend,
                    "workers": list(args.workers),
                    "journal_mode": args.journal_mode,
                    "busy_timeout_ms": args.busy_timeout},
            name="scale")
        out.append("")
        out.append(json.dumps(document, indent=2))
    return "\n".join(out)


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run (or load) a matrix document, render it, gate on a baseline."""
    import json

    from repro.errors import ParameterError
    from repro.obs import results
    from repro.obs.matrix import MatrixSpec, compare_documents, \
        run_matrix, tiny_spec
    from repro.reporting import render_bench_cells, render_bench_comparison

    if args.current is not None:
        document = results.load_document(args.current)
        if args.out is not None:
            written = results.write_document(document, path=args.out)
            print(f"ocb bench: wrote {written}", file=sys.stderr)
    else:
        if args.spec is not None:
            try:
                with open(args.spec, "r", encoding="utf-8") as handle:
                    spec = MatrixSpec.from_json(handle.read())
            except OSError as exc:
                raise ParameterError(
                    f"cannot read matrix spec {args.spec!r}: {exc}") from exc
        else:
            spec = tiny_spec()
        if args.shard_counts is not None:
            from dataclasses import replace as _replace
            spec = _replace(spec, shard_counts=tuple(args.shard_counts))
        document = run_matrix(
            spec, progress=lambda line: print(line, file=sys.stderr))
        written = results.write_document(document, path=args.out)
        print(f"ocb bench: wrote {written}", file=sys.stderr)
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        system = document.get("system", {})
        print(render_bench_cells(
            document["cells"],
            title=f"Experiment matrix {document.get('name')!r} "
                  f"@ {system.get('git_rev') or 'unknown rev'}"))
    if args.compare is None:
        return 0
    baseline = results.load_document(args.compare)
    comparison = compare_documents(document, baseline,
                                   tolerance=args.tolerance)
    rows = [{"key": row.key, "status": row.status,
             "throughput_ratio": row.throughput_ratio,
             "problems": row.problems}
            for row in comparison.rows]
    print()
    print(render_bench_comparison(
        rows, title=f"vs baseline {args.compare}"))
    print(comparison.describe())
    if comparison.ok:
        return 0
    for row in comparison.regressions:
        problems = "; ".join(row.problems) or "cell missing"
        print(f"ocb bench: regression in {row.key}: {problems}",
              file=sys.stderr)
    return 2


def _parse_rates(chunks: Sequence[str]) -> List[float]:
    """``--rate 25,100 400`` → ``[25.0, 100.0, 400.0]``."""
    from repro.errors import ParameterError

    rates: List[float] = []
    for chunk in chunks:
        for token in str(chunk).split(","):
            token = token.strip()
            if not token:
                continue
            try:
                rates.append(float(token))
            except ValueError as exc:
                raise ParameterError(
                    f"invalid offered rate {token!r}") from exc
    if not rates:
        raise ParameterError("at least one offered rate is required")
    return rates


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """Run (or load) an offered-rate sweep, render it, gate a baseline."""
    import json
    from dataclasses import replace

    from repro.core.loadgen import run_load_sweep
    from repro.obs import results
    from repro.obs.matrix import compare_documents
    from repro.reporting import render_bench_comparison, render_load_report

    if args.current is not None:
        document = results.load_document(args.current)
        if args.out is not None:
            written = results.write_document(document, path=args.out)
            print(f"ocb loadtest: wrote {written}", file=sys.stderr)
    else:
        rates = _parse_rates(args.rate)
        scenario = _load_scenario(args.name)
        overrides = {}
        if args.backend is not None:
            overrides["backend"] = args.backend
        if args.clients is not None:
            overrides["clients"] = args.clients
        if args.seed is not None:
            overrides["seed"] = args.seed
        if overrides:
            scenario = replace(scenario, **overrides)
        if scenario.backend in ("sqlite", "sharded-sqlite",
                                "pipelined-sqlite"):
            options = dict(scenario.backend_options)
            options.setdefault("path", args.sqlite_path)
            options = _shared_sqlite_options(
                options, args.journal_mode, args.busy_timeout,
                for_processes=False)
            scenario = replace(scenario, backend_options=options)
        db_params, _ = preset(args.preset)
        database, _report = generate_database(db_params)
        sweep = run_load_sweep(
            database, scenario, rates, operations=args.ops,
            mode=args.arrivals, seed=args.seed,
            divergence=args.divergence, blowup=args.blowup,
            predict=not args.no_predict,
            progress=lambda line: print(f"ocb loadtest: {line}",
                                        file=sys.stderr))
        config = {
            "scenario": scenario.mix.name,
            "backend": scenario.backend,
            "clients": scenario.clients,
            "database_preset": args.preset,
            "rates": sorted(rates),
            "operations": args.ops,
            "arrival_mode": args.arrivals,
            "seed": sweep["seed"],
            "divergence": sweep["divergence"],
            "blowup": sweep["blowup"],
            "knee": sweep["knee"],
        }
        document = results.build_document(
            "load_sweep", sweep["cells"], config=config,
            name=f"loadtest-{scenario.mix.name}")
        written = results.write_document(document, path=args.out)
        print(f"ocb loadtest: wrote {written}", file=sys.stderr)
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        print(render_load_report(document))
    if args.compare is None:
        return 0
    baseline = results.load_document(args.compare)
    comparison = compare_documents(document, baseline,
                                   tolerance=args.tolerance)
    rows = [{"key": row.key, "status": row.status,
             "throughput_ratio": row.throughput_ratio,
             "problems": row.problems}
            for row in comparison.rows]
    print()
    print(render_bench_comparison(
        rows, title=f"vs baseline {args.compare}"))
    print(comparison.describe())
    if comparison.ok:
        return 0
    for row in comparison.regressions:
        problems = "; ".join(row.problems) or "cell missing"
        print(f"ocb loadtest: regression in {row.key}: {problems}",
              file=sys.stderr)
    return 2


def _cmd_tables(args: argparse.Namespace) -> str:
    if args.id == 1:
        p = default_database_parameters()
        rows = [
            ["NC", "Number of classes in the database", p.num_classes],
            ["MAXNREF(i)", "Maximum number of references, per class",
             p.max_nref[0]],
            ["BASESIZE(i)", "Instances base size, per class", p.base_size[0]],
            ["NO", "Total number of objects", p.num_objects],
            ["NREFT", "Number of reference types", p.num_ref_types],
            ["INFCLASS", "Inferior bound, referenced classes", p.inf_class],
            ["SUPCLASS", "Superior bound, referenced classes", p.sup_class],
            ["INFREF", "Inferior bound, referenced objects", p.inf_ref],
            ["SUPREF", "Superior bound, referenced objects", p.sup_ref],
            ["DIST1", "Reference types distribution", p.dist1.describe()],
            ["DIST2", "Class references distribution", p.dist2.describe()],
            ["DIST3", "Objects in classes distribution", p.dist3.describe()],
            ["DIST4", "Objects references distribution", p.dist4.describe()],
        ]
        return render_table(["Name", "Parameter", "Default value"], rows,
                            title="Table 1 - OCB database parameters")
    if args.id == 2:
        w = default_workload_parameters()
        rows = [
            ["SETDEPTH", "Set-oriented Access depth", w.set_depth],
            ["SIMDEPTH", "Simple Traversal depth", w.simple_depth],
            ["HIEDEPTH", "Hierarchy Traversal depth", w.hierarchy_depth],
            ["STODEPTH", "Stochastic Traversal depth", w.stochastic_depth],
            ["COLDN", "Cold-run transactions", w.cold_n],
            ["HOTN", "Warm-run transactions", w.hot_n],
            ["THINK", "Average latency between transactions", w.think_time],
            ["PSET", "Set Access probability", w.p_set],
            ["PSIMPLE", "Simple Traversal probability", w.p_simple],
            ["PHIER", "Hierarchy Traversal probability", w.p_hierarchy],
            ["PSTOCH", "Stochastic Traversal probability", w.p_stochastic],
            ["RAND5", "Root object distribution", w.dist5.describe()],
            ["CLIENTN", "Number of clients", w.clients],
        ]
        return render_table(["Name", "Parameter", "Default value"], rows,
                            title="Table 2 - OCB workload parameters")
    p = dstc_club_database_parameters()
    rows = [
        ["NC", 2], ["MAXNREF", 3], ["BASESIZE", "50 bytes"],
        ["NO", p.num_objects], ["NREFT", 3],
        ["INFCLASS", p.inf_class], ["SUPCLASS", p.sup_class],
        ["INFREF", "PartId - RefZone"], ["SUPREF", "PartId + RefZone"],
        ["DIST1", p.dist1.describe()], ["DIST2", p.dist2.describe()],
        ["DIST3", p.dist3.describe()], ["DIST4", p.dist4.describe()],
    ]
    return render_table(["Name", "Value"], rows,
                        title="Table 3 - OCB approximating DSTC-CluB")


def _cmd_fig4(args: argparse.Namespace) -> str:
    points = run_fig4(sizes=tuple(args.sizes),
                      class_counts=tuple(args.classes))
    series = fig4_series(points)
    out = [render_series_table(series, x_header="objects",
                               title="Figure 4 - database creation time (s)")]
    if args.chart:
        out.append("")
        out.append(render_line_chart(series, log_x=True, log_y=True,
                                     title="Figure 4 (log-log)",
                                     x_label="objects", y_label="seconds"))
    return "\n".join(out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    from repro.errors import ReproError
    try:
        return _dispatch(argv)
    except ReproError as exc:
        print(f"ocb: error: {exc}", file=sys.stderr)
        return 1


def _dispatch(argv: Optional[Sequence[str]]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from repro.obs import trace
        trace.enable(sink_path=trace_path)
    profile_path = getattr(args, "profile", None)
    if profile_path:
        from repro.obs import profiler
        # Started last / stopped first, so the profile covers exactly
        # the command body and none of the trace bookkeeping below.
        profiler.enable()
    try:
        return _dispatch_command(parser, args)
    finally:
        if profile_path:
            report = profiler.disable()
            if report is not None:
                profiler.write_json(report, profile_path)
                print(f"profile: {len(report.functions)} functions, "
                      f"total {report.total_seconds:.3f} s "
                      f"-> {profile_path}", file=sys.stderr)
                for name, ncalls, tottime, cumtime \
                        in profiler.summary(report):
                    print(f"profile: {name}: {ncalls} x, "
                          f"self {tottime * 1e3:.1f} ms, "
                          f"cumulative {cumtime * 1e3:.1f} ms",
                          file=sys.stderr)
        if trace_path:
            collector = trace.disable()
            if collector is not None:
                print(f"trace: {collector.total} records -> {trace_path} "
                      f"({collector.dropped} beyond the ring buffer)",
                      file=sys.stderr)
                for name, count, total, mean, p999 \
                        in trace.summary(collector):
                    print(f"trace: {name}: {count} x, "
                          f"total {total * 1e3:.1f} ms, "
                          f"mean {mean * 1e3:.3f} ms, "
                          f"P99.9 {p999 * 1e3:.3f} ms", file=sys.stderr)


def _dispatch_command(parser: argparse.ArgumentParser,
                      args: argparse.Namespace) -> int:
    if args.command == "info":
        print(_cmd_info())
    elif args.command == "presets":
        print(_cmd_presets())
    elif args.command == "backends":
        print(_cmd_backends())
    elif args.command == "generate":
        print(_cmd_generate(args))
    elif args.command == "run":
        print(_cmd_run(args))
    elif args.command == "ops":
        print(_cmd_ops(args))
    elif args.command == "scenario":
        print(_cmd_scenario(args))
    elif args.command == "multiuser":
        print(_cmd_multiuser(args))
    elif args.command == "scale":
        print(_cmd_scale(args))
    elif args.command == "bench":
        return _cmd_bench(args)
    elif args.command == "loadtest":
        return _cmd_loadtest(args)
    elif args.command == "tables":
        print(_cmd_tables(args))
    elif args.command == "fig4":
        print(_cmd_fig4(args))
    elif args.command == "table4":
        rows = run_table4(num_objects=args.objects,
                          transactions=args.transactions,
                          buffer_pages=args.buffer_pages)
        print(render_table4(rows))
    elif args.command == "table5":
        row = run_table5(num_objects=args.objects,
                         transactions=args.transactions,
                         buffer_pages=args.buffer_pages)
        print(render_table5(row))
    elif args.command == "qualitative":
        from repro.clustering.base import NoClustering
        from repro.clustering.dro import DROPolicy
        from repro.clustering.dstc import DSTCPolicy
        from repro.qualitative import assess_policy, render_assessments
        print(render_assessments([assess_policy(NoClustering()),
                                  assess_policy(DSTCPolicy()),
                                  assess_policy(DROPolicy())]))
    else:  # pragma: no cover - argparse enforces choices
        parser.error(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Process-parallel execution: real multi-user contention on shared engines.

The in-process :class:`~repro.multiuser.runner.MultiClientRunner`
interleaves CLIENTN clients round-robin — cache pollution is real, but
lock contention and parallel wall-clock are not.  This subsystem runs
the same CLIENTN clients as real OS processes:

* :class:`~repro.parallel.spec.WorkerSpec` /
  :class:`~repro.parallel.spec.ParallelConfig` — the picklable job
  descriptions that cross the process boundary;
* :func:`~repro.parallel.worker.run_worker` — the worker entry point:
  own connection (shared mode) or own replica (replicated mode), one
  cold/warm protocol, per-client Lewis–Payne substream;
* :class:`~repro.parallel.pool.ProcessPool` — ordered fan-out with an
  honest sequential fallback;
* :class:`~repro.parallel.runner.ParallelRunner` — the coordinator:
  bulk-load once, spawn CLIENTN workers, merge;
* :class:`~repro.parallel.report.ParallelReport` — folds into the
  :class:`~repro.multiuser.runner.MultiUserReport` shape and adds
  throughput + contention accounting.

The determinism contract: a parallel run's per-client *logical* metrics
(transaction mix, objects visited) are identical to the in-process
runner's on the same seed — the RNG substreams are keyed by client id,
never by process scheduling.

Since the scenario layer landed, a :class:`WorkerSpec` can also carry a
:class:`~repro.core.scenario.WorkloadMix`: the worker then executes a
declarative scenario client — including *mutating* mixes, where every
worker writes its own oid partition of one shared WAL SQLite file and
the busy-retry accounting finally has real write-write collisions to
count.  ``ScenarioRunner.run_processes`` is the high-level entry point.
"""

from repro.parallel.pool import ProcessPool
from repro.parallel.report import ParallelReport
from repro.parallel.runner import ParallelRunner
from repro.parallel.spec import ParallelConfig, WorkerResult, WorkerSpec
from repro.parallel.worker import run_worker

__all__ = [
    "ParallelConfig",
    "ParallelReport",
    "ParallelRunner",
    "ProcessPool",
    "WorkerResult",
    "WorkerSpec",
    "run_worker",
]

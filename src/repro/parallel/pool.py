"""A small, honest process pool for the parallel harness.

Wraps :class:`concurrent.futures.ProcessPoolExecutor` with the three
properties the benchmark needs and the stdlib does not promise:

* **ordered results** — ``map`` returns results in submission order so
  worker *k* is always client *k*;
* **graceful degradation** — environments where process spawning is
  unavailable (locked-down sandboxes without working semaphores, or an
  explicit ``parallel=False``) fall back to running the same callable
  sequentially in-process; :attr:`ProcessPool.executed_parallel` records
  which path actually ran so reports never claim parallel wall-clock
  they did not measure;
* **no silent reuse surprises** — one task per worker submission
  (``chunksize=1``), so long-running clients spread over processes
  instead of batching onto one.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.errors import ParameterError

__all__ = ["ProcessPool"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def _warmup() -> None:
    """No-op shipped to every worker at pool start-up (see ProcessPool)."""


class ProcessPool:
    """Run a callable over items in worker processes, in order."""

    def __init__(self, processes: int,
                 start_method: Optional[str] = None,
                 parallel: bool = True) -> None:
        if processes < 1:
            raise ParameterError(f"processes must be >= 1, got {processes}")
        self.processes = processes
        self.start_method = start_method
        self.parallel = parallel
        #: Whether the last :meth:`map` actually ran in worker processes.
        self.executed_parallel = False

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
        """Apply *fn* to every item; results in submission order.

        Worker exceptions propagate to the caller.  Only a failure to
        *create* the pool (no semaphore support, forbidden fork) falls
        back to running the items sequentially in this process, with
        :attr:`executed_parallel` left ``False``; an error raised by the
        work itself is never masked.  A single item still runs in a
        worker process — the one-worker point of a scaling sweep must
        pay the same spawn and pickling costs every wider point pays.
        """
        items = list(items)
        self.executed_parallel = False
        if not items:
            return []
        if not self.parallel:
            return [fn(item) for item in items]
        try:
            executor = self._start_executor(len(items))
        except (OSError, ImportError, BrokenProcessPool):
            # The OS refused us processes; degrade honestly.
            return [fn(item) for item in items]
        with executor:
            results = list(executor.map(fn, items, chunksize=1))
        self.executed_parallel = True
        return results

    def _start_executor(self, item_count: int):
        """Create the executor *and* force its workers to spawn.

        ``ProcessPoolExecutor`` forks lazily at submit time, so a
        blocked fork would otherwise surface inside the real ``map`` —
        where an OSError is indistinguishable from one raised by the
        work itself.  Submitting one no-op per worker here pulls every
        spawn into the guarded region; after this returns, a failure in
        ``map`` is the work's own and must propagate.
        """
        from concurrent.futures import ProcessPoolExecutor

        context = multiprocessing.get_context(self.start_method)
        workers = min(self.processes, item_count)
        executor = ProcessPoolExecutor(max_workers=workers,
                                       mp_context=context)
        try:
            for future in [executor.submit(_warmup)
                           for _ in range(workers)]:
                future.result()
        except Exception:
            executor.shutdown(wait=False)
            raise
        return executor

"""Serializable work descriptions for the process-parallel harness.

Everything a worker process needs crosses the process boundary as one
picklable :class:`WorkerSpec`: the generated database (the object graph
is immutable under the traversal workload, so every worker can carry the
same copy), the workload parameters whose per-client Lewis–Payne
substream the worker derives from its ``client_id`` — exactly as the
in-process :class:`~repro.multiuser.runner.MultiClientRunner` does, which
is what makes the two execution modes logically identical — and the
backend name + options the worker resolves through the registry on its
side of the fork.

:class:`ParallelConfig` collects the harness-level knobs (journal mode,
busy budget, start method); :class:`WorkerResult` carries one worker's
metrics back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.database import OCBDatabase
from repro.core.parameters import WorkloadParameters
from repro.core.scenario import ClientScenarioReport, WorkloadMix
from repro.core.workload import WorkloadReport
from repro.errors import ParameterError
from repro.store.storage import StoreConfig

__all__ = ["ParallelConfig", "WorkerSpec", "WorkerResult"]

_START_METHODS = (None, "fork", "spawn", "forkserver")


@dataclass(frozen=True)
class ParallelConfig:
    """Harness-level knobs of a process-parallel run."""

    #: Journal mode forced onto shared-file engines.  Multi-process SQLite
    #: needs ``WAL`` (readers never block, writers queue); anything else
    #: is accepted but will serialize aggressively.
    journal_mode: str = "WAL"
    #: Per-connection budget (ms) for retrying locked operations; every
    #: retry is counted by the engine's contention accounting.
    busy_timeout_ms: int = 5000
    #: ``multiprocessing`` start method (``None`` = platform default).
    start_method: Optional[str] = None
    #: Cap on simultaneously live worker processes (``None`` = one per
    #: client, which is the point of a contention benchmark).
    max_workers: Optional[int] = None
    #: ``False`` runs the workers sequentially in this process — same
    #: specs, same results, no parallel wall-clock; the determinism
    #: escape hatch and the fallback when the OS refuses to fork.
    parallel: bool = True
    #: ``synchronous`` pragma for shared SQLite files.  ``NORMAL`` is the
    #: honest WAL setting; the single-user default of ``OFF`` would let
    #: one worker's crash corrupt every other worker's database.
    synchronous: str = "NORMAL"
    #: Sample every worker's CPU time and RSS with a
    #: :class:`~repro.obs.ResourceMonitor` and return the usage on each
    #: :class:`WorkerResult` (the ``ocb bench`` matrix sets this).
    monitor: bool = False
    #: Sampling period (seconds) of the per-worker monitors.
    monitor_interval: float = 0.05
    #: Shard count for engines with the ``sharded`` capability: the
    #: coordinator partitions storage into this many files and assigns
    #: every worker the home shard of its mutation lane
    #: (``client_id % shards``).  ``None`` keeps the engine's default;
    #: setting it for a non-sharded backend is refused loudly.
    shards: Optional[int] = None
    #: Offered arrival rate (operations/second, summed over workers) for
    #: open-loop pacing of scenario warm phases.  ``None`` keeps the
    #: classic closed loop; a rate splits evenly across workers (each
    #: gets ``rate / clients`` on its own seeded arrival lane) and every
    #: worker records intended-arrival latency + late-start backlog.
    rate: Optional[float] = None
    #: Arrival process for :attr:`rate` (``"poisson"`` or ``"fixed"``).
    arrival_mode: str = "poisson"

    def __post_init__(self) -> None:
        if self.busy_timeout_ms < 0:
            raise ParameterError(
                f"busy_timeout_ms must be >= 0, got {self.busy_timeout_ms}")
        if self.start_method not in _START_METHODS:
            raise ParameterError(
                f"start_method must be one of {_START_METHODS}, "
                f"got {self.start_method!r}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ParameterError(
                f"max_workers must be >= 1, got {self.max_workers}")
        if self.monitor_interval <= 0.0:
            raise ParameterError(
                f"monitor_interval must be > 0, got {self.monitor_interval}")
        if self.shards is not None and self.shards < 1:
            raise ParameterError(
                f"shards must be >= 1, got {self.shards}")
        if self.rate is not None and self.rate <= 0.0:
            raise ParameterError(
                f"rate must be > 0, got {self.rate}")
        if self.arrival_mode not in ("poisson", "fixed"):
            raise ParameterError(
                f"arrival_mode must be 'poisson' or 'fixed', "
                f"got {self.arrival_mode!r}")


@dataclass
class WorkerSpec:
    """One worker's complete, picklable job description."""

    client_id: int
    database: OCBDatabase
    parameters: WorkloadParameters
    backend: str
    backend_options: Dict[str, object] = field(default_factory=dict)
    store_config: Optional[StoreConfig] = None
    #: ``True``: attach to storage the coordinator already bulk-loaded
    #: (shared-engine mode); ``False``: build and load a private replica
    #: (engines without the ``concurrent`` capability).
    shared: bool = False
    batch: Optional[bool] = None
    #: Declarative scenario mix to execute instead of the classic
    #: transaction protocol.  ``None`` keeps the legacy read-only path;
    #: a :class:`~repro.core.scenario.WorkloadMix` makes the worker a
    #: scenario client: ``parameters.clients`` is the partition width,
    #: ``parameters.cold_n``/``hot_n`` the protocol sizes, and mutating
    #: mixes on shared storage run with tolerant write-backs (see the
    #: scenario module docs).
    mix: Optional[WorkloadMix] = None
    #: Wrap the protocol in a :class:`~repro.obs.ResourceMonitor` and
    #: ship the usage back on the result.
    monitor: bool = False
    monitor_interval: float = 0.05
    #: Affinity shard of this worker on a sharded engine
    #: (``client_id % shards`` — the residue class its mutation lane
    #: lives in).  ``None`` for non-sharded backends; injected into the
    #: backend options when the worker reconnects on its side of the
    #: fork, so the engine opens its connection set home-shard-first
    #: and accounts ``remote_reads`` / ``remote_writes``.
    home_shard: Optional[int] = None
    #: This worker's share of an open-loop offered rate (ops/second).
    #: ``None`` keeps the closed-loop warm phase; set, the warm phase is
    #: paced by a seeded arrival schedule on the worker's own lane
    #: (substream offset = ``client_id``) and the result's scenario
    #: report carries ``late_starts`` / ``max_backlog``.
    rate: Optional[float] = None
    #: Arrival process for :attr:`rate`.
    arrival_mode: str = "poisson"
    #: Decode-free read mode for the worker's session (the scenario
    #: layer's ``Scenario.lazy`` threaded across the fork); the merged
    #: ``decodes_avoided`` lands on :attr:`WorkerResult.backend_stats`.
    lazy: bool = False
    #: Pipelined BFS for the worker's session (``Scenario.pipeline``
    #: threaded across the fork) — effective only on engines declaring
    #: ``supports_async_reads``.
    pipeline: bool = False

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ParameterError(
                f"client_id must be >= 0, got {self.client_id}")
        if self.home_shard is not None and self.home_shard < 0:
            raise ParameterError(
                f"home_shard must be >= 0, got {self.home_shard}")


@dataclass
class WorkerResult:
    """One worker's report, timing and contention counters."""

    client_id: int
    pid: int
    report: WorkloadReport
    #: Wall-clock of the cold+warm protocol itself.
    wall_seconds: float
    #: Wall-clock of connecting/loading before the protocol started.
    setup_seconds: float
    busy_retries: int = 0
    busy_wait_seconds: float = 0.0
    backend_stats: Dict[str, object] = field(default_factory=dict)
    #: Per-operation-class scenario breakdown — set when the spec
    #: carried a :class:`~repro.core.scenario.WorkloadMix`.
    scenario_report: Optional[ClientScenarioReport] = None
    #: This worker's sampled CPU/RSS usage
    #: (:meth:`repro.obs.ResourceUsage.to_dict` shape) — set when the
    #: spec asked for monitoring.
    resource_usage: Optional[Dict[str, object]] = None

    @property
    def worker_id(self) -> int:
        """Alias of :attr:`client_id` (the report-side naming)."""
        return self.client_id

    @property
    def transactions(self) -> int:
        """Transactions this worker executed (cold + warm)."""
        return (self.report.cold.transaction_count
                + self.report.warm.transaction_count)

"""The process-parallel coordinator: CLIENTN clients, CLIENTN processes.

OCB's original implementation "also supports multiple users, in a very
simple way (using processes)".  :class:`ParallelRunner` is that
capability rebuilt on the backends subsystem: it bulk-loads one shared
engine, hands every client a :class:`~repro.parallel.spec.WorkerSpec`,
and lets a :class:`~repro.parallel.pool.ProcessPool` run them as real OS
processes — real file locks, real busy retries, real parallel
wall-clock — then folds the results into a
:class:`~repro.parallel.report.ParallelReport`.

Two execution modes, chosen per backend:

* **shared** — the backend declares the ``concurrent`` capability
  (SQLite on a file).  The coordinator creates the file (WAL journal,
  busy-timeout budget from the :class:`ParallelConfig`), bulk-loads the
  database, closes its own connection, and every worker opens an
  independent connection to the same file;
* **replicated** — the engine's state lives in process memory
  (simulated, memory, ``:memory:`` SQLite).  Every worker bulk-loads a
  private replica; the logical metrics are still exactly those of the
  in-process :class:`~repro.multiuser.runner.MultiClientRunner`, which
  is the determinism bridge the test-suite pins.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Dict, Optional

from repro.backends import create_backend
from repro.backends.registry import backend_info
from repro.core.database import OCBDatabase
from repro.core.parameters import WorkloadParameters
from repro.errors import BackendError, WorkloadError
from repro.parallel.pool import ProcessPool
from repro.parallel.report import ParallelReport
from repro.parallel.spec import ParallelConfig, WorkerSpec
from repro.parallel.worker import run_worker
from repro.store.serializer import StoredObject
from repro.store.storage import StoreConfig

__all__ = ["ParallelRunner", "ShardLoadTask", "load_shard"]


def _backend_capabilities(name: str) -> tuple:
    try:
        return backend_info(name).capabilities
    except BackendError as exc:
        raise WorkloadError(str(exc)) from exc


@dataclass
class ShardLoadTask:
    """One shard file's picklable bulk-load job (coordinator fan-out)."""

    path: str
    records: List[StoredObject] = field(default_factory=list)
    page_size: int = 4096
    cache_pages: int = 128
    synchronous: str = "NORMAL"
    journal_mode: str = "WAL"
    busy_timeout_ms: int = 5000
    ref_index: bool = True


def load_shard(task: ShardLoadTask) -> int:
    """Bulk-load one shard file; module-level so every start method can
    ship it to a child process.  Returns the shard's object count."""
    from repro.backends.sqlite import SQLiteBackend

    engine = SQLiteBackend(path=task.path,
                           page_size=task.page_size,
                           cache_pages=task.cache_pages,
                           synchronous=task.synchronous,
                           journal_mode=task.journal_mode,
                           busy_timeout_ms=task.busy_timeout_ms,
                           ref_index=task.ref_index)
    try:
        if engine.object_count == 0:
            engine.bulk_load(task.records)
        return engine.object_count
    finally:
        engine.close()


class ParallelRunner:
    """Run ``parameters.clients`` OCB clients as concurrent OS processes.

    ``backend`` must be a registered backend *name* — the workers
    resolve it through the registry on their side of the process
    boundary, so a live engine instance (unpicklable connections and
    all) never has to cross it.
    """

    def __init__(self, database: OCBDatabase,
                 backend: str,
                 parameters: WorkloadParameters,
                 config: Optional[ParallelConfig] = None,
                 store_config: Optional[StoreConfig] = None,
                 backend_options: Optional[Dict[str, object]] = None,
                 batch: Optional[bool] = None,
                 mix: "Optional[object]" = None,
                 lazy: bool = False,
                 pipeline: bool = False) -> None:
        if not isinstance(backend, str):
            raise WorkloadError(
                "ParallelRunner needs a registered backend name; live "
                "engine instances cannot cross a process boundary")
        if parameters.clients < 1:
            raise WorkloadError(f"need >= 1 client, got {parameters.clients}")
        self.database = database
        self.backend = backend.strip().lower()
        self.parameters = parameters
        self.config = config or ParallelConfig()
        self.store_config = store_config
        self.backend_options = dict(backend_options or {})
        self.batch = batch
        #: Optional :class:`~repro.core.scenario.WorkloadMix` — threaded
        #: through every :class:`WorkerSpec` so the workers execute a
        #: declarative scenario (possibly mutating) instead of the
        #: classic read-only transaction protocol.
        self.mix = mix
        #: Decode-free reads / pipelined BFS for every worker's session
        #: (``Scenario.lazy`` / ``Scenario.pipeline`` threaded across the
        #: process boundary).
        self.lazy = bool(lazy)
        self.pipeline = bool(pipeline)
        path = self.backend_options.get("path")
        capabilities = _backend_capabilities(self.backend)
        self.shared = ("concurrent" in capabilities and path != ":memory:")
        #: Whether the engine partitions the oid space across shards —
        #: shard count and per-worker home shards only apply then.
        self.sharded = "sharded" in capabilities
        if self.config.shards is not None and not self.sharded:
            raise WorkloadError(
                f"ParallelConfig.shards={self.config.shards} was set but "
                f"backend {self.backend!r} does not have the 'sharded' "
                f"capability; drop the knob or pick a sharded engine")
        self.shard_count: Optional[int] = None
        if self.sharded:
            # Default to shards == workers: each worker's mutation lane
            # (``oid % clients``) is then exactly its home shard, the
            # alignment that collapses write contention.
            explicit = self.backend_options.get("shards")
            self.shard_count = int(explicit or self.config.shards
                                   or parameters.clients)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self) -> ParallelReport:
        """Load, spawn, execute, merge."""
        with self._storage_options() as options:
            if self.shared:
                self._load_shared(options)
            # An offered rate is a fleet-wide target: each worker paces
            # its even share on its own seeded arrival lane.
            rate_share = (self.config.rate / self.parameters.clients
                          if self.config.rate is not None else None)
            specs = [WorkerSpec(client_id=client,
                                database=self.database,
                                parameters=self.parameters,
                                backend=self.backend,
                                backend_options=options,
                                store_config=self.store_config,
                                shared=self.shared,
                                batch=self.batch,
                                mix=self.mix,
                                monitor=self.config.monitor,
                                monitor_interval=self.config.monitor_interval,
                                home_shard=self._home_shard(client),
                                rate=rate_share,
                                arrival_mode=self.config.arrival_mode,
                                lazy=self.lazy,
                                pipeline=self.pipeline)
                     for client in range(self.parameters.clients)]
            pool = ProcessPool(
                processes=self.config.max_workers or len(specs),
                start_method=self.config.start_method,
                parallel=self.config.parallel)
            started = time.perf_counter()
            results = pool.map(run_worker, specs)
            elapsed = time.perf_counter() - started
        results.sort(key=lambda result: result.client_id)
        return ParallelReport(
            workers=results,
            backend_name=self.backend,
            mode="shared" if self.shared else "replicated",
            elapsed_seconds=elapsed,
            executed_parallel=pool.executed_parallel)

    @contextlib.contextmanager
    def _storage_options(self) -> Iterator[Dict[str, object]]:
        """Resolve this run's backend options; guarantee temp cleanup.

        When the caller supplied no storage path, the shared database
        (or shard directory) lives in a fresh temp directory for the
        duration of the run.  The context form is what makes teardown
        unconditional: a worker that crashes — or a pool that breaks —
        propagates through ``run()``'s body, and the directory is still
        removed on the way out instead of leaking.
        """
        options = dict(self.backend_options)
        tempdir: Optional[str] = None
        try:
            if self.shared:
                if self.sharded:
                    options["shards"] = self.shard_count
                if not options.get("path"):
                    tempdir = tempfile.mkdtemp(prefix="ocb-parallel-")
                    options["path"] = (
                        os.path.join(tempdir, "shards") if self.sharded
                        else os.path.join(tempdir, "shared.db"))
                options.setdefault("journal_mode", self.config.journal_mode)
                options.setdefault("busy_timeout_ms",
                                   self.config.busy_timeout_ms)
                options.setdefault("synchronous", self.config.synchronous)
            yield options
        finally:
            if tempdir is not None:
                shutil.rmtree(tempdir, ignore_errors=True)

    def _home_shard(self, client: int) -> Optional[int]:
        """The affinity shard of *client* — its mutation lane's residue
        class — on a shared sharded engine; ``None`` otherwise."""
        if not (self.sharded and self.shared and self.shard_count):
            return None
        return client % self.shard_count

    def _load_shared(self, options: Dict[str, object]) -> None:
        """Bulk-load the shared storage, validate the contract, disconnect.

        The coordinator's connection is closed before any worker spawns
        so the workers' locks contend only with each other, never with a
        parent connection forked into their address space.  Before that,
        the :meth:`~repro.backends.base.Backend.connect_worker` contract
        is exercised once — if a backend registers the ``concurrent``
        capability without actually supporting independent connections,
        the run fails here, loudly, instead of spawning workers against
        storage they cannot attach to.
        """
        engine = create_backend(self.backend, self.store_config, **options)
        try:
            if not getattr(engine, "supports_concurrent_access", False):
                raise WorkloadError(
                    f"backend {self.backend!r} is registered with the "
                    f"'concurrent' capability but the engine does not "
                    f"declare supports_concurrent_access; fix the "
                    f"registration or implement connect_worker")
            if engine.object_count == 0:
                if self.sharded and getattr(engine, "shards", 1) > 1:
                    self._load_shards_parallel(engine)
                else:
                    self.database.load_into(engine)
            elif engine.object_count != self.database.num_objects:
                raise WorkloadError(
                    f"shared storage at {options.get('path')!r} holds "
                    f"{engine.object_count} objects but the database has "
                    f"{self.database.num_objects}; refusing to run "
                    f"against mismatched data")
            else:
                self._verify_shared_content(engine, options)
            engine.flush()
            # One probe connection proves workers will be able to attach.
            probe = engine.connect_worker()
            probe.close()
        finally:
            engine.close()

    def _load_shards_parallel(self, engine) -> None:
        """Bulk-load the shard files concurrently, one process per shard.

        The coordinator partitions the serialized records by the
        engine's own shard function and ships one
        :class:`ShardLoadTask` per shard through the same
        :class:`ProcessPool` the workers will use (honest sequential
        fallback included), so load time scales with the slowest shard
        instead of the whole database.
        """
        records = self.database.to_records()
        partitions: List[List[StoredObject]] = [[] for _ in
                                                range(engine.shards)]
        for oid in sorted(records):
            partitions[engine.shard_of(oid)].append(records[oid])
        tasks = [ShardLoadTask(path=engine.shard_path(shard),
                               records=partitions[shard],
                               page_size=engine.page_size,
                               cache_pages=engine.cache_pages,
                               synchronous=engine.synchronous,
                               journal_mode=engine.journal_mode,
                               busy_timeout_ms=engine.busy_timeout_ms,
                               ref_index=engine.ref_index)
                 for shard in range(engine.shards)]
        pool = ProcessPool(processes=len(tasks),
                           start_method=self.config.start_method,
                           parallel=self.config.parallel)
        loaded = sum(pool.map(load_shard, tasks))
        if loaded != self.database.num_objects:
            raise WorkloadError(
                f"parallel shard load stored {loaded} objects but the "
                f"database has {self.database.num_objects}")

    #: Records spot-checked when attaching to pre-existing storage.
    _CONTENT_SAMPLE = 16

    def _verify_shared_content(self, engine, options: Dict[str, object]
                               ) -> None:
        """Spot-check pre-existing storage against the database.

        A count match alone would accept a file loaded from a different
        seed with the same NO — workers would then traverse one graph
        while reading another's records.  Comparing a deterministic
        sample of stored records (cid, references, filler) against the
        in-memory graph catches that without re-serializing the whole
        database.
        """
        from repro.errors import UnknownObject

        oids = sorted(self.database.objects)
        step = max(1, len(oids) // self._CONTENT_SAMPLE)
        for oid in oids[::step][:self._CONTENT_SAMPLE]:
            expected = self.database.to_record(oid)
            try:
                stored = engine.read_object(oid)
            except UnknownObject:
                stored = None
            if stored != expected:
                raise WorkloadError(
                    f"shared storage at {options.get('path')!r} holds a "
                    f"different database (object {oid} differs); it is "
                    f"stale — delete the file or pass the database it "
                    f"was loaded from")

"""The worker-process entry point: one OCB client, one connection.

:func:`run_worker` is deliberately a module-level function of one
picklable argument so every ``multiprocessing`` start method (fork,
spawn, forkserver) can ship it to a child process.  The worker rebuilds
its whole execution stack on its side of the boundary:

* **shared mode** — resolve the backend name through the registry with
  the coordinator's options (the file path, journal mode and busy
  budget), which opens this process's *own* connection to the shared
  storage; attach without loading (``Session.for_database(load=False)``).
* **replicated mode** — build a private engine and bulk-load the
  database into it (simulated / memory engines, whose state cannot be
  shared across processes).

Either way the client's transaction stream is drawn from the same
Lewis–Payne substream (``client_id``-keyed) the in-process
:class:`~repro.multiuser.runner.MultiClientRunner` would use, so the
logical metrics are identical by construction — only the wall clock and
the contention counters change.
"""

from __future__ import annotations

import os
import time

from repro.core.session import Session
from repro.core.workload import WorkloadRunner
from repro.parallel.spec import WorkerSpec, WorkerResult

__all__ = ["run_worker"]


def run_worker(spec: WorkerSpec) -> WorkerResult:
    """Execute one client's cold/warm protocol; return its metrics."""
    setup_start = time.perf_counter()
    session = Session.for_database(
        spec.database, spec.backend,
        store_config=spec.store_config,
        backend_options=dict(spec.backend_options),
        batch=spec.batch,
        load=not spec.shared)
    runner = WorkloadRunner(spec.database, session, spec.parameters,
                            client_id=spec.client_id)
    setup_seconds = time.perf_counter() - setup_start

    run_start = time.perf_counter()
    report = runner.run()
    wall_seconds = time.perf_counter() - run_start

    stats = session.store.stats()
    session.close()
    return WorkerResult(
        client_id=spec.client_id,
        pid=os.getpid(),
        report=report,
        wall_seconds=wall_seconds,
        setup_seconds=setup_seconds,
        busy_retries=int(stats.get("busy_retries", 0) or 0),
        busy_wait_seconds=float(stats.get("busy_wait_seconds", 0.0) or 0.0),
        backend_stats=stats)

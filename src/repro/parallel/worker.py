"""The worker-process entry point: one OCB client, one connection.

:func:`run_worker` is deliberately a module-level function of one
picklable argument so every ``multiprocessing`` start method (fork,
spawn, forkserver) can ship it to a child process.  The worker rebuilds
its whole execution stack on its side of the boundary:

* **shared mode** — resolve the backend name through the registry with
  the coordinator's options (the file path, journal mode and busy
  budget), which opens this process's *own* connection to the shared
  storage; attach without loading (``Session.for_database(load=False)``).
* **replicated mode** — build a private engine and bulk-load the
  database into it (simulated / memory engines, whose state cannot be
  shared across processes).

Either way the client's transaction stream is drawn from the same
Lewis–Payne substream (``client_id``-keyed) the in-process
:class:`~repro.multiuser.runner.MultiClientRunner` would use, so the
logical metrics are identical by construction — only the wall clock and
the contention counters change.

When the spec carries a :class:`~repro.core.scenario.WorkloadMix`, the
worker becomes a *scenario* client instead: the pickled database copy is
its private logical view, mutating mixes partition the oid space by
``client_id`` (see :mod:`repro.core.scenario`), and the result carries
the per-operation-class breakdown next to the classic report.  This is
how ``ocb scenario --processes N`` runs read/write mixes against one
shared SQLite file where write-write collisions and busy retries
genuinely occur.
"""

from __future__ import annotations

import os
import time

from repro.core.scenario import ClientExecutor, ClientScenarioReport, \
    ScenarioCollector
from repro.core.session import Session
from repro.core.workload import WorkloadReport, WorkloadRunner
from repro.obs import ResourceMonitor, trace
from repro.parallel.spec import WorkerSpec, WorkerResult

__all__ = ["run_worker"]


def run_worker(spec: WorkerSpec) -> WorkerResult:
    """Execute one client's cold/warm protocol; return its metrics.

    With ``spec.monitor`` set, the whole body (setup + protocol) runs
    under a :class:`~repro.obs.ResourceMonitor` whose usage comes back
    on :attr:`~repro.parallel.spec.WorkerResult.resource_usage` — this
    is the per-worker RSS/CPU sampling of the ``ocb bench`` matrix.
    """
    monitor = None
    if spec.monitor:
        monitor = ResourceMonitor(interval=spec.monitor_interval).start()
    try:
        result = _run_worker(spec)
    finally:
        usage = monitor.stop() if monitor is not None else None
    if usage is not None:
        result.resource_usage = usage.to_dict()
    return result


def _run_worker(spec: WorkerSpec) -> WorkerResult:
    setup_start = time.perf_counter()
    backend_options = dict(spec.backend_options)
    if spec.home_shard is not None:
        # Sharded engines open this worker's connection set home-shard
        # first and account remote_reads/remote_writes against it.
        backend_options.setdefault("home_shard", spec.home_shard)
    session = Session.for_database(
        spec.database, spec.backend,
        store_config=spec.store_config,
        backend_options=backend_options,
        batch=spec.batch,
        load=not spec.shared,
        lazy=spec.lazy,
        pipeline=spec.pipeline)
    if trace.enabled:
        trace.emit("worker.setup", time.perf_counter() - setup_start,
                   client=spec.client_id, shared=spec.shared)
    if spec.mix is None:
        runner = WorkloadRunner(spec.database, session, spec.parameters,
                                client_id=spec.client_id)
        setup_seconds = time.perf_counter() - setup_start
        run_start = time.perf_counter()
        report = runner.run()
        wall_seconds = time.perf_counter() - run_start
        scenario_report = None
    else:
        partitioned = spec.parameters.clients > 1 and spec.mix.mutates
        executor = ClientExecutor(
            spec.database, spec.mix, session,
            client_id=spec.client_id,
            total_clients=spec.parameters.clients,
            seed=spec.parameters.seed,
            partitioned=partitioned,
            # Mutating clients of one shared engine must survive reading
            # or writing back rows a concurrent client deleted; private
            # replicas cannot conflict, so the flag only bites when shared.
            tolerate_conflicts=partitioned and spec.shared)
        setup_seconds = time.perf_counter() - setup_start
        cold = ScenarioCollector("cold")
        warm = ScenarioCollector("warm")
        late_starts = 0
        max_backlog = 0
        run_start = time.perf_counter()
        for _ in range(spec.parameters.cold_n):
            executor.step(cold)
        if spec.rate is None:
            for _ in range(spec.parameters.hot_n):
                executor.step(warm)
        else:
            # Open-loop warm phase: this worker paces its share of the
            # offered rate on its own seeded arrival lane and records
            # intended-arrival latency (see repro.core.loadgen).
            from repro.core.loadgen import ArrivalSchedule, pace
            from repro.obs.latency import LatencyCollector
            from repro.rand.lewis_payne import DEFAULT_SEED
            schedule = ArrivalSchedule(
                rate=spec.rate, operations=spec.parameters.hot_n,
                mode=spec.arrival_mode,
                seed=(spec.parameters.seed
                      if spec.parameters.seed is not None
                      else DEFAULT_SEED),
                stream=spec.client_id)
            latency = LatencyCollector()
            pace(schedule.offsets(), lambda index: executor.step(warm),
                 latency)
            late_starts = latency.late_starts
            max_backlog = latency.max_backlog
        wall_seconds = time.perf_counter() - run_start
        report = WorkloadReport(cold=cold.classic.report,
                                warm=warm.classic.report)
        scenario_report = ClientScenarioReport(
            client_id=spec.client_id,
            cold=cold.phase, warm=warm.phase,
            read_misses=executor.read_misses,
            write_conflicts=executor.write_conflicts,
            pid=os.getpid(),
            wall_seconds=wall_seconds,
            late_starts=late_starts,
            max_backlog=max_backlog)

    stats = session.store.stats()
    session.close()
    busy_retries = int(stats.get("busy_retries", 0) or 0)
    busy_wait = float(stats.get("busy_wait_seconds", 0.0) or 0.0)
    if scenario_report is not None:
        scenario_report.busy_retries = busy_retries
        scenario_report.busy_wait_seconds = busy_wait
        scenario_report.remote_reads = int(
            stats.get("remote_reads", 0) or 0)
    return WorkerResult(
        client_id=spec.client_id,
        pid=os.getpid(),
        report=report,
        wall_seconds=wall_seconds,
        setup_seconds=setup_seconds,
        busy_retries=busy_retries,
        busy_wait_seconds=busy_wait,
        backend_stats=stats,
        scenario_report=scenario_report)

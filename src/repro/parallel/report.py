"""Merged results of a process-parallel run.

:class:`ParallelReport` folds the per-worker results into the existing
:class:`~repro.multiuser.runner.MultiUserReport` shape — the same merged
cold/warm phases, the same wall-clock percentiles — so every table and
comparison helper in :mod:`repro.reporting` renders a single-process
interleaved run and a multi-process contended run side by side.  On top
of that shape it adds what only real parallelism has: harness wall-clock
(spawn to join), aggregate throughput, and the contention counters
(busy retries, time spent waiting on locks) the engines accounted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import List

from repro.core.metrics import LatencyPercentiles, PhaseReport
from repro.multiuser.runner import MultiUserReport
from repro.parallel.spec import WorkerResult

__all__ = ["ParallelReport"]


@dataclass
class ParallelReport:
    """Per-worker and merged metrics of a process-parallel run."""

    workers: List[WorkerResult] = field(default_factory=list)
    backend_name: str = "sqlite"
    #: ``"shared"`` — every worker drove its own connection to one
    #: engine; ``"replicated"`` — every worker drove a private replica.
    mode: str = "shared"
    #: Harness wall-clock from first spawn to last join (seconds).
    elapsed_seconds: float = 0.0
    #: Whether workers really ran as OS processes (``False`` means the
    #: sequential fallback executed — identical metrics, no parallelism).
    executed_parallel: bool = True

    # -- the MultiUserReport shape --------------------------------------- #

    def to_multiuser(self) -> MultiUserReport:
        """The run folded into the in-process multi-user report shape."""
        return MultiUserReport(
            clients=[worker.report for worker in self.workers],
            backend_name=self.backend_name)

    @property
    def worker_count(self) -> int:
        """Number of worker processes that ran."""
        return len(self.workers)

    # The merged folds walk every transaction sample of every worker, and
    # one rendered report reads them several times — cache the fold (the
    # worker list is append-only during the run and fixed afterwards).

    @cached_property
    def merged_cold(self) -> PhaseReport:
        """All workers' cold runs folded together."""
        return self.to_multiuser().merged_cold

    @cached_property
    def merged_warm(self) -> PhaseReport:
        """All workers' warm runs folded together."""
        return self.to_multiuser().merged_warm

    @cached_property
    def cold_wall_percentiles(self) -> LatencyPercentiles:
        """P50/P95/P99 over every cold transaction of every worker."""
        return self.merged_cold.wall_percentiles()

    @cached_property
    def warm_wall_percentiles(self) -> LatencyPercentiles:
        """P50/P95/P99 over every warm transaction of every worker."""
        return self.merged_warm.wall_percentiles()

    def worker_wall_percentiles(self, index: int) -> LatencyPercentiles:
        """One worker's warm-phase wall-clock percentiles."""
        return self.workers[index].report.warm.wall_percentiles()

    # -- what only real parallelism measures ----------------------------- #

    @property
    def total_transactions(self) -> int:
        """Transactions executed across all workers (cold + warm)."""
        return sum(worker.transactions for worker in self.workers)

    @property
    def throughput(self) -> float:
        """Aggregate transactions per second of harness wall-clock."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.total_transactions / self.elapsed_seconds

    @property
    def busy_retries(self) -> int:
        """Lock collisions retried, summed over all workers."""
        return sum(worker.busy_retries for worker in self.workers)

    @property
    def busy_wait_seconds(self) -> float:
        """Time spent backing off on locks, summed over all workers."""
        return sum(worker.busy_wait_seconds for worker in self.workers)

    @property
    def decodes_avoided(self) -> int:
        """Record decodes skipped (lazy reads + structure-only frontier
        answers), summed over every worker's engine stats."""
        return sum(int((worker.backend_stats or {})
                       .get("decodes_avoided", 0) or 0)
                   for worker in self.workers)

    @property
    def max_inflight_reads(self) -> int:
        """Widest concurrent read fan-out any worker's engine reached."""
        return max((int((worker.backend_stats or {})
                        .get("max_inflight_reads", 0) or 0)
                    for worker in self.workers), default=0)

    @property
    def pool_wait_seconds(self) -> float:
        """Time read batches spent blocked on exhausted connection
        pools, summed over every worker's engine."""
        return sum(float((worker.backend_stats or {})
                         .get("pool_wait_seconds", 0.0) or 0.0)
                   for worker in self.workers)

    # -- scenario-mix aggregates (zero for classic read-only runs) ------- #

    @property
    def read_misses(self) -> int:
        """Tolerated reads of rows a concurrent worker deleted."""
        return sum(worker.scenario_report.read_misses
                   for worker in self.workers
                   if worker.scenario_report is not None)

    @property
    def write_conflicts(self) -> int:
        """Tolerated write-backs to rows a concurrent worker deleted."""
        return sum(worker.scenario_report.write_conflicts
                   for worker in self.workers
                   if worker.scenario_report is not None)

    def describe(self) -> str:
        """One line: workers, mode, throughput, contention."""
        mode = self.mode if self.executed_parallel else \
            f"{self.mode}, sequential fallback"
        return (f"{self.worker_count} workers ({mode}) on "
                f"{self.backend_name!r}: {self.total_transactions} txns "
                f"in {self.elapsed_seconds:.3f} s "
                f"({self.throughput:.1f} txn/s), "
                f"{self.busy_retries} busy retries")

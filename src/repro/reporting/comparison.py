"""Cross-backend comparison rendering.

One :class:`BackendRunSummary` row per engine — the logical workload
numbers (which must match across backends, since the RNG streams and the
object graph are identical), the simulated I/O costs (zero for engines
without a cost model) and the wall-clock latency percentiles that make
real engines comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.metrics import LatencyPercentiles
from repro.core.workload import WorkloadReport
from repro.reporting.tables import render_table

__all__ = ["BackendRunSummary", "summarize_backend_run",
           "render_backend_comparison"]


@dataclass(frozen=True)
class BackendRunSummary:
    """Warm-run summary of one backend's execution of the shared workload."""

    backend: str
    transactions: int
    visits_per_transaction: float
    reads_per_transaction: float
    ios_per_transaction: float
    sim_time_per_transaction: float
    wall: LatencyPercentiles
    wall_total_seconds: float


def summarize_backend_run(backend: str,
                          report: WorkloadReport) -> BackendRunSummary:
    """Fold a :class:`WorkloadReport`'s warm phase into one table row."""
    totals = report.warm.totals
    return BackendRunSummary(
        backend=backend,
        transactions=totals.count,
        visits_per_transaction=totals.visits_per_transaction,
        reads_per_transaction=totals.reads_per_transaction,
        ios_per_transaction=totals.ios_per_transaction,
        sim_time_per_transaction=totals.sim_time_per_transaction,
        wall=report.warm.wall_percentiles(),
        wall_total_seconds=totals.wall_time)


def render_backend_comparison(
        summaries: Sequence[BackendRunSummary],
        title: str = "Cross-backend comparison (warm run)") -> str:
    """The cross-backend table: simulated costs next to wall-clock tails."""
    rows: List[List[object]] = []
    for s in summaries:
        rows.append([
            s.backend,
            s.transactions,
            s.visits_per_transaction,
            s.reads_per_transaction,
            s.ios_per_transaction,
            s.sim_time_per_transaction,
            s.wall.p50 * 1e3,
            s.wall.p95 * 1e3,
            s.wall.p99 * 1e3,
            s.wall_total_seconds,
        ])
    return render_table(
        ["backend", "n", "objects/txn", "reads/txn", "IOs/txn",
         "t_sim/txn (s)", "P50 (ms)", "P95 (ms)", "P99 (ms)", "wall (s)"],
        rows, title=title, precision=3)

"""Load-sweep rendering: latency vs offered load, knee, DES validation.

One ``load_sweep`` document (see ``docs/bench_schema.md``) renders as
three pieces: the per-rate table with the response/service latency
split and the predicted-vs-measured wait columns, an ASCII chart of the
latency-vs-offered-load curve (the hockey stick whose bend is the
knee), and a headline naming the knee rate — or certifying that the
sweep never saturated.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.reporting.figures import render_line_chart
from repro.reporting.tables import render_table

__all__ = ["render_load_sweep", "render_load_chart", "describe_knee",
           "render_load_report"]


def _ordered(cells: Sequence[Mapping[str, object]]
             ) -> List[Mapping[str, object]]:
    return sorted(cells, key=lambda cell: float(cell["offered_rate"]))


def render_load_sweep(cells: Sequence[Mapping[str, object]],
                      title: Optional[str] = None) -> str:
    """One row per offered rate: achieved throughput, latency split,
    backlog accounting and the DES predicted-vs-measured wait pair."""
    if title is None:
        first = _ordered(cells)[0]
        title = (f"Load sweep — scenario {first['scenario']!r} on "
                 f"{first['backend']!r} ({first['arrival_mode']} arrivals)")
    rows: List[List[object]] = []
    for cell in _ordered(cells):
        predicted = cell.get("predicted_wait_mean_ms")
        rows.append([
            float(cell["offered_rate"]),
            float(cell["throughput"]),
            int(cell["operations"]),
            int(cell["late_starts"]),
            int(cell["max_backlog"]),
            float(cell["service_p95_ms"]),
            float(cell["response_p50_ms"]),
            float(cell["response_p95_ms"]),
            float(cell["response_p99_ms"]),
            float(cell["response_p999_ms"]),
            float(cell["wait_mean_ms"]),
            float(predicted) if predicted is not None else "-",
            "knee" if cell.get("knee")
            else ("sat" if cell.get("saturated") else ""),
        ])
    return render_table(
        ["offered (op/s)", "achieved (op/s)", "ops", "late", "backlog",
         "svc P95 (ms)", "resp P50 (ms)", "resp P95 (ms)",
         "resp P99 (ms)", "resp P99.9 (ms)", "wait meas (ms)",
         "wait pred (ms)", ""],
        rows, title=title, precision=2)


def render_load_chart(cells: Sequence[Mapping[str, object]],
                      width: int = 64, height: int = 16) -> str:
    """Response vs service P95 against offered rate — the latency curve
    whose divergence *is* coordinated omission made visible."""
    ordered = _ordered(cells)
    series: Dict[str, List] = {
        "response P95": [(float(cell["offered_rate"]),
                          float(cell["response_p95_ms"]))
                         for cell in ordered],
        "service P95": [(float(cell["offered_rate"]),
                         float(cell["service_p95_ms"]))
                        for cell in ordered],
    }
    return render_line_chart(series, width=width, height=height,
                             title="latency vs offered load",
                             x_label="offered rate (op/s)",
                             y_label="P95 (ms)")


def describe_knee(document: Mapping[str, object]) -> str:
    """One headline line for the sweep's saturation verdict."""
    knee = document.get("config", {}).get("knee",
                                          document.get("knee"))
    cells = document["cells"]
    top = max(float(cell["offered_rate"]) for cell in cells)
    if knee is None:
        return (f"no saturation knee up to {top:g} op/s — "
                f"achieved throughput tracked every offered rate")
    return (f"saturation knee at {float(knee):g} op/s "
            f"(achieved throughput diverges / response tail blows up "
            f"at and beyond this offered rate)")


def render_load_report(document: Mapping[str, object]) -> str:
    """Full console rendering of one ``load_sweep`` document."""
    cells = document["cells"]
    parts = [render_load_sweep(cells)]
    if len(cells) > 1:
        parts.extend(["", render_load_chart(cells)])
    parts.extend(["", describe_knee(document)])
    return "\n".join(parts)
"""CSV output for benchmark results (EXPERIMENTS.md's raw data)."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.errors import ReportingError

__all__ = ["rows_to_csv", "write_csv"]


def rows_to_csv(headers: Sequence[str],
                rows: Sequence[Sequence[Any]]) -> str:
    """Serialize rows to CSV text (RFC 4180 quoting, ``\\n`` line ends)."""
    if not headers:
        raise ReportingError("CSV needs at least one column")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        if len(row) != len(headers):
            raise ReportingError(
                f"row {row!r} has {len(row)} cells; expected {len(headers)}")
        writer.writerow(list(row))
    return buffer.getvalue()


def write_csv(path: Union[str, Path], headers: Sequence[str],
              rows: Sequence[Sequence[Any]]) -> Path:
    """Write rows to *path*; parent directories are created as needed."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(rows_to_csv(headers, rows), encoding="utf-8")
    return target

"""ASCII charts — enough to redraw the paper's Figure 4 in a terminal.

Figure 4 plots database creation time against database size on log-log
axes for three schema widths.  :func:`render_line_chart` reproduces that
as a character raster; :func:`render_series_table` prints the underlying
numbers (which is what EXPERIMENTS.md records).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReportingError
from repro.reporting.tables import render_table

__all__ = ["Series", "render_line_chart", "render_series_table"]

#: One plotted series: name -> [(x, y), ...]
Series = Dict[str, List[Tuple[float, float]]]

_MARKERS = "ox+*#@%"


def _transform(value: float, log: bool) -> float:
    if not log:
        return value
    if value <= 0:
        raise ReportingError(f"log axis requires positive values, got {value}")
    return math.log10(value)


def render_line_chart(series: Series, width: int = 64, height: int = 20,
                      log_x: bool = False, log_y: bool = False,
                      title: Optional[str] = None,
                      x_label: str = "x", y_label: str = "y") -> str:
    """Scatter/line chart as an ASCII raster with per-series markers."""
    if not series:
        raise ReportingError("nothing to plot")
    if width < 8 or height < 4:
        raise ReportingError("chart too small to be readable")

    points = [(name, x, y) for name, pts in series.items() for x, y in pts]
    if not points:
        raise ReportingError("all series are empty")

    xs = [_transform(x, log_x) for _, x, _ in points]
    ys = [_transform(y, log_y) for _, _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(sorted(series.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            cx = int((_transform(x, log_x) - x_low) / x_span * (width - 1))
            cy = int((_transform(y, log_y) - y_low) / y_span * (height - 1))
            grid[height - 1 - cy][cx] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "  ".join(f"{_MARKERS[i % len(_MARKERS)]}={name}"
                       for i, name in enumerate(sorted(series)))
    lines.append(f"[{y_label}{' (log)' if log_y else ''}]  {legend}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" [{x_label}{' (log)' if log_x else ''}]  "
                 f"range {min(x for _, x, _ in points):g}"
                 f"..{max(x for _, x, _ in points):g}")
    return "\n".join(lines)


def render_series_table(series: Series, x_header: str = "x",
                        precision: int = 3,
                        title: Optional[str] = None) -> str:
    """Tabulate series against their union of x values."""
    if not series:
        raise ReportingError("nothing to tabulate")
    names = sorted(series)
    xs = sorted({x for pts in series.values() for x, _ in pts})
    lookup = {name: dict(pts) for name, pts in series.items()}
    rows = []
    for x in xs:
        row: List[object] = [x]
        for name in names:
            value = lookup[name].get(x)
            row.append("-" if value is None else value)
        rows.append(row)
    return render_table([x_header] + names, rows, title=title,
                        precision=precision)

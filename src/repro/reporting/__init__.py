"""Reporting helpers: ASCII tables, charts, CSV, backend comparisons."""

from repro.reporting.bench import (
    render_bench_cells,
    render_bench_comparison,
)
from repro.reporting.comparison import (
    BackendRunSummary,
    render_backend_comparison,
    summarize_backend_run,
)
from repro.reporting.csvout import rows_to_csv, write_csv
from repro.reporting.scaling import (
    ScalingPoint,
    render_parallel_workers,
    render_scaling_sweep,
    summarize_parallel_run,
)
from repro.reporting.scenario import (
    render_scenario_classes,
    render_scenario_clients,
    render_scenario_report,
)
from repro.reporting.figures import (
    Series,
    render_line_chart,
    render_series_table,
)
from repro.reporting.loadtest import (
    describe_knee,
    render_load_chart,
    render_load_report,
    render_load_sweep,
)
from repro.reporting.tables import format_cell, render_kv, render_table

__all__ = [
    "format_cell",
    "render_table",
    "render_kv",
    "Series",
    "render_line_chart",
    "render_series_table",
    "rows_to_csv",
    "write_csv",
    "BackendRunSummary",
    "summarize_backend_run",
    "render_backend_comparison",
    "ScalingPoint",
    "summarize_parallel_run",
    "render_scaling_sweep",
    "render_parallel_workers",
    "render_scenario_classes",
    "render_scenario_clients",
    "render_scenario_report",
    "render_bench_cells",
    "render_bench_comparison",
    "describe_knee",
    "render_load_chart",
    "render_load_report",
    "render_load_sweep",
]

"""Reporting helpers: ASCII tables, charts, CSV."""

from repro.reporting.csvout import rows_to_csv, write_csv
from repro.reporting.figures import (
    Series,
    render_line_chart,
    render_series_table,
)
from repro.reporting.tables import format_cell, render_kv, render_table

__all__ = [
    "format_cell",
    "render_table",
    "render_kv",
    "Series",
    "render_line_chart",
    "render_series_table",
    "rows_to_csv",
    "write_csv",
]

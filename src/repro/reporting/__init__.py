"""Reporting helpers: ASCII tables, charts, CSV, backend comparisons."""

from repro.reporting.comparison import (
    BackendRunSummary,
    render_backend_comparison,
    summarize_backend_run,
)
from repro.reporting.csvout import rows_to_csv, write_csv
from repro.reporting.figures import (
    Series,
    render_line_chart,
    render_series_table,
)
from repro.reporting.tables import format_cell, render_kv, render_table

__all__ = [
    "format_cell",
    "render_table",
    "render_kv",
    "Series",
    "render_line_chart",
    "render_series_table",
    "rows_to_csv",
    "write_csv",
    "BackendRunSummary",
    "summarize_backend_run",
    "render_backend_comparison",
]

"""ASCII table rendering for benchmark reports.

The harness prints each paper table next to the measured one; these
helpers keep that output aligned, deterministic and dependency-free.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.errors import ReportingError

__all__ = ["format_cell", "render_table", "render_kv"]


def format_cell(value: Any, precision: int = 2) -> str:
    """Format one cell: floats get fixed precision, the rest ``str()``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None, precision: int = 2) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+-----
    1 | 2.50
    """
    if not headers:
        raise ReportingError("a table needs at least one column")
    width = len(headers)
    text_rows: List[List[str]] = []
    for row in rows:
        if len(row) != width:
            raise ReportingError(
                f"row {row!r} has {len(row)} cells; expected {width}")
        text_rows.append([format_cell(cell, precision) for cell in row])

    widths = [len(str(h)) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i])
                          for i, cell in enumerate(cells)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line([str(h) for h in headers]))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def render_kv(pairs: Sequence[Sequence[Any]], title: Optional[str] = None,
              precision: int = 3) -> str:
    """Render key/value pairs as an aligned two-column block."""
    if not pairs:
        raise ReportingError("render_kv needs at least one pair")
    key_width = max(len(str(k)) for k, _ in pairs)
    out: List[str] = []
    if title:
        out.append(title)
    for key, value in pairs:
        out.append(f"  {str(key).ljust(key_width)} : "
                   f"{format_cell(value, precision)}")
    return "\n".join(out)

"""Scenario-report rendering: per-class breakdowns and per-client tables.

The declarative scenario layer (:mod:`repro.core.scenario`) reports per
*operation class* — the four OCB transaction types and the six generic
operations in one table — plus the per-client contention counters that
only exist once mixes can mutate (busy retries, write conflicts, read
misses).  Rendered with the same ASCII helpers as every other report.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.scenario import ScenarioReport
from repro.reporting.tables import render_table

__all__ = ["render_scenario_classes", "render_scenario_clients",
           "render_scenario_report"]


def render_scenario_classes(report: ScenarioReport,
                            title: Optional[str] = None) -> str:
    """The merged warm phase, one row per operation class."""
    if title is None:
        title = (f"Warm phase per operation class — scenario "
                 f"{report.scenario_name!r} on {report.backend_name!r}")
    return render_table(
        ["class", "n", "objects/op", "t_sim/op (s)", "P50 (ms)",
         "P95 (ms)", "P99 (ms)", "busy retries"],
        report.merged_warm.rows(), title=title, precision=3)


def render_scenario_clients(report: ScenarioReport,
                            title: Optional[str] = None) -> str:
    """Per-client breakdown with the merged row."""
    if title is None:
        title = (f"{report.client_count} clients ({report.mode}) on "
                 f"{report.backend_name!r}")
    rows: List[List[object]] = []
    for client in report.clients:
        warm = client.warm.totals
        wall = client.warm.wall_percentiles()
        rows.append([client.client_id,
                     client.pid if client.pid is not None else "-",
                     warm.count, warm.objects_per_op, wall.p95 * 1e3,
                     client.busy_retries, client.busy_wait_seconds,
                     client.late_starts, client.max_backlog,
                     client.remote_reads,
                     client.write_conflicts, client.read_misses])
    merged = report.merged_warm.totals
    merged_wall = report.merged_warm.wall_percentiles()
    rows.append(["all", "-", merged.count, merged.objects_per_op,
                 merged_wall.p95 * 1e3, report.busy_retries,
                 report.busy_wait_seconds, report.late_starts,
                 report.max_backlog,
                 report.remote_reads, report.write_conflicts,
                 report.read_misses])
    return render_table(
        ["client", "pid", "warm ops", "objects/op", "P95 (ms)",
         "busy retries", "busy wait (s)", "late starts", "backlog",
         "remote reads", "write conflicts", "read misses"],
        rows, title=title, precision=3)


def render_scenario_report(report: ScenarioReport) -> str:
    """Full console rendering: class table, client table, headline."""
    return "\n".join([
        render_scenario_classes(report),
        "",
        render_scenario_clients(report),
        "",
        report.describe(),
    ])

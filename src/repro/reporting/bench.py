"""Rendering for ``ocb bench``: matrix cell tables, baseline diffs.

Both renderers work on **plain mappings** (the cells of a
``BENCH_*.json`` document and the row dicts of a comparison), not on
:mod:`repro.obs.matrix` objects — reporting stays importable from the
observability layer without a cycle, and a committed baseline file can
be rendered without re-running anything.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.reporting.tables import render_table

__all__ = ["render_bench_cells", "render_bench_comparison"]


def render_bench_cells(cells: Sequence[Mapping[str, object]],
                       title: Optional[str] = None) -> str:
    """One row per matrix cell: identity, latency tail, throughput, cost."""
    rows: List[List[object]] = []
    for cell in cells:
        rows.append([
            cell.get("backend"),
            cell.get("scenario"),
            cell.get("clients"),
            cell.get("mode"),
            cell.get("operations"),
            cell.get("throughput"),
            cell.get("wall_p50_ms"),
            cell.get("wall_p95_ms"),
            cell.get("wall_p99_ms"),
            cell.get("busy_retries"),
            cell.get("cpu_seconds"),
            cell.get("peak_rss_kb"),
        ])
    return render_table(
        ["backend", "scenario", "clients", "mode", "ops", "op/s",
         "P50 (ms)", "P95 (ms)", "P99 (ms)", "busy", "CPU (s)",
         "peak RSS (kB)"],
        rows, title=title or "Experiment matrix", precision=3)


def render_bench_comparison(rows: Sequence[Mapping[str, object]],
                            title: Optional[str] = None) -> str:
    """One row per compared cell: status, throughput drift, problems.

    ``rows`` is the :class:`repro.obs.matrix.ComparisonRow` sequence
    folded into mappings (``row.__dict__``-shaped: key, status,
    throughput_ratio, problems).
    """
    table: List[List[object]] = []
    for row in rows:
        ratio = row.get("throughput_ratio")
        table.append([
            row.get("key"),
            row.get("status"),
            f"{ratio:.2f}x" if isinstance(ratio, float) else "-",
            "; ".join(str(p) for p in row.get("problems") or ()) or "-",
        ])
    return render_table(
        ["cell", "status", "throughput vs base", "problems"],
        table, title=title or "Baseline comparison", precision=3)

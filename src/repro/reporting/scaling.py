"""Scaling-sweep rendering for process-parallel runs.

One :class:`ScalingPoint` per worker count — throughput, speedup over
the single-worker baseline, warm-phase latency tails and the contention
counters — rendered with the same ASCII-table helpers as every other
report, so a worker-count sweep reads like the cross-backend comparison
it sits next to.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

from repro.parallel.report import ParallelReport
from repro.reporting.tables import render_table

__all__ = ["ScalingPoint", "summarize_parallel_run",
           "render_scaling_sweep", "render_parallel_workers"]


@dataclass(frozen=True)
class ScalingPoint:
    """One worker count's row in a scaling sweep."""

    workers: int
    backend: str
    mode: str
    executed_parallel: bool
    transactions: int
    elapsed_seconds: float
    throughput: float
    warm_p50_ms: float
    warm_p95_ms: float
    warm_p99_ms: float
    busy_retries: int
    busy_wait_seconds: float

    def to_dict(self) -> dict:
        """A JSON-ready mapping (the bench harness's emission shape)."""
        return asdict(self)


def summarize_parallel_run(report: ParallelReport) -> ScalingPoint:
    """Fold one :class:`ParallelReport` into a sweep row."""
    warm = report.warm_wall_percentiles
    return ScalingPoint(
        workers=report.worker_count,
        backend=report.backend_name,
        mode=report.mode,
        executed_parallel=report.executed_parallel,
        transactions=report.total_transactions,
        elapsed_seconds=report.elapsed_seconds,
        throughput=report.throughput,
        warm_p50_ms=warm.p50 * 1e3,
        warm_p95_ms=warm.p95 * 1e3,
        warm_p99_ms=warm.p99 * 1e3,
        busy_retries=report.busy_retries,
        busy_wait_seconds=report.busy_wait_seconds)


def render_scaling_sweep(points: Sequence[ScalingPoint],
                         title: Optional[str] = None) -> str:
    """The worker-count sweep table; speedup is against the first row.

    The natural sweep starts at one worker, making ``speedup`` the
    parallel-scaling curve a benchmark report quotes.
    """
    if title is None:
        backend = points[0].backend if points else "?"
        title = f"Throughput scaling on {backend!r} (workers sweep)"
    baseline = points[0].throughput if points else 0.0
    rows: List[List[object]] = []
    for point in points:
        speedup = point.throughput / baseline if baseline > 0.0 else 0.0
        rows.append([
            point.workers,
            point.mode if point.executed_parallel
            else f"{point.mode} (sequential!)",
            point.transactions,
            point.elapsed_seconds,
            point.throughput,
            speedup,
            point.warm_p95_ms,
            point.warm_p99_ms,
            point.busy_retries,
        ])
    return render_table(
        ["workers", "mode", "txns", "elapsed (s)", "txn/s", "speedup",
         "P95 (ms)", "P99 (ms)", "busy retries"],
        rows, title=title, precision=3)


def render_parallel_workers(report: ParallelReport,
                            title: Optional[str] = None) -> str:
    """Per-worker breakdown of one parallel run, with the merged row."""
    if title is None:
        title = (f"{report.worker_count} worker processes on "
                 f"{report.backend_name!r} ({report.mode} storage)")
    rows: List[List[object]] = []
    for worker in report.workers:
        warm = worker.report.warm.totals
        wall = worker.report.warm.wall_percentiles()
        rows.append([worker.client_id, worker.pid, warm.count,
                     warm.visits_per_transaction, wall.p50 * 1e3,
                     wall.p95 * 1e3, wall.p99 * 1e3,
                     worker.busy_retries, worker.wall_seconds])
    merged = report.merged_warm.totals
    merged_wall = report.warm_wall_percentiles
    # The merged wall cell sums the workers' protocol walls (same
    # semantics as the column above it); the harness elapsed — spawn,
    # pickling and setup included — is reported by describe().
    rows.append(["all", "-", merged.count, merged.visits_per_transaction,
                 merged_wall.p50 * 1e3, merged_wall.p95 * 1e3,
                 merged_wall.p99 * 1e3, report.busy_retries,
                 sum(worker.wall_seconds for worker in report.workers)])
    return render_table(
        ["worker", "pid", "warm txns", "objects/txn", "P50 (ms)",
         "P95 (ms)", "P99 (ms)", "busy retries", "wall (s)"],
        rows, title=title, precision=3)

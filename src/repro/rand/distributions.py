"""The DIST1..DIST5 pluggable random distributions of OCB.

OCB parameterizes every random draw of the database generation and of the
workload with a named distribution (Tables 1 and 2 of the paper):

* ``DIST1`` — reference *types*,
* ``DIST2`` — inter-class references,
* ``DIST3`` — assignment of objects to classes,
* ``DIST4`` — inter-object references,
* ``DIST5`` (a.k.a. ``RAND5``) — transaction root objects.

The paper's default for all five is **Uniform**; Table 3 (the DSTC-CluB
approximation) switches DIST1-3 to **Constant** and DIST4 to a **Special**
OO1-style locality distribution (90 % of references fall inside a RefZone
around the referencing object).  We additionally provide **Normal** and
**Zipf** distributions — both standard choices in the clustering literature
the paper builds on (Tsangaris & Naughton) — so that skewed access patterns
can be modelled.

All distributions draw an integer from an inclusive ``[low, high]`` range;
the optional ``center`` argument carries the position of the *current*
object, which the Special distribution (and a centred Normal) use to model
locality of reference.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_left
from typing import ClassVar, Dict, List, Optional, Tuple

from repro.errors import ParameterError
from repro.rand.lewis_payne import LewisPayne

__all__ = [
    "Distribution",
    "UniformDistribution",
    "ConstantDistribution",
    "NormalDistribution",
    "ZipfDistribution",
    "SpecialDistribution",
    "distribution_from_name",
    "DISTRIBUTION_NAMES",
]


def _check_range(low: int, high: int) -> None:
    if low > high:
        raise ParameterError(f"empty range: low={low} > high={high}")


class Distribution(ABC):
    """A named integer distribution over an inclusive ``[low, high]`` range."""

    #: Human-readable name, as used in the paper's parameter tables.
    name: ClassVar[str] = "abstract"

    @abstractmethod
    def draw(self, rng: LewisPayne, low: int, high: int,
             center: Optional[int] = None) -> int:
        """Draw one integer in ``[low, high]``.

        ``center`` is the id of the *current* entity (e.g. the referencing
        object) for distributions that model locality; distributions that do
        not use it must accept and ignore it.
        """

    def describe(self) -> str:
        """One-line description used in parameter tables and reports."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == getattr(
            other, "__dict__", None) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> Tuple:
        """Equality/hash key; subclasses with parameters override this."""
        return ()


class UniformDistribution(Distribution):
    """Every value of ``[low, high]`` is equally likely (the OCB default)."""

    name = "Uniform"

    def draw(self, rng: LewisPayne, low: int, high: int,
             center: Optional[int] = None) -> int:
        _check_range(low, high)
        return rng.randint(low, high)


class ConstantDistribution(Distribution):
    """Always return the same value (Table 3 uses this for DIST1-3).

    If *value* is ``None`` the distribution degenerates to the lower bound
    of the requested range, which is how "Constant" behaves when a range is
    imposed from outside (e.g. reference types all equal to type 1).
    """

    name = "Constant"

    def __init__(self, value: Optional[int] = None) -> None:
        self.value = value

    def draw(self, rng: LewisPayne, low: int, high: int,
             center: Optional[int] = None) -> int:
        _check_range(low, high)
        if self.value is None:
            return low
        return min(max(self.value, low), high)

    def describe(self) -> str:
        return self.name if self.value is None else f"Constant({self.value})"

    def __repr__(self) -> str:
        return f"ConstantDistribution(value={self.value!r})"

    def _key(self) -> Tuple:
        return (self.value,)


class NormalDistribution(Distribution):
    """Gaussian draw, rounded and clamped to the range.

    The mean defaults to the range midpoint, or to ``center`` when one is
    supplied (giving a soft locality model).  ``std_fraction`` expresses the
    standard deviation as a fraction of the range width.
    """

    name = "Normal"

    def __init__(self, std_fraction: float = 0.15,
                 use_center: bool = True) -> None:
        if std_fraction <= 0.0:
            raise ParameterError(f"std_fraction must be > 0, got {std_fraction}")
        self.std_fraction = std_fraction
        self.use_center = use_center

    def draw(self, rng: LewisPayne, low: int, high: int,
             center: Optional[int] = None) -> int:
        _check_range(low, high)
        if low == high:
            return low
        if self.use_center and center is not None:
            mean = float(min(max(center, low), high))
        else:
            mean = (low + high) / 2.0
        sigma = max(self.std_fraction * (high - low + 1), 1e-9)
        value = int(round(rng.gauss(mean, sigma)))
        return min(max(value, low), high)

    def describe(self) -> str:
        return f"Normal(std={self.std_fraction:g})"

    def __repr__(self) -> str:
        return (f"NormalDistribution(std_fraction={self.std_fraction!r}, "
                f"use_center={self.use_center!r})")

    def _key(self) -> Tuple:
        return (self.std_fraction, self.use_center)


class ZipfDistribution(Distribution):
    """Zipf-skewed draw: value ``low + r - 1`` has weight ``1 / r^skew``.

    Low ids become hot spots, which is the classic way to model skewed
    object popularity.  Cumulative weights are cached per range width, so
    repeated draws over the same range (the common case in generation) cost
    one binary search each.
    """

    name = "Zipf"

    _MAX_CACHED_RANGES = 8

    def __init__(self, skew: float = 1.0) -> None:
        if skew <= 0.0:
            raise ParameterError(f"skew must be > 0, got {skew}")
        self.skew = skew
        self._cdf_cache: Dict[int, List[float]] = {}

    def _cdf(self, span: int) -> List[float]:
        cdf = self._cdf_cache.get(span)
        if cdf is None:
            if len(self._cdf_cache) >= self._MAX_CACHED_RANGES:
                self._cdf_cache.clear()
            total = 0.0
            cdf = []
            for rank in range(1, span + 1):
                total += rank ** (-self.skew)
                cdf.append(total)
            self._cdf_cache[span] = cdf
        return cdf

    def draw(self, rng: LewisPayne, low: int, high: int,
             center: Optional[int] = None) -> int:
        _check_range(low, high)
        span = high - low + 1
        if span == 1:
            return low
        cdf = self._cdf(span)
        u = rng.random53() * cdf[-1]
        return low + bisect_left(cdf, u)

    def describe(self) -> str:
        return f"Zipf(skew={self.skew:g})"

    def __repr__(self) -> str:
        return f"ZipfDistribution(skew={self.skew!r})"

    def _key(self) -> Tuple:
        return (self.skew,)


class SpecialDistribution(Distribution):
    """OO1-style RefZone locality (the paper's "Special" DIST4 in Table 3).

    With probability ``locality_probability`` (0.9 in OO1) the draw is
    uniform on ``[center - ref_zone, center + ref_zone]`` intersected with
    the global range; otherwise it is uniform on the whole range.  Without
    a ``center`` the distribution falls back to a plain uniform draw.
    """

    name = "Special"

    def __init__(self, ref_zone: int = 100,
                 locality_probability: float = 0.9) -> None:
        if ref_zone < 0:
            raise ParameterError(f"ref_zone must be >= 0, got {ref_zone}")
        if not 0.0 <= locality_probability <= 1.0:
            raise ParameterError(
                f"locality_probability must be in [0, 1], got {locality_probability}")
        self.ref_zone = ref_zone
        self.locality_probability = locality_probability

    def draw(self, rng: LewisPayne, low: int, high: int,
             center: Optional[int] = None) -> int:
        _check_range(low, high)
        if center is None or rng.random() >= self.locality_probability:
            return rng.randint(low, high)
        zone_low = max(low, center - self.ref_zone)
        zone_high = min(high, center + self.ref_zone)
        if zone_low > zone_high:
            return rng.randint(low, high)
        return rng.randint(zone_low, zone_high)

    def describe(self) -> str:
        return (f"Special(zone={self.ref_zone}, "
                f"p={self.locality_probability:g})")

    def __repr__(self) -> str:
        return (f"SpecialDistribution(ref_zone={self.ref_zone!r}, "
                f"locality_probability={self.locality_probability!r})")

    def _key(self) -> Tuple:
        return (self.ref_zone, self.locality_probability)


#: Registry used by :func:`distribution_from_name` and the CLI.
_REGISTRY = {
    "uniform": UniformDistribution,
    "constant": ConstantDistribution,
    "normal": NormalDistribution,
    "zipf": ZipfDistribution,
    "special": SpecialDistribution,
}

DISTRIBUTION_NAMES: Tuple[str, ...] = tuple(sorted(_REGISTRY))


def distribution_from_name(name: str, **kwargs) -> Distribution:
    """Instantiate a distribution by its (case-insensitive) name.

    >>> distribution_from_name("uniform")
    UniformDistribution()
    >>> distribution_from_name("special", ref_zone=50).ref_zone
    50
    """
    try:
        factory = _REGISTRY[name.strip().lower()]
    except KeyError:
        raise ParameterError(
            f"unknown distribution {name!r}; choose from {DISTRIBUTION_NAMES}"
        ) from None
    return factory(**kwargs)

"""Random-number substrate: Lewis–Payne GFSR + OCB's DIST1..DIST5."""

from repro.rand.lewis_payne import DEFAULT_SEED, LewisPayne
from repro.rand.distributions import (
    DISTRIBUTION_NAMES,
    ConstantDistribution,
    Distribution,
    NormalDistribution,
    SpecialDistribution,
    UniformDistribution,
    ZipfDistribution,
    distribution_from_name,
)

__all__ = [
    "DEFAULT_SEED",
    "LewisPayne",
    "Distribution",
    "UniformDistribution",
    "ConstantDistribution",
    "NormalDistribution",
    "ZipfDistribution",
    "SpecialDistribution",
    "distribution_from_name",
    "DISTRIBUTION_NAMES",
]

"""Cost model and simulated clock for the persistent store.

The paper measures Texas on a Sun SPARC/ELC (SunOS 4.3.1, 8 MB RAM, 4 KB
disk pages).  We cannot re-run that hardware, so the store charges every
operation against a :class:`CostModel` and accumulates *simulated time* on a
:class:`SimClock`.  What matters for reproducing the paper's tables is the
*ratio* structure — an I/O costs three to four orders of magnitude more than
touching a resident object — and that is what the defaults encode:

* one page read   ≈ 10 ms   (early-90s disk, seek + rotation + transfer),
* one page write  ≈ 12 ms,
* one in-memory object access ≈ 20 µs,
* one pointer swizzle ≈ 2 µs (Texas swizzles on page load).

All components of the store share one clock so that buffer misses, write
backs, swizzling and CPU work compose into a single response time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError

__all__ = ["CostModel", "SimClock", "DEFAULT_PAGE_SIZE"]

#: Texas' page size on the paper's platform (Section 4.2).
DEFAULT_PAGE_SIZE = 4096


@dataclass(frozen=True)
class CostModel:
    """Per-operation simulated costs, in seconds.

    The defaults mirror the paper's hardware era; every experiment can
    override them (e.g. to model a modern SSD) without touching any other
    component.
    """

    io_read_time: float = 0.010
    io_write_time: float = 0.012
    cpu_object_time: float = 20e-6
    swizzle_time: float = 2e-6
    think_scale: float = 1.0

    def __post_init__(self) -> None:
        for name in ("io_read_time", "io_write_time", "cpu_object_time",
                     "swizzle_time", "think_scale"):
            value = getattr(self, name)
            if value < 0:
                raise ParameterError(f"{name} must be >= 0, got {value}")


@dataclass
class SimClock:
    """A monotonically advancing simulated clock shared by the store stack."""

    now: float = 0.0
    _marks: dict = field(default_factory=dict, repr=False)

    def advance(self, delta: float) -> float:
        """Advance the clock by *delta* seconds and return the new time."""
        if delta < 0:
            raise ParameterError(f"cannot advance clock by {delta} (< 0)")
        self.now += delta
        return self.now

    def mark(self, label: str) -> None:
        """Remember the current time under *label* (see :meth:`since`)."""
        self._marks[label] = self.now

    def since(self, label: str) -> float:
        """Seconds elapsed since :meth:`mark` was called with *label*."""
        try:
            return self.now - self._marks[label]
        except KeyError:
            raise ParameterError(f"no clock mark named {label!r}") from None

    def reset(self) -> None:
        """Zero the clock and forget all marks."""
        self.now = 0.0
        self._marks.clear()

"""Buffer pool (page cache) with pluggable replacement policies.

Texas maps disk pages into virtual memory; the effective cache is the OS
page cache over an 8 MB machine.  We model that as a fixed-capacity buffer
pool in front of the :class:`~repro.store.disk.SimulatedDisk`.  Clustering
quality shows up exactly here: a well-clustered database turns most page
accesses into buffer hits.

Supported replacement policies:

* ``LRU``   — least recently used (default; closest to an OS page cache),
* ``FIFO``  — eviction in load order,
* ``CLOCK`` — second-chance approximation of LRU,
* ``MRU``   — most recently used (useful to show pathological behaviour on
  sequential scans, a classic textbook contrast).

The pool exposes an *eviction callback* so the object store can invalidate
its decoded-object (swizzled) cache when a page leaves memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Iterable, Optional, Set

from repro.errors import ParameterError, StorageError
from repro.store.disk import SimulatedDisk

__all__ = ["ReplacementPolicy", "BufferStats", "Frame", "BufferPool"]


class ReplacementPolicy(str, Enum):
    """Replacement policy names accepted by :class:`BufferPool`."""

    LRU = "lru"
    FIFO = "fifo"
    CLOCK = "clock"
    MRU = "mru"


@dataclass
class BufferStats:
    """Hit/miss/eviction counters for a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total page accesses served."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses served from memory (0.0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> "BufferStats":
        """Immutable copy of the counters."""
        return BufferStats(self.hits, self.misses, self.evictions,
                           self.dirty_writebacks)

    def __sub__(self, other: "BufferStats") -> "BufferStats":
        return BufferStats(self.hits - other.hits,
                           self.misses - other.misses,
                           self.evictions - other.evictions,
                           self.dirty_writebacks - other.dirty_writebacks)


@dataclass
class Frame:
    """One resident page."""

    page_id: int
    data: bytes
    dirty: bool = False
    referenced: bool = True  # CLOCK's second-chance bit.


EvictionCallback = Callable[[int], None]


class BufferPool:
    """Fixed-capacity page cache in front of a simulated disk."""

    def __init__(self, disk: SimulatedDisk, capacity: int,
                 policy: "ReplacementPolicy | str" = ReplacementPolicy.LRU,
                 on_evict: Optional[EvictionCallback] = None) -> None:
        if capacity < 1:
            raise ParameterError(f"buffer capacity must be >= 1, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self.policy = ReplacementPolicy(policy)
        self.stats = BufferStats()
        self._frames: "OrderedDict[int, Frame]" = OrderedDict()
        self._on_evict = on_evict
        self._clock_hand = 0

    # ------------------------------------------------------------------ #
    # Main entry points
    # ------------------------------------------------------------------ #

    def access(self, page_id: int, dirty: bool = False) -> bool:
        """Touch *page_id*; return ``True`` on a hit, ``False`` on a fault.

        A fault reads the page from disk (one accounted I/O) and may evict
        a victim frame (one more accounted I/O if the victim was dirty).
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            self.stats.hits += 1
            frame.referenced = True
            if dirty:
                frame.dirty = True
            if self.policy in (ReplacementPolicy.LRU, ReplacementPolicy.MRU):
                self._frames.move_to_end(page_id)
            return True

        self.stats.misses += 1
        if len(self._frames) >= self.capacity:
            self._evict_one()
        data = self.disk.read_page(page_id)
        self._frames[page_id] = Frame(page_id, data, dirty=dirty)
        return False

    def get_data(self, page_id: int) -> bytes:
        """Return the bytes of a page, faulting it in if necessary."""
        self.access(page_id)
        return self._frames[page_id].data

    def update_data(self, page_id: int, data: bytes) -> None:
        """Replace the in-memory bytes of a page and mark it dirty.

        The page is faulted in first if it is not resident, so the usual
        read-modify-write accounting applies.
        """
        if len(data) != self.disk.page_size:
            raise StorageError(
                f"page data must be {self.disk.page_size} bytes, got {len(data)}")
        self.access(page_id, dirty=True)
        frame = self._frames[page_id]
        frame.data = bytes(data)
        frame.dirty = True

    def peek_data(self, page_id: int) -> Optional[bytes]:
        """Bytes of a *resident* page without accounting, else ``None``."""
        frame = self._frames.get(page_id)
        return frame.data if frame is not None else None

    def patch(self, page_id: int, start: int, replacement: bytes) -> None:
        """Read-modify-write a byte range of a page (one accounted access)."""
        if start < 0 or start + len(replacement) > self.disk.page_size:
            raise StorageError(
                f"patch [{start}, {start + len(replacement)}) outside page "
                f"of size {self.disk.page_size}")
        self.access(page_id, dirty=True)
        frame = self._frames[page_id]
        data = bytearray(frame.data)
        data[start:start + len(replacement)] = replacement
        frame.data = bytes(data)
        frame.dirty = True

    def install_page(self, page_id: int, data: Optional[bytes] = None,
                     dirty: bool = True) -> None:
        """Materialise a *fresh* page frame without reading the disk.

        Used when appending to the store: a brand-new page has no prior
        content, so a real system allocates it without an I/O.  Eviction of
        another frame may still occur (with its usual accounting).
        """
        if page_id in self._frames:
            raise StorageError(f"page {page_id} is already resident")
        if data is None:
            data = b"\x00" * self.disk.page_size
        elif len(data) != self.disk.page_size:
            raise StorageError(
                f"page data must be {self.disk.page_size} bytes, got {len(data)}")
        if len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page_id] = Frame(page_id, bytes(data), dirty=dirty)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def flush(self) -> int:
        """Write every dirty frame back to disk; return the number written."""
        written = 0
        for frame in self._frames.values():
            if frame.dirty:
                self.disk.write_page(frame.page_id, frame.data)
                frame.dirty = False
                written += 1
        return written

    def clear(self, write_dirty: bool = True) -> None:
        """Empty the pool (optionally flushing dirty frames first)."""
        if write_dirty:
            self.flush()
        evicted = list(self._frames)
        self._frames.clear()
        self._clock_hand = 0
        if self._on_evict is not None:
            for page_id in evicted:
                self._on_evict(page_id)

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without touching resident pages."""
        self.stats = BufferStats()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def resident_pages(self) -> Set[int]:
        """Ids of the pages currently in memory."""
        return set(self._frames)

    def is_resident(self, page_id: int) -> bool:
        """Whether *page_id* is currently cached (no accounting)."""
        return page_id in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    # ------------------------------------------------------------------ #
    # Eviction
    # ------------------------------------------------------------------ #

    def _evict_one(self) -> None:
        victim_id = self._pick_victim()
        frame = self._frames.pop(victim_id)
        self.stats.evictions += 1
        if frame.dirty:
            self.stats.dirty_writebacks += 1
            self.disk.write_page(frame.page_id, frame.data)
        if self._on_evict is not None:
            self._on_evict(victim_id)

    def _pick_victim(self) -> int:
        if self.policy in (ReplacementPolicy.LRU, ReplacementPolicy.FIFO):
            return next(iter(self._frames))
        if self.policy is ReplacementPolicy.MRU:
            return next(reversed(self._frames))
        # CLOCK: sweep frames in insertion order, clearing reference bits,
        # until an unreferenced frame is found.
        keys = list(self._frames)
        n = len(keys)
        for _ in range(2 * n):
            key = keys[self._clock_hand % n]
            frame = self._frames[key]
            self._clock_hand = (self._clock_hand + 1) % n
            if frame.referenced:
                frame.referenced = False
            else:
                return key
        return keys[0]  # Every frame referenced twice in a row; fall back.

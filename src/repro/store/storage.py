"""The object store: the reproduction's stand-in for Texas.

An :class:`ObjectStore` persists :class:`~repro.store.serializer.StoredObject`
records in a contiguous byte *segment* that is split into fixed-size disk
pages.  Objects are packed back to back (an object may straddle a page
boundary, exactly as in a memory-mapped store), a **directory** maps object
ids to ``(offset, length)``, and every object access goes through the
buffer pool, so page faults, write backs and pointer swizzling are all
accounted on the shared clock.

The store supports the full lifecycle the benchmarks need:

* :meth:`bulk_load` — initial placement of a generated database,
* :meth:`read_object` / :meth:`write_object` — workload access paths,
* :meth:`insert_object` / :meth:`delete_object` — OO1-insert-style updates,
* :meth:`reorganize` — physical re-clustering, with its I/O overhead
  measured separately (the paper's "clustering I/O overhead" metric).

Decoded records are cached (the analogue of Texas' swizzled in-memory
objects) for as long as their pages are resident; eviction invalidates
them through the buffer pool's eviction callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ParameterError, StorageError, UnknownObject
from repro.store.buffer import BufferPool, BufferStats, ReplacementPolicy
from repro.store.costs import DEFAULT_PAGE_SIZE, CostModel, SimClock
from repro.store.disk import DiskStats, SimulatedDisk
from repro.store.serializer import StoredObject, decode_object, \
    decode_object_lazy, encode_object
from repro.store.swizzle import SwizzleStats, SwizzleTable

__all__ = ["StoreConfig", "StoreSnapshot", "ReorganizationStats",
           "ObjectStore", "stage_bulk_load"]


def stage_bulk_load(records: Iterable[StoredObject],
                    order: Optional[Sequence[int]] = None
                    ) -> List[StoredObject]:
    """Validate and order records for a bulk load (shared by all engines).

    Rejects duplicate oids; when *order* is given it must be a
    permutation of the record oids and the returned sequence follows it.
    """
    by_oid: Dict[int, StoredObject] = {}
    sequence: List[StoredObject] = []
    for record in records:
        if record.oid in by_oid:
            raise StorageError(f"duplicate oid {record.oid} in bulk load")
        by_oid[record.oid] = record
        sequence.append(record)
    if order is not None:
        if set(order) != set(by_oid) or len(order) != len(by_oid):
            raise StorageError(
                "bulk_load order must be a permutation of the record oids")
        sequence = [by_oid[oid] for oid in order]
    return sequence


@dataclass(frozen=True)
class StoreConfig:
    """Everything needed to build identical stores across experiments.

    The last two fields are *real-engine* knobs: engines that journal to
    a shared file (SQLite today) honour them, the simulated store — which
    has no journal and no concurrent writers — ignores them.  ``None``
    leaves the engine's own default in place.
    """

    page_size: int = DEFAULT_PAGE_SIZE
    buffer_pages: int = 128
    policy: ReplacementPolicy = ReplacementPolicy.LRU
    cost_model: CostModel = field(default_factory=CostModel)
    track_swizzling: bool = True
    #: Journal mode for journaling engines (e.g. ``"WAL"``, ``"MEMORY"``).
    #: Multi-process runs on a shared file require ``"WAL"``.
    journal_mode: Optional[str] = None
    #: Total budget (milliseconds) an engine may spend retrying an
    #: operation that finds the storage locked by another connection.
    busy_timeout_ms: Optional[int] = None

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ParameterError(f"page_size must be > 0, got {self.page_size}")
        if self.buffer_pages < 1:
            raise ParameterError(
                f"buffer_pages must be >= 1, got {self.buffer_pages}")
        if self.busy_timeout_ms is not None and self.busy_timeout_ms < 0:
            raise ParameterError(
                f"busy_timeout_ms must be >= 0, got {self.busy_timeout_ms}")

    def build(self) -> "ObjectStore":
        """Construct a fresh, empty store with this configuration."""
        return ObjectStore(page_size=self.page_size,
                           buffer_pages=self.buffer_pages,
                           policy=self.policy,
                           cost_model=self.cost_model,
                           track_swizzling=self.track_swizzling)


@dataclass(frozen=True)
class StoreSnapshot:
    """Immutable statistics snapshot; subtract two to measure a phase."""

    disk: DiskStats
    buffer: BufferStats
    swizzle: SwizzleStats
    object_accesses: int
    sim_time: float

    def __sub__(self, other: "StoreSnapshot") -> "StoreSnapshot":
        return StoreSnapshot(self.disk - other.disk,
                             self.buffer - other.buffer,
                             self.swizzle - other.swizzle,
                             self.object_accesses - other.object_accesses,
                             self.sim_time - other.sim_time)

    @property
    def io_reads(self) -> int:
        """Accounted page reads."""
        return self.disk.reads

    @property
    def io_writes(self) -> int:
        """Accounted page writes."""
        return self.disk.writes

    @property
    def total_ios(self) -> int:
        """All accounted page I/O."""
        return self.disk.total


@dataclass(frozen=True)
class ReorganizationStats:
    """I/O overhead of one physical reorganization (clustering cost)."""

    pages_read: int
    pages_written: int
    objects_moved: int
    sim_time: float

    @property
    def total_ios(self) -> int:
        """Reads plus writes charged to the reorganization."""
        return self.pages_read + self.pages_written


class ObjectStore:
    """Paged, buffered, swizzling persistent object store."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE,
                 buffer_pages: int = 128,
                 policy: "ReplacementPolicy | str" = ReplacementPolicy.LRU,
                 cost_model: Optional[CostModel] = None,
                 clock: Optional[SimClock] = None,
                 track_swizzling: bool = True) -> None:
        self.cost_model = cost_model or CostModel()
        self.clock = clock or SimClock()
        self.disk = SimulatedDisk(page_size, self.cost_model, self.clock)
        self.buffer = BufferPool(self.disk, buffer_pages, policy,
                                 on_evict=self._on_page_evicted)
        self.swizzle = SwizzleTable(self.cost_model, self.clock) \
            if track_swizzling else None
        self.page_size = page_size
        self.object_accesses = 0
        #: Records fully decoded from their byte form (read path misses).
        self.records_decoded = 0
        #: Reads answered without a full decode (lazy header-only views).
        self.decodes_avoided = 0
        self._directory: Dict[int, Tuple[int, int]] = {}
        self._page_objects: Dict[int, Set[int]] = {}
        self._live: Dict[int, StoredObject] = {}
        self._end_offset = 0
        self._hole_bytes = 0

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #

    def bulk_load(self, records: Iterable[StoredObject],
                  order: Optional[Sequence[int]] = None) -> int:
        """Place *records* on disk (unaccounted), optionally in *order*.

        Returns the number of pages materialised.  The store must be empty.
        """
        if self._directory:
            raise StorageError("bulk_load requires an empty store")
        sequence = stage_bulk_load(records, order)

        segment = bytearray()
        for record in sequence:
            data = encode_object(record)
            self._directory[record.oid] = (len(segment), len(data))
            segment += data
        self._end_offset = len(segment)
        self._rebuild_page_index()
        return self._write_segment(segment)

    def _write_segment(self, segment: bytearray) -> int:
        ps = self.page_size
        pages = (len(segment) + ps - 1) // ps
        for pid in range(pages):
            chunk = bytes(segment[pid * ps:(pid + 1) * ps])
            if len(chunk) < ps:
                chunk += b"\x00" * (ps - len(chunk))
            self.disk.poke(pid, chunk)
        return pages

    def _rebuild_page_index(self) -> None:
        ps = self.page_size
        self._page_objects = {}
        for oid, (offset, length) in self._directory.items():
            for pid in range(offset // ps, (offset + length - 1) // ps + 1):
                self._page_objects.setdefault(pid, set()).add(oid)

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #

    def read_object(self, oid: int, lazy: bool = False) -> StoredObject:
        """Fetch one object, faulting in pages and swizzling as needed.

        With ``lazy=True`` a cache miss hands back a zero-copy
        :class:`~repro.store.serializer.LazyStoredObject` (header parsed,
        refs/back-refs deferred) instead of a fully decoded record; the
        accounting (page faults, swizzling, clock) is identical.
        """
        try:
            offset, length = self._directory[oid]
        except KeyError:
            raise UnknownObject(oid) from None
        self.object_accesses += 1
        self.clock.advance(self.cost_model.cpu_object_time)

        cached = self._live.get(oid)
        if cached is not None and self._pages_resident(offset, length):
            # Fast path still touches the pages so the cache sees the access.
            self._touch_pages(offset, length)
            return cached

        data = self._fetch_bytes(offset, length)
        if lazy:
            self.decodes_avoided += 1
            record = decode_object_lazy(data)
        else:
            self.records_decoded += 1
            record = decode_object(data)
        self._live[oid] = record
        return record

    def _pages_resident(self, offset: int, length: int) -> bool:
        ps = self.page_size
        first, last = offset // ps, (offset + length - 1) // ps
        return all(self.buffer.is_resident(pid) for pid in range(first, last + 1))

    def _touch_pages(self, offset: int, length: int) -> None:
        ps = self.page_size
        first, last = offset // ps, (offset + length - 1) // ps
        for pid in range(first, last + 1):
            self.buffer.access(pid)

    def _fetch_bytes(self, offset: int, length: int) -> bytes:
        """Assemble a byte range page by page through the buffer pool."""
        ps = self.page_size
        first, last = offset // ps, (offset + length - 1) // ps
        chunks: List[bytes] = []
        for pid in range(first, last + 1):
            hit = self.buffer.access(pid)
            if not hit and self.swizzle is not None:
                self.swizzle.swizzle_in(pid, self._page_objects.get(pid, ()))
            page = self.buffer.peek_data(pid)
            if page is None:  # Evicted by a later fault (capacity 1 corner).
                self.buffer.access(pid)
                page = self.buffer.peek_data(pid)
                assert page is not None
            lo = max(offset, pid * ps) - pid * ps
            hi = min(offset + length, (pid + 1) * ps) - pid * ps
            chunks.append(page[lo:hi])
        return b"".join(chunks)

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def write_object(self, record: StoredObject) -> None:
        """Update an existing object in place (relocating if it grew)."""
        try:
            offset, length = self._directory[record.oid]
        except KeyError:
            raise UnknownObject(record.oid) from None
        data = encode_object(record)
        self.object_accesses += 1
        self.clock.advance(self.cost_model.cpu_object_time)
        if len(data) == length:
            self._patch_bytes(offset, data)
            self._live[record.oid] = record
        else:
            # Texas-style stores relocate objects whose size changes.
            self._remove_entry(record.oid)
            self._append(record, data)

    def insert_object(self, record: StoredObject) -> None:
        """Append a brand-new object to the store."""
        if record.oid in self._directory:
            raise StorageError(f"oid {record.oid} already exists")
        self.object_accesses += 1
        self.clock.advance(self.cost_model.cpu_object_time)
        self._append(record, encode_object(record))

    def delete_object(self, oid: int) -> None:
        """Remove an object, leaving a hole until the next reorganization."""
        if oid not in self._directory:
            raise UnknownObject(oid)
        self.object_accesses += 1
        self.clock.advance(self.cost_model.cpu_object_time)
        self._remove_entry(oid)

    def flush(self) -> int:
        """Write back all dirty pages; return the number written."""
        return self.buffer.flush()

    def _append(self, record: StoredObject, data: bytes) -> None:
        ps = self.page_size
        offset = self._end_offset
        self._directory[record.oid] = (offset, len(data))
        first, last = offset // ps, (offset + len(data) - 1) // ps
        for pid in range(first, last + 1):
            self._page_objects.setdefault(pid, set()).add(record.oid)
            if not self.buffer.is_resident(pid) and pid * ps >= offset:
                # Page is brand new: allocate a frame without a disk read.
                self.buffer.install_page(pid)
        self._patch_bytes(offset, data)
        self._end_offset = offset + len(data)
        self._live[record.oid] = record

    def _patch_bytes(self, offset: int, data: bytes) -> None:
        ps = self.page_size
        pos = 0
        while pos < len(data):
            pid = (offset + pos) // ps
            page_start = (offset + pos) % ps
            span = min(ps - page_start, len(data) - pos)
            self.buffer.patch(pid, page_start, data[pos:pos + span])
            pos += span

    def _remove_entry(self, oid: int) -> None:
        offset, length = self._directory.pop(oid)
        self._hole_bytes += length
        self._live.pop(oid, None)
        ps = self.page_size
        for pid in range(offset // ps, (offset + length - 1) // ps + 1):
            bucket = self._page_objects.get(pid)
            if bucket is not None:
                bucket.discard(oid)
                if not bucket:
                    del self._page_objects[pid]

    # ------------------------------------------------------------------ #
    # Reorganization (the clustering phase 5 entry point)
    # ------------------------------------------------------------------ #

    def reorganize(self, new_order: Sequence[int],
                   io_mode: str = "touched",
                   aligned_groups: Optional[Sequence[Sequence[int]]] = None
                   ) -> ReorganizationStats:
        """Rewrite the store so objects appear in *new_order*.

        ``aligned_groups`` lists clustering units that must start on a page
        boundary (unless the whole unit fits in the current page's free
        tail).  Grouped objects are placed first, in group order; the
        remaining objects follow in their *new_order* relative order.
        Units map 1:1 onto pages this way, which is how DSTC's physical
        phase lays units out on disk.

        ``io_mode`` selects how the clustering I/O overhead is charged:

        * ``"touched"`` — pages holding objects whose position changed are
          read, pages receiving them are written (DSTC's incremental
          physical phase, triggered "when the system is idle"),
        * ``"full"``    — a complete segment sweep (read everything, write
          everything), an upper bound.
        """
        if io_mode not in ("touched", "full"):
            raise ParameterError(f"io_mode must be 'touched' or 'full', "
                                 f"got {io_mode!r}")
        if set(new_order) != set(self._directory) or \
                len(new_order) != len(self._directory):
            raise StorageError(
                "reorganize order must be a permutation of the stored oids")

        self.buffer.flush()
        start_time = self.clock.now
        ps = self.page_size
        old_directory = dict(self._directory)

        # Decode every record from the (flushed, authoritative) disk image.
        records: Dict[int, StoredObject] = {}
        for oid, (offset, length) in old_directory.items():
            records[oid] = decode_object(self._peek_bytes(offset, length))

        # Build the new segment: aligned groups first, remainder after.
        grouped: Set[int] = set()
        groups: List[Sequence[int]] = []
        if aligned_groups:
            for group in aligned_groups:
                for oid in group:
                    if oid not in self._directory:
                        raise StorageError(
                            f"aligned group references unknown oid {oid}")
                    if oid in grouped:
                        raise StorageError(
                            f"oid {oid} appears in more than one group")
                    grouped.add(oid)
                groups.append(group)

        segment = bytearray()
        new_directory: Dict[int, Tuple[int, int]] = {}

        def place(oid: int) -> None:
            data = encode_object(records[oid])
            new_directory[oid] = (len(segment), len(data))
            segment.extend(data)

        for group in groups:
            group_bytes = sum(records[oid].size for oid in group)
            tail = len(segment) % ps
            if tail and group_bytes > ps - tail:
                segment.extend(b"\x00" * (ps - tail))  # Pad to boundary.
            for oid in group:
                place(oid)
        for oid in new_order:
            if oid not in grouped:
                place(oid)

        moved = [oid for oid in new_order
                 if new_directory[oid][0] != old_directory[oid][0]]
        if io_mode == "full":
            read_pages = {pid for offset, length in old_directory.values()
                          for pid in range(offset // ps,
                                           (offset + length - 1) // ps + 1)}
            written_pages = {pid for offset, length in new_directory.values()
                             for pid in range(offset // ps,
                                              (offset + length - 1) // ps + 1)}
        else:
            read_pages = {pid for oid in moved
                          for pid in self._page_range(old_directory[oid])}
            written_pages = {pid for oid in moved
                             for pid in self._page_range(new_directory[oid])}

        # Charge the overhead on the shared clock / disk counters.
        for _ in read_pages:
            self.disk.stats.reads += 1
            self.clock.advance(self.cost_model.io_read_time)
        for _ in written_pages:
            self.disk.stats.writes += 1
            self.clock.advance(self.cost_model.io_write_time)

        # Swap in the new image and drop every cache (addresses changed).
        self.disk.drop_all()
        self._directory = new_directory
        self._end_offset = len(segment)
        self._hole_bytes = 0
        self._write_segment(segment)
        self.buffer.clear(write_dirty=False)
        self._live.clear()
        if self.swizzle is not None:
            self.swizzle.clear()
        self._rebuild_page_index()

        return ReorganizationStats(pages_read=len(read_pages),
                                   pages_written=len(written_pages),
                                   objects_moved=len(moved),
                                   sim_time=self.clock.now - start_time)

    def _page_range(self, entry: Tuple[int, int]) -> range:
        offset, length = entry
        ps = self.page_size
        return range(offset // ps, (offset + length - 1) // ps + 1)

    def _peek_bytes(self, offset: int, length: int) -> bytes:
        ps = self.page_size
        first, last = offset // ps, (offset + length - 1) // ps
        chunks = []
        for pid in range(first, last + 1):
            page = self.buffer.peek_data(pid)
            if page is None:
                page = self.disk.peek(pid)
            lo = max(offset, pid * ps) - pid * ps
            hi = min(offset + length, (pid + 1) * ps) - pid * ps
            chunks.append(page[lo:hi])
        return b"".join(chunks)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def snapshot(self) -> StoreSnapshot:
        """Immutable copy of all counters; subtract snapshots per phase."""
        swizzle = self.swizzle.stats.snapshot() if self.swizzle is not None \
            else SwizzleStats()
        return StoreSnapshot(disk=self.disk.stats.snapshot(),
                             buffer=self.buffer.stats.snapshot(),
                             swizzle=swizzle,
                             object_accesses=self.object_accesses,
                             sim_time=self.clock.now)

    def reset_stats(self) -> None:
        """Zero every counter (resident pages stay in memory)."""
        self.disk.reset_stats()
        self.buffer.reset_stats()
        if self.swizzle is not None:
            self.swizzle.reset_stats()
        self.object_accesses = 0
        self.records_decoded = 0
        self.decodes_avoided = 0

    def drop_caches(self) -> None:
        """Empty the buffer pool and decoded cache (a "cold" restart)."""
        self.buffer.clear(write_dirty=True)
        self._live.clear()
        if self.swizzle is not None:
            self.swizzle.clear()

    def pages_of(self, oid: int) -> Tuple[int, ...]:
        """Page ids an object occupies."""
        try:
            entry = self._directory[oid]
        except KeyError:
            raise UnknownObject(oid) from None
        return tuple(self._page_range(entry))

    def location_of(self, oid: int) -> Tuple[int, int]:
        """The ``(offset, length)`` directory entry of an object."""
        try:
            return self._directory[oid]
        except KeyError:
            raise UnknownObject(oid) from None

    def current_order(self) -> List[int]:
        """Object ids sorted by physical position."""
        return sorted(self._directory, key=lambda oid: self._directory[oid][0])

    def iter_oids(self) -> Iterator[int]:
        """Iterate over stored object ids (unspecified order)."""
        return iter(self._directory)

    @property
    def object_count(self) -> int:
        """Number of live objects."""
        return len(self._directory)

    @property
    def used_bytes(self) -> int:
        """Bytes occupied by live objects (excludes holes)."""
        return self._end_offset - self._hole_bytes

    @property
    def segment_bytes(self) -> int:
        """Total segment extent including holes."""
        return self._end_offset

    @property
    def page_count(self) -> int:
        """Pages spanned by the segment."""
        return (self._end_offset + self.page_size - 1) // self.page_size

    def __contains__(self, oid: int) -> bool:
        return oid in self._directory

    def __len__(self) -> int:
        return len(self._directory)

    # ------------------------------------------------------------------ #
    # Eviction plumbing
    # ------------------------------------------------------------------ #

    def _on_page_evicted(self, page_id: int) -> None:
        for oid in self._page_objects.get(page_id, ()):
            self._live.pop(oid, None)
        if self.swizzle is not None:
            self.swizzle.unswizzle_page(page_id)

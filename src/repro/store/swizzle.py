"""Pointer-swizzling table, mirroring Texas' page-grain swizzling.

Texas converts disk addresses to virtual-memory addresses when a page is
faulted in, and back when the page is evicted.  The reproduction keeps an
explicit table mapping object ids to synthetic "virtual addresses" for the
objects whose pages are resident; the counters feed the cost model (each
(un)swizzle charges :attr:`CostModel.swizzle_time`) and give the benchmark
an additional metric that real persistent stores care about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from repro.store.costs import CostModel, SimClock

__all__ = ["SwizzleStats", "SwizzleTable"]


@dataclass
class SwizzleStats:
    """Counters of pointer (un)swizzling work."""

    swizzled: int = 0
    unswizzled: int = 0

    def snapshot(self) -> "SwizzleStats":
        """Immutable copy of the counters."""
        return SwizzleStats(self.swizzled, self.unswizzled)

    def __sub__(self, other: "SwizzleStats") -> "SwizzleStats":
        return SwizzleStats(self.swizzled - other.swizzled,
                            self.unswizzled - other.unswizzled)


class SwizzleTable:
    """Tracks which objects currently have in-memory (swizzled) pointers."""

    def __init__(self, cost_model: Optional[CostModel] = None,
                 clock: Optional[SimClock] = None) -> None:
        self.cost_model = cost_model or CostModel()
        self.clock = clock or SimClock()
        self.stats = SwizzleStats()
        self._addresses: Dict[int, int] = {}
        self._by_page: Dict[int, Set[int]] = {}
        self._next_address = 0x1000_0000  # Synthetic VM base, Texas-style.

    def swizzle_in(self, page_id: int, oids: Iterable[int]) -> int:
        """Swizzle the objects of a freshly loaded page; return count."""
        bucket = self._by_page.setdefault(page_id, set())
        count = 0
        for oid in oids:
            if oid in self._addresses:
                bucket.add(oid)
                continue
            self._addresses[oid] = self._next_address
            self._next_address += 0x10
            bucket.add(oid)
            count += 1
        if count:
            self.stats.swizzled += count
            self.clock.advance(count * self.cost_model.swizzle_time)
        return count

    def unswizzle_page(self, page_id: int) -> int:
        """Drop the mappings contributed by an evicted page; return count."""
        bucket = self._by_page.pop(page_id, None)
        if not bucket:
            return 0
        count = 0
        for oid in bucket:
            # An object spanning several pages stays swizzled while any of
            # its pages is resident.
            if any(oid in other for other in self._by_page.values()):
                continue
            self._addresses.pop(oid, None)
            count += 1
        if count:
            self.stats.unswizzled += count
            self.clock.advance(count * self.cost_model.swizzle_time)
        return count

    def address_of(self, oid: int) -> Optional[int]:
        """Synthetic virtual address of *oid*, or ``None`` if unswizzled."""
        return self._addresses.get(oid)

    def is_swizzled(self, oid: int) -> bool:
        """Whether *oid* currently has an in-memory address."""
        return oid in self._addresses

    @property
    def resident_count(self) -> int:
        """Number of objects currently swizzled."""
        return len(self._addresses)

    def clear(self) -> None:
        """Forget every mapping (store rebuild)."""
        self._addresses.clear()
        self._by_page.clear()

    def reset_stats(self) -> None:
        """Zero the counters."""
        self.stats = SwizzleStats()

"""Texas-like persistent object store: pages, buffer pool, swizzling.

See DESIGN.md §2 — this package is the reproduction's substitute for the
Texas persistent store the paper benchmarks (Singhal, Kakkad & Wilson 1992).
"""

from repro.store.buffer import BufferPool, BufferStats, Frame, ReplacementPolicy
from repro.store.costs import DEFAULT_PAGE_SIZE, CostModel, SimClock
from repro.store.disk import DiskStats, SimulatedDisk
from repro.store.serializer import (
    StoredObject,
    decode_object,
    encode_object,
    encoded_size,
)
from repro.store.storage import (
    ObjectStore,
    ReorganizationStats,
    StoreConfig,
    StoreSnapshot,
)
from repro.store.swizzle import SwizzleStats, SwizzleTable

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "CostModel",
    "SimClock",
    "DiskStats",
    "SimulatedDisk",
    "BufferPool",
    "BufferStats",
    "Frame",
    "ReplacementPolicy",
    "StoredObject",
    "encode_object",
    "decode_object",
    "encoded_size",
    "ObjectStore",
    "StoreConfig",
    "StoreSnapshot",
    "ReorganizationStats",
    "SwizzleStats",
    "SwizzleTable",
]

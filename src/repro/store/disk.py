"""Simulated page-addressed disk with I/O accounting.

The disk is the authoritative byte store: a mapping from page id to a
``page_size``-byte block.  Every *accounted* access (``read_page`` /
``write_page``) bumps the statistics and advances the shared
:class:`~repro.store.costs.SimClock`; *administrative* access (``peek`` /
``poke``) is free and is used for bulk loading and for store-internal
bookkeeping that a real system would do through the same mapped memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.errors import StorageError
from repro.store.costs import DEFAULT_PAGE_SIZE, CostModel, SimClock

__all__ = ["DiskStats", "SimulatedDisk"]


@dataclass
class DiskStats:
    """Counters for accounted page I/O."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Total accounted I/O operations."""
        return self.reads + self.writes

    def snapshot(self) -> "DiskStats":
        """Immutable copy of the current counters."""
        return DiskStats(self.reads, self.writes)

    def __sub__(self, other: "DiskStats") -> "DiskStats":
        return DiskStats(self.reads - other.reads, self.writes - other.writes)


class SimulatedDisk:
    """A page-granular byte store with read/write accounting.

    Pages not yet written read back as all-zero blocks, like a freshly
    formatted volume.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE,
                 cost_model: Optional[CostModel] = None,
                 clock: Optional[SimClock] = None) -> None:
        if page_size <= 0:
            raise StorageError(f"page_size must be > 0, got {page_size}")
        self.page_size = page_size
        self.cost_model = cost_model or CostModel()
        self.clock = clock or SimClock()
        self.stats = DiskStats()
        self._pages: Dict[int, bytes] = {}

    # ------------------------------------------------------------------ #
    # Accounted I/O
    # ------------------------------------------------------------------ #

    def read_page(self, page_id: int) -> bytes:
        """Read one page, charging one I/O."""
        self._check_page_id(page_id)
        self.stats.reads += 1
        self.clock.advance(self.cost_model.io_read_time)
        return self._pages.get(page_id, b"\x00" * self.page_size)

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one page, charging one I/O."""
        self._check_page_id(page_id)
        self._check_data(data)
        self.stats.writes += 1
        self.clock.advance(self.cost_model.io_write_time)
        self._pages[page_id] = bytes(data)

    # ------------------------------------------------------------------ #
    # Administrative (unaccounted) access
    # ------------------------------------------------------------------ #

    def peek(self, page_id: int) -> bytes:
        """Read one page without accounting (bulk load / introspection)."""
        self._check_page_id(page_id)
        return self._pages.get(page_id, b"\x00" * self.page_size)

    def poke(self, page_id: int, data: bytes) -> None:
        """Write one page without accounting (bulk load / rebuild)."""
        self._check_page_id(page_id)
        self._check_data(data)
        self._pages[page_id] = bytes(data)

    def drop_all(self) -> None:
        """Discard every page (used when the store is rebuilt)."""
        self._pages.clear()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def page_count(self) -> int:
        """Number of pages that have ever been materialised."""
        return len(self._pages)

    def page_ids(self) -> Iterator[int]:
        """Iterate over materialised page ids, ascending."""
        return iter(sorted(self._pages))

    def reset_stats(self) -> None:
        """Zero the I/O counters (the clock is left untouched)."""
        self.stats = DiskStats()

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_page_id(page_id: int) -> None:
        if page_id < 0:
            raise StorageError(f"page id must be >= 0, got {page_id}")

    def _check_data(self, data: bytes) -> None:
        if len(data) != self.page_size:
            raise StorageError(
                f"page data must be exactly {self.page_size} bytes, "
                f"got {len(data)}")

"""A compact process-based discrete-event simulation engine.

The paper reports that OCB "is also being ported into a simulation model
designed with the QNAP2 simulation software" — a queueing-network tool.
This module provides the equivalent substrate in Python: a future-event
list, generator-based processes, and FIFO resources, in the style of
(but independent from) SimPy.

Processes are plain generator functions receiving the environment and
yielding *events*:

>>> def client(env):
...     yield env.timeout(2.0)
...     with_request = env.request(disk)      # Acquire a server slot.
...     yield with_request
...     yield env.timeout(0.010)              # Service time.
...     env.release(disk)

The engine is deterministic: simultaneous events fire in schedule order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Generator, Iterator, List, Optional

from collections import deque

from repro.errors import SimulationError

__all__ = ["Event", "Timeout", "Request", "Resource", "Process", "Environment"]


class Event:
    """Something a process can wait on."""

    __slots__ = ("env", "triggered", "value", "_waiters")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, resuming every waiting process."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for process in self._waiters:
            self.env._schedule(0.0, process)
        self._waiters.clear()
        return self

    def _wait(self, process: "Process") -> None:
        if self.triggered:
            self.env._schedule(0.0, process)
        else:
            self._waiters.append(process)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(env)
        env._schedule(delay, self)


class Request(Event):
    """A pending acquisition of one :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, env: "Environment", resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource


class Resource:
    """A server pool with FIFO queueing (QNAP2 station equivalent)."""

    def __init__(self, env: "Environment", capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: Deque[Request] = deque()
        # Utilisation accounting.
        self.total_wait = 0.0
        self.total_served = 0
        self._request_times: Dict[int, float] = {}

    def request(self) -> Request:
        """Ask for one slot; the returned event fires when granted."""
        req = Request(self.env, self)
        self._request_times[id(req)] = self.env.now
        if self.in_use < self.capacity:
            self.in_use += 1
            self._grant(req)
        else:
            self._queue.append(req)
        return req

    def release(self) -> None:
        """Return one slot, waking the next queued request if any."""
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            nxt = self._queue.popleft()
            self._grant(nxt)
        else:
            self.in_use -= 1

    def _grant(self, req: Request) -> None:
        started = self._request_times.pop(id(req), self.env.now)
        self.total_wait += self.env.now - started
        self.total_served += 1
        req.succeed()

    @property
    def queue_length(self) -> int:
        """Requests currently waiting."""
        return len(self._queue)

    @property
    def mean_wait(self) -> float:
        """Mean queueing delay over granted requests."""
        return self.total_wait / self.total_served if self.total_served else 0.0


class Process(Event):
    """A running generator; itself an event that fires at termination."""

    __slots__ = ("generator",)

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        self.generator = generator
        env._schedule(0.0, self)

    def _step(self) -> None:
        try:
            target = self.generator.send(None)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {type(target).__name__}; expected an Event")
        target._wait(self)


@dataclass(order=True)
class _Scheduled:
    time: float
    sequence: int
    item: Any = field(compare=False)


class Environment:
    """The simulation clock and future-event list."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[_Scheduled] = []
        self._sequence = 0

    # ------------------------------------------------------------------ #
    # Event factories
    # ------------------------------------------------------------------ #

    def timeout(self, delay: float) -> Timeout:
        """An event firing *delay* simulated seconds from now."""
        return Timeout(self, delay)

    def event(self) -> Event:
        """A bare event, fired manually via :meth:`Event.succeed`."""
        return Event(self)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a process from a generator."""
        return Process(self, generator)

    def resource(self, capacity: int = 1, name: str = "resource") -> Resource:
        """Create a FIFO resource bound to this environment."""
        return Resource(self, capacity, name)

    # ------------------------------------------------------------------ #
    # Scheduling & execution
    # ------------------------------------------------------------------ #

    def _schedule(self, delay: float, item: Any) -> None:
        self._sequence += 1
        heapq.heappush(self._heap,
                       _Scheduled(self.now + delay, self._sequence, item))

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the horizon (or until the list drains)."""
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self.now = until
                return self.now
            entry = heapq.heappop(self._heap)
            self.now = entry.time
            item = entry.item
            if isinstance(item, Process):
                item._step()
            elif isinstance(item, Timeout):
                if not item.triggered:
                    item.succeed()
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown scheduled item {item!r}")
        if until is not None:
            self.now = max(self.now, until)
        return self.now

"""Discrete-event simulation substrate (the paper's QNAP2-port analogue)."""

from repro.sim.engine import Environment, Event, Process, Request, Resource, Timeout

__all__ = ["Environment", "Event", "Process", "Request", "Resource", "Timeout"]

"""Multi-user execution of the OCB workload.

OCB's "last version ... also supports multiple users, in a very simple way
(using processes), which is almost unique".  The reproduction offers the
same capability, deterministically: ``CLIENTN`` clients, each with its own
Lewis–Payne substream, interleave transactions round-robin against the
*shared* store and buffer pool — so clients pollute each other's cache
exactly as concurrent processes would on the paper's single-machine setup.

The runner executes through the unified kernel, so ``store`` accepts the
classic :class:`~repro.store.storage.ObjectStore`, any
:class:`~repro.backends.base.Backend`, or a registered backend **name**
(``MultiClientRunner(db, "sqlite", params)`` creates, bulk-loads and
shares one SQLite engine between all clients).  Each client gets its own
:class:`~repro.core.session.Session` over the shared engine — the cache
pollution is real, the RNG streams are per-client, and the logical
metrics are identical on every backend.

(Queueing *delays* under contention are modelled separately by
:mod:`repro.multiuser.des` on top of the discrete-event engine.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.backends.base import Backend
from repro.clustering.base import ClusteringPolicy, NoClustering
from repro.core.database import OCBDatabase
from repro.core.metrics import LatencyPercentiles, PhaseReport
from repro.core.parameters import WorkloadParameters
from repro.core.scenario import Scenario, ScenarioRunner, WorkloadMix
from repro.core.session import Session
from repro.core.workload import WorkloadReport
from repro.errors import WorkloadError
from repro.store.storage import ObjectStore

__all__ = ["MultiUserReport", "MultiClientRunner"]


@dataclass
class MultiUserReport:
    """Per-client and merged metrics of a multi-user run."""

    clients: List[WorkloadReport] = field(default_factory=list)
    backend_name: str = "simulated"

    @property
    def merged_cold(self) -> PhaseReport:
        """All clients' cold runs folded together.

        The fold merges *everything* per kind — simulated totals **and**
        the raw wall-clock samples — so the merged phase reports the
        same latency percentiles a single-client run would.
        """
        merged = PhaseReport(name="cold")
        for report in self.clients:
            merged.merge(report.cold)
        return merged

    @property
    def merged_warm(self) -> PhaseReport:
        """All clients' warm runs folded together (see :attr:`merged_cold`)."""
        merged = PhaseReport(name="warm")
        for report in self.clients:
            merged.merge(report.warm)
        return merged

    @property
    def client_count(self) -> int:
        """Number of clients that ran."""
        return len(self.clients)

    @property
    def warm_reads_per_transaction(self) -> float:
        """Mean page reads per warm transaction across all clients."""
        return self.merged_warm.totals.reads_per_transaction

    # -- wall-clock percentiles (cross-backend comparisons) ------------- #

    @property
    def cold_wall_percentiles(self) -> LatencyPercentiles:
        """P50/P95/P99 over every cold transaction of every client."""
        return self.merged_cold.wall_percentiles()

    @property
    def warm_wall_percentiles(self) -> LatencyPercentiles:
        """P50/P95/P99 over every warm transaction of every client."""
        return self.merged_warm.wall_percentiles()

    def client_wall_percentiles(self, client: int) -> LatencyPercentiles:
        """One client's warm-phase wall-clock percentiles."""
        return self.clients[client].warm.wall_percentiles()


class MultiClientRunner:
    """Round-robin interleaving of CLIENTN workload streams.

    A thin shim over the declarative scenario layer: the Table 2
    transaction mix at ``CLIENTN`` clients, executed in-process by
    :class:`~repro.core.scenario.ScenarioRunner` — per-client reports
    are byte-identical to the pre-refactor interleaving on the same
    seed (pinned by ``tests/core/test_shim_equivalence.py``).
    """

    def __init__(self, database: OCBDatabase,
                 store: Union[ObjectStore, Backend, str],
                 parameters: WorkloadParameters,
                 policy: Optional[ClusteringPolicy] = None,
                 batch: Optional[bool] = None,
                 backend_options: Optional[dict] = None) -> None:
        if parameters.clients < 1:
            raise WorkloadError(f"need >= 1 client, got {parameters.clients}")
        self.database = database
        self.parameters = parameters
        self.policy = policy or NoClustering()
        if store is None or isinstance(store, str):
            # Resolve the name once; every client shares the engine.
            store = Session.for_database(
                database, store, policy=self.policy, batch=batch,
                backend_options=backend_options).store
        self.store = store
        self.scenario = Scenario(
            mix=WorkloadMix.from_workload_parameters(parameters),
            clients=parameters.clients,
            cold_ops=parameters.cold_n,
            warm_ops=parameters.hot_n,
            seed=parameters.seed,
            batch=batch)
        self._runner = ScenarioRunner(database, self.scenario,
                                      store=store, policy=self.policy)

    def run(self) -> MultiUserReport:
        """Interleave the cold runs, then the warm runs, transactionally."""
        report = self._runner.run()
        reports = [WorkloadReport(cold=client.cold.classic,
                                  warm=client.warm.classic)
                   for client in report.clients]
        backend_name = getattr(self.store, "name",
                               type(self.store).__name__)
        return MultiUserReport(clients=reports, backend_name=backend_name)

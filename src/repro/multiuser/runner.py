"""Multi-user execution of the OCB workload.

OCB's "last version ... also supports multiple users, in a very simple way
(using processes), which is almost unique".  The reproduction offers the
same capability, deterministically: ``CLIENTN`` clients, each with its own
Lewis–Payne substream, interleave transactions round-robin against the
*shared* store and buffer pool — so clients pollute each other's cache
exactly as concurrent processes would on the paper's single-machine setup.

(Queueing *delays* under contention are modelled separately by
:mod:`repro.multiuser.des` on top of the discrete-event engine.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.clustering.base import ClusteringPolicy, NoClustering
from repro.core.database import OCBDatabase
from repro.core.metrics import MetricsCollector, PhaseReport
from repro.core.parameters import WorkloadParameters
from repro.core.workload import WorkloadReport, WorkloadRunner
from repro.errors import WorkloadError
from repro.store.storage import ObjectStore

__all__ = ["MultiUserReport", "MultiClientRunner"]


@dataclass
class MultiUserReport:
    """Per-client and merged metrics of a multi-user run."""

    clients: List[WorkloadReport] = field(default_factory=list)

    @property
    def merged_cold(self) -> PhaseReport:
        """All clients' cold runs folded together."""
        merged = PhaseReport(name="cold")
        for report in self.clients:
            merged.merge(report.cold)
        return merged

    @property
    def merged_warm(self) -> PhaseReport:
        """All clients' warm runs folded together."""
        merged = PhaseReport(name="warm")
        for report in self.clients:
            merged.merge(report.warm)
        return merged

    @property
    def client_count(self) -> int:
        """Number of clients that ran."""
        return len(self.clients)

    @property
    def warm_reads_per_transaction(self) -> float:
        """Mean page reads per warm transaction across all clients."""
        return self.merged_warm.totals.reads_per_transaction


class MultiClientRunner:
    """Round-robin interleaving of CLIENTN workload streams."""

    def __init__(self, database: OCBDatabase, store: ObjectStore,
                 parameters: WorkloadParameters,
                 policy: Optional[ClusteringPolicy] = None) -> None:
        if parameters.clients < 1:
            raise WorkloadError(f"need >= 1 client, got {parameters.clients}")
        self.database = database
        self.store = store
        self.parameters = parameters
        self.policy = policy or NoClustering()
        self._runners = [
            WorkloadRunner(database, store, parameters, policy=self.policy,
                           client_id=client)
            for client in range(parameters.clients)]

    def run(self) -> MultiUserReport:
        """Interleave the cold runs, then the warm runs, transactionally."""
        cold_collectors = [MetricsCollector("cold") for _ in self._runners]
        warm_collectors = [MetricsCollector("warm") for _ in self._runners]

        for _ in range(self.parameters.cold_n):
            for runner, collector in zip(self._runners, cold_collectors):
                runner.step(collector)
        for _ in range(self.parameters.hot_n):
            for runner, collector in zip(self._runners, warm_collectors):
                runner.step(collector)

        reports = [WorkloadReport(cold=c.report, warm=w.report)
                   for c, w in zip(cold_collectors, warm_collectors)]
        return MultiUserReport(clients=reports)

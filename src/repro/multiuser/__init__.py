"""Multi-user OCB: round-robin interleaving + queueing simulation."""

from repro.multiuser.des import (
    ClientTimings,
    SimulatedMultiUser,
    SimulatedRunReport,
)
from repro.multiuser.runner import MultiClientRunner, MultiUserReport

__all__ = [
    "MultiClientRunner",
    "MultiUserReport",
    "SimulatedMultiUser",
    "SimulatedRunReport",
    "ClientTimings",
]

"""Queueing model of multi-user OCB on the discrete-event engine.

The round-robin runner (:mod:`repro.multiuser.runner`) captures cache
*pollution* between clients but not *contention delays*.  This module adds
the queueing view the paper's QNAP2 port was built for: each client is a
process that thinks, executes its transaction against the real store (to
learn how many page I/Os it needs), then queues those I/Os on a shared
disk server — so response times include waiting behind other clients.

The model reports per-client response-time statistics, aggregate
throughput, and disk utilisation, which is what one needs to study how
clustering (fewer I/Os per transaction) translates into multi-user
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.clustering.base import ClusteringPolicy, NoClustering
from repro.core.database import OCBDatabase
from repro.core.metrics import MetricsCollector
from repro.core.parameters import WorkloadParameters
from repro.core.workload import WorkloadRunner
from repro.errors import WorkloadError
from repro.sim.engine import Environment
from repro.store.storage import ObjectStore

__all__ = ["ClientTimings", "SimulatedRunReport", "SimulatedMultiUser",
           "OpenLoopPrediction", "simulate_open_arrivals"]


@dataclass
class ClientTimings:
    """Response times of one simulated client."""

    client_id: int
    response_times: List[float] = field(default_factory=list)

    @property
    def transactions(self) -> int:
        """Completed transactions."""
        return len(self.response_times)

    @property
    def mean_response(self) -> float:
        """Mean response time in simulated seconds."""
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    @property
    def max_response(self) -> float:
        """Worst response time."""
        return max(self.response_times) if self.response_times else 0.0


@dataclass
class SimulatedRunReport:
    """Aggregate outcome of one simulated multi-user run."""

    clients: List[ClientTimings]
    makespan: float
    disk_busy: float
    total_ios: int

    @property
    def throughput(self) -> float:
        """Transactions per simulated second."""
        done = sum(c.transactions for c in self.clients)
        return done / self.makespan if self.makespan > 0 else 0.0

    @property
    def mean_response(self) -> float:
        """Mean response time across every transaction of every client."""
        times = [t for c in self.clients for t in c.response_times]
        return sum(times) / len(times) if times else 0.0

    @property
    def disk_utilisation(self) -> float:
        """Fraction of the makespan the disk server was busy."""
        return self.disk_busy / self.makespan if self.makespan > 0 else 0.0


class SimulatedMultiUser:
    """CLIENTN client processes contending for one disk server."""

    def __init__(self, database: OCBDatabase, store: ObjectStore,
                 parameters: WorkloadParameters,
                 policy: Optional[ClusteringPolicy] = None,
                 transactions_per_client: Optional[int] = None,
                 disk_capacity: int = 1) -> None:
        if parameters.clients < 1:
            raise WorkloadError(f"need >= 1 client, got {parameters.clients}")
        self.database = database
        self.store = store
        self.parameters = parameters
        self.policy = policy or NoClustering()
        self.transactions_per_client = (
            transactions_per_client if transactions_per_client is not None
            else parameters.hot_n)
        self.disk_capacity = disk_capacity

    def run(self) -> SimulatedRunReport:
        """Simulate the run; returns timing/throughput statistics."""
        env = Environment()
        disk = env.resource(self.disk_capacity, name="disk")
        cost = self.store.cost_model
        timings = [ClientTimings(client_id=i)
                   for i in range(self.parameters.clients)]
        busy = [0.0]
        total_ios = [0]

        runners = [
            WorkloadRunner(self.database, self.store, self.parameters,
                           policy=self.policy, client_id=i)
            for i in range(self.parameters.clients)]

        def client(index: int):
            runner = runners[index]
            collector = MetricsCollector(f"client-{index}")
            think = self.parameters.think_time
            for _ in range(self.transactions_per_client):
                if think > 0.0:
                    yield env.timeout(think)
                started = env.now
                before = self.store.snapshot()
                runner.step(collector)
                delta = self.store.snapshot() - before
                # CPU portion: charged without contention.
                cpu = delta.object_accesses * cost.cpu_object_time
                if cpu > 0.0:
                    yield env.timeout(cpu)
                # I/O portion: each page I/O queues on the shared disk.
                ios = delta.total_ios
                total_ios[0] += ios
                for _ in range(ios):
                    request = disk.request()
                    yield request
                    service = cost.io_read_time
                    busy[0] += service
                    yield env.timeout(service)
                    disk.release()
                timings[index].response_times.append(env.now - started)

        for i in range(self.parameters.clients):
            env.process(client(i))
        makespan = env.run()
        return SimulatedRunReport(clients=timings, makespan=makespan,
                                  disk_busy=busy[0], total_ios=total_ios[0])


# ---------------------------------------------------------------------- #
# Open-arrival prediction (the load generator's validation model)
# ---------------------------------------------------------------------- #

@dataclass
class OpenLoopPrediction:
    """Predicted queueing behaviour of one open-arrival schedule."""

    operations: int
    makespan: float
    busy: float
    waits: List[float] = field(default_factory=list)
    responses: List[float] = field(default_factory=list)

    @property
    def mean_wait(self) -> float:
        """Mean queueing delay (arrival → service start), seconds."""
        return sum(self.waits) / len(self.waits) if self.waits else 0.0

    @property
    def p95_wait(self) -> float:
        """95th-percentile queueing delay, seconds."""
        if not self.waits:
            return 0.0
        from repro.stats import percentile
        return percentile(self.waits, 95.0)

    @property
    def mean_response(self) -> float:
        """Mean response time (arrival → completion), seconds."""
        if not self.responses:
            return 0.0
        return sum(self.responses) / len(self.responses)

    @property
    def throughput(self) -> float:
        """Completed operations per simulated second."""
        return self.operations / self.makespan if self.makespan > 0 else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of the makespan the server was busy."""
        return self.busy / self.makespan if self.makespan > 0 else 0.0


def simulate_open_arrivals(arrivals: List[float],
                           service_times: List[float],
                           capacity: int = 1) -> OpenLoopPrediction:
    """Simulate open arrivals through a FIFO server on the DES engine.

    *arrivals* are ascending intended start offsets (seconds);
    *service_times* the matching per-operation service durations.  This
    is exactly the queue the single-threaded open-loop driver
    (:mod:`repro.core.loadgen`) physically is — operations arrive on a
    schedule that does not care whether the server is free, queue FIFO
    on one server (``capacity=1``), and leave after their service time —
    so its predicted waits are directly comparable with the driver's
    measured intended-arrival → start delays.  Takes plain lists, not
    runner objects, to stay import-independent of the load generator.
    """
    if len(arrivals) != len(service_times):
        raise WorkloadError(
            f"arrivals and service_times must pair up, got "
            f"{len(arrivals)} vs {len(service_times)}")
    prediction = OpenLoopPrediction(operations=len(arrivals),
                                    makespan=0.0, busy=0.0)
    if not arrivals:
        return prediction
    env = Environment()
    server = env.resource(capacity, name="server")
    busy = [0.0]

    def operation(service: float):
        arrived = env.now
        request = server.request()
        yield request
        prediction.waits.append(env.now - arrived)
        busy[0] += service
        if service > 0.0:
            yield env.timeout(service)
        server.release()
        prediction.responses.append(env.now - arrived)

    def spawner():
        previous = 0.0
        for offset, service in zip(arrivals, service_times):
            gap = offset - previous
            if gap < 0.0:
                raise WorkloadError(
                    "arrival offsets must be ascending, got "
                    f"{offset} after {previous}")
            if gap > 0.0:
                yield env.timeout(gap)
            previous = offset
            env.process(operation(service))

    env.process(spawner())
    prediction.makespan = env.run()
    prediction.busy = busy[0]
    return prediction

"""repro — reproduction of OCB, the Object Clustering Benchmark (EDBT '98).

Public API highlights:

* :class:`repro.core.OCBBenchmark` — generate / load / run in three lines,
* :class:`repro.core.DatabaseParameters` / ``WorkloadParameters`` — the
  paper's Tables 1 and 2,
* :class:`repro.clustering.DSTCPolicy` — the clustering technique the
  paper evaluates,
* :class:`repro.store.ObjectStore` — the Texas-like persistent store,
* :mod:`repro.backends` — pluggable storage engines (simulated, memory,
  SQLite) behind one :class:`~repro.backends.Backend` protocol,
* :mod:`repro.comparators` — OO1, DSTC-CluB, HyperModel and OO7.
"""

from repro._version import __version__
from repro.errors import (
    BackendError,
    ClusteringError,
    GenerationError,
    ParameterError,
    ReproError,
    StorageError,
    WorkloadError,
)
from repro.backends import (
    Backend,
    MemoryBackend,
    SimulatedBackend,
    SQLiteBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.rand import DEFAULT_SEED, LewisPayne
from repro.core import (
    BenchmarkResult,
    ClusteringExperiment,
    DatabaseParameters,
    ExperimentResult,
    GenericOperationsRunner,
    OCBBenchmark,
    OCBDatabase,
    Session,
    WorkloadParameters,
    WorkloadRunner,
    generate_database,
    preset,
)
from repro.multiuser import MultiClientRunner
from repro.clustering import (
    DROPolicy,
    DSTCParameters,
    DSTCPolicy,
    NoClustering,
    StaticPolicy,
)
from repro.store import CostModel, ObjectStore, StoreConfig
from repro.stats import Summary, summarize
from repro.qualitative import assess_policy, render_assessments

__all__ = [
    "__version__",
    "ReproError",
    "ParameterError",
    "GenerationError",
    "StorageError",
    "BackendError",
    "ClusteringError",
    "WorkloadError",
    "Backend",
    "SimulatedBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "DEFAULT_SEED",
    "LewisPayne",
    "OCBBenchmark",
    "BenchmarkResult",
    "OCBDatabase",
    "DatabaseParameters",
    "WorkloadParameters",
    "Session",
    "WorkloadRunner",
    "GenericOperationsRunner",
    "MultiClientRunner",
    "ClusteringExperiment",
    "ExperimentResult",
    "generate_database",
    "preset",
    "DSTCPolicy",
    "DSTCParameters",
    "DROPolicy",
    "NoClustering",
    "StaticPolicy",
    "ObjectStore",
    "StoreConfig",
    "CostModel",
    "Summary",
    "summarize",
    "assess_policy",
    "render_assessments",
]

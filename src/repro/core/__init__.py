"""OCB core: parameters, generation, workload, metrics, experiments."""

from repro.core.benchmark import BenchmarkResult, OCBBenchmark
from repro.core.database import DatabaseStatistics, OCBDatabase, OCBObject
from repro.core.experiment import ClusteringExperiment, ExperimentResult
from repro.core.generation import (
    GenerationReport,
    generate_database,
    generate_schema,
)
from repro.core.generic_ops import (
    GenericOperation,
    GenericOperationsRunner,
    OperationResult,
)
from repro.core.metrics import KindStats, MetricsCollector, PhaseReport
from repro.core.parameters import (
    DatabaseParameters,
    ReferenceTypeSpec,
    WorkloadParameters,
    default_reference_types,
)
from repro.core.presets import (
    PRESETS,
    SCENARIO_PRESETS,
    scenario_preset,
    default_database_parameters,
    default_workload_parameters,
    dstc_club_database_parameters,
    dstc_club_workload_parameters,
    hypermodel_like_database_parameters,
    oo1_like_database_parameters,
    oo1_like_workload_parameters,
    oo7_like_database_parameters,
    preset,
)
from repro.core.scenario import (
    ClientExecutor,
    ClientScenarioReport,
    MixEntry,
    OpClassStats,
    Scenario,
    ScenarioPhase,
    ScenarioReport,
    ScenarioRunner,
    WorkloadMix,
)
from repro.core.schema import ClassDescriptor, Schema
from repro.core.session import Measurement, Session
from repro.core.transactions import (
    AccessContext,
    TransactionKind,
    TransactionResult,
    TransactionSpec,
    run_transaction,
)
from repro.core.workload import WorkloadReport, WorkloadRunner

__all__ = [
    "OCBBenchmark",
    "BenchmarkResult",
    "OCBDatabase",
    "OCBObject",
    "DatabaseStatistics",
    "ClusteringExperiment",
    "ExperimentResult",
    "GenerationReport",
    "generate_database",
    "generate_schema",
    "GenericOperation",
    "GenericOperationsRunner",
    "OperationResult",
    "KindStats",
    "MetricsCollector",
    "PhaseReport",
    "DatabaseParameters",
    "WorkloadParameters",
    "ReferenceTypeSpec",
    "default_reference_types",
    "MixEntry",
    "WorkloadMix",
    "Scenario",
    "OpClassStats",
    "ScenarioPhase",
    "ClientScenarioReport",
    "ScenarioReport",
    "ClientExecutor",
    "ScenarioRunner",
    "ClassDescriptor",
    "Schema",
    "AccessContext",
    "Session",
    "Measurement",
    "TransactionKind",
    "TransactionResult",
    "TransactionSpec",
    "run_transaction",
    "WorkloadReport",
    "WorkloadRunner",
    "PRESETS",
    "preset",
    "SCENARIO_PRESETS",
    "scenario_preset",
    "default_database_parameters",
    "default_workload_parameters",
    "dstc_club_database_parameters",
    "dstc_club_workload_parameters",
    "oo1_like_database_parameters",
    "oo1_like_workload_parameters",
    "hypermodel_like_database_parameters",
    "oo7_like_database_parameters",
]

"""OCBBenchmark — the one-call facade over the whole pipeline.

Generate the database (Fig. 2), bulk-load it into a Texas-like store with
a chosen initial placement, execute the cold/warm protocol, and package the
results.  Everything is overridable, nothing is hidden: the pieces used
here (:func:`~repro.core.generation.generate_database`,
:class:`~repro.store.storage.ObjectStore`,
:class:`~repro.core.workload.WorkloadRunner`,
:class:`~repro.core.experiment.ClusteringExperiment`) are public API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.backends import Backend, SimulatedBackend, resolve_backend
from repro.clustering.base import ClusteringPolicy, NoClustering
from repro.clustering.placements import placement_from_name
from repro.core.database import DatabaseStatistics, OCBDatabase
from repro.core.experiment import ClusteringExperiment, ExperimentResult
from repro.core.generation import GenerationReport, generate_database
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.core.presets import (
    default_database_parameters,
    default_workload_parameters,
)
from repro.core.workload import WorkloadReport, WorkloadRunner
from repro.errors import WorkloadError
from repro.store.storage import ObjectStore, StoreConfig

__all__ = ["BenchmarkResult", "OCBBenchmark"]


@dataclass
class BenchmarkResult:
    """Everything one benchmark run produced."""

    database_statistics: DatabaseStatistics
    generation: GenerationReport
    report: WorkloadReport
    store_pages: int
    backend_name: str = "simulated"

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        warm = self.report.warm.totals
        wall = self.report.warm.wall_percentiles()
        lines = [
            "OCB benchmark result",
            f"  database : {self.database_statistics.describe()}",
            f"  generated in {self.generation.total_seconds:.3f}s "
            f"({self.generation.removed_references} refs removed by "
            f"consistency)",
            f"  backend  : {self.backend_name}",
            f"  store    : {self.store_pages} pages",
            f"  warm run : {warm.count} transactions, "
            f"{warm.visits_per_transaction:.1f} objects/txn, "
            f"{warm.reads_per_transaction:.2f} reads/txn, "
            f"{warm.hit_ratio * 100:.1f}% buffer hits",
            f"  wall/txn : {wall.describe()}",
        ]
        return "\n".join(lines)


class OCBBenchmark:
    """Configure once, then :meth:`setup` and :meth:`run`."""

    def __init__(self,
                 database_parameters: Optional[DatabaseParameters] = None,
                 workload_parameters: Optional[WorkloadParameters] = None,
                 store_config: Optional[StoreConfig] = None,
                 policy: Optional[ClusteringPolicy] = None,
                 initial_placement: str = "sequential",
                 backend: Union[str, Backend, None] = None,
                 backend_options: Optional[dict] = None) -> None:
        self.database_parameters = (database_parameters
                                    or default_database_parameters())
        self.workload_parameters = (workload_parameters
                                    or default_workload_parameters())
        self.store_config = store_config or StoreConfig()
        self.policy = policy or NoClustering()
        self.initial_placement = initial_placement
        self.backend_spec = backend
        self.backend_options = dict(backend_options or {})
        self.database: Optional[OCBDatabase] = None
        self.generation: Optional[GenerationReport] = None
        self.backend: Optional[Backend] = None
        #: The underlying simulated store when the backend has one
        #: (clustering experiments require it); ``None`` for real engines.
        self.store: Optional[ObjectStore] = None

    # ------------------------------------------------------------------ #
    # Pipeline stages
    # ------------------------------------------------------------------ #

    def setup(self, validate: bool = False) -> OCBDatabase:
        """Generate the database and bulk-load it into a fresh backend."""
        self.database, self.generation = generate_database(
            self.database_parameters, validate=validate)
        self.backend = resolve_backend(self.backend_spec, self.store_config,
                                       **self.backend_options)
        self.store = self.backend.store \
            if isinstance(self.backend, SimulatedBackend) else None
        records = self.database.to_records()
        strategy = placement_from_name(self.initial_placement)
        order = strategy(records)
        self.backend.bulk_load(records.values(), order=order)
        self.backend.reset_stats()
        return self.database

    def run(self, cold_start: bool = False) -> BenchmarkResult:
        """Execute the cold/warm protocol (after :meth:`setup`).

        ``cold_start=True`` drops the engine's caches first (through the
        backend protocol's ``drop_caches``), so the cold run really
        starts cold on every engine that can evict state — the memory
        backend reports that it cannot, and the run proceeds warm.
        """
        if self.database is None or self.backend is None:
            self.setup()
        assert self.database is not None and self.backend is not None
        assert self.generation is not None
        runner = WorkloadRunner(self.database, self.backend,
                                self.workload_parameters, policy=self.policy)
        if cold_start:
            runner.session.drop_caches()
        report = runner.run()
        pages = self.store.page_count if self.store is not None \
            else int(self.backend.stats().get("pages", 0) or 0)
        return BenchmarkResult(
            database_statistics=self.database.statistics(),
            generation=self.generation,
            report=report,
            store_pages=pages,
            backend_name=getattr(self.backend, "name",
                                 type(self.backend).__name__))

    def run_generic_operations(self, operations: int,
                               weights: Optional[dict] = None) -> list:
        """Run the extended operation mix on this benchmark's backend.

        Returns the list of
        :class:`~repro.core.generic_ops.OperationResult` — the facade
        behind ``ocb ops --backend NAME``.
        """
        from repro.core.generic_ops import GenericOperationsRunner
        if self.database is None or self.backend is None:
            self.setup()
        assert self.database is not None and self.backend is not None
        runner = GenericOperationsRunner(self.database, self.backend,
                                         policy=self.policy)
        return runner.run_mix(operations, weights=weights)

    def run_clustering_experiment(self, label: str = "OCB",
                                  io_mode: str = "touched"
                                  ) -> ExperimentResult:
        """Run the Tables 4-5 before/after protocol with this config."""
        if self.database is None or self.backend is None:
            self.setup()
        assert self.database is not None
        if self.store is None:
            raise WorkloadError(
                "clustering experiments need the simulated backend "
                f"(current backend: {self.backend_spec!r})")
        if isinstance(self.policy, NoClustering):
            raise WorkloadError(
                "a clustering experiment needs a clustering policy "
                "(e.g. DSTCPolicy); got NoClustering")
        experiment = ClusteringExperiment(
            self.database, self.store, self.policy,
            self.workload_parameters, label=label, io_mode=io_mode)
        return experiment.run()

"""OCBBenchmark — the one-call facade over the whole pipeline.

Generate the database (Fig. 2), bulk-load it into a Texas-like store with
a chosen initial placement, execute the cold/warm protocol, and package the
results.  Everything is overridable, nothing is hidden: the pieces used
here (:func:`~repro.core.generation.generate_database`,
:class:`~repro.store.storage.ObjectStore`,
:class:`~repro.core.workload.WorkloadRunner`,
:class:`~repro.core.experiment.ClusteringExperiment`) are public API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.clustering.base import ClusteringPolicy, NoClustering
from repro.clustering.placements import placement_from_name
from repro.core.database import DatabaseStatistics, OCBDatabase
from repro.core.experiment import ClusteringExperiment, ExperimentResult
from repro.core.generation import GenerationReport, generate_database
from repro.core.parameters import DatabaseParameters, WorkloadParameters
from repro.core.presets import (
    default_database_parameters,
    default_workload_parameters,
)
from repro.core.workload import WorkloadReport, WorkloadRunner
from repro.errors import WorkloadError
from repro.store.storage import ObjectStore, StoreConfig

__all__ = ["BenchmarkResult", "OCBBenchmark"]


@dataclass
class BenchmarkResult:
    """Everything one benchmark run produced."""

    database_statistics: DatabaseStatistics
    generation: GenerationReport
    report: WorkloadReport
    store_pages: int

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        warm = self.report.warm.totals
        lines = [
            "OCB benchmark result",
            f"  database : {self.database_statistics.describe()}",
            f"  generated in {self.generation.total_seconds:.3f}s "
            f"({self.generation.removed_references} refs removed by "
            f"consistency)",
            f"  store    : {self.store_pages} pages",
            f"  warm run : {warm.count} transactions, "
            f"{warm.visits_per_transaction:.1f} objects/txn, "
            f"{warm.reads_per_transaction:.2f} reads/txn, "
            f"{warm.hit_ratio * 100:.1f}% buffer hits",
        ]
        return "\n".join(lines)


class OCBBenchmark:
    """Configure once, then :meth:`setup` and :meth:`run`."""

    def __init__(self,
                 database_parameters: Optional[DatabaseParameters] = None,
                 workload_parameters: Optional[WorkloadParameters] = None,
                 store_config: Optional[StoreConfig] = None,
                 policy: Optional[ClusteringPolicy] = None,
                 initial_placement: str = "sequential") -> None:
        self.database_parameters = (database_parameters
                                    or default_database_parameters())
        self.workload_parameters = (workload_parameters
                                    or default_workload_parameters())
        self.store_config = store_config or StoreConfig()
        self.policy = policy or NoClustering()
        self.initial_placement = initial_placement
        self.database: Optional[OCBDatabase] = None
        self.generation: Optional[GenerationReport] = None
        self.store: Optional[ObjectStore] = None

    # ------------------------------------------------------------------ #
    # Pipeline stages
    # ------------------------------------------------------------------ #

    def setup(self, validate: bool = False) -> OCBDatabase:
        """Generate the database and bulk-load it into a fresh store."""
        self.database, self.generation = generate_database(
            self.database_parameters, validate=validate)
        self.store = self.store_config.build()
        records = self.database.to_records()
        strategy = placement_from_name(self.initial_placement)
        order = strategy(records)
        self.store.bulk_load(records.values(), order=order)
        self.store.reset_stats()
        return self.database

    def run(self) -> BenchmarkResult:
        """Execute the cold/warm protocol (after :meth:`setup`)."""
        if self.database is None or self.store is None:
            self.setup()
        assert self.database is not None and self.store is not None
        assert self.generation is not None
        runner = WorkloadRunner(self.database, self.store,
                                self.workload_parameters, policy=self.policy)
        report = runner.run()
        return BenchmarkResult(
            database_statistics=self.database.statistics(),
            generation=self.generation,
            report=report,
            store_pages=self.store.page_count)

    def run_clustering_experiment(self, label: str = "OCB",
                                  io_mode: str = "touched"
                                  ) -> ExperimentResult:
        """Run the Tables 4-5 before/after protocol with this config."""
        if self.database is None or self.store is None:
            self.setup()
        assert self.database is not None and self.store is not None
        if isinstance(self.policy, NoClustering):
            raise WorkloadError(
                "a clustering experiment needs a clustering policy "
                "(e.g. DSTCPolicy); got NoClustering")
        experiment = ClusteringExperiment(
            self.database, self.store, self.policy,
            self.workload_parameters, label=label, io_mode=io_mode)
        return experiment.run()

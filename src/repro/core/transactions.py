"""OCB transactions (Fig. 3 of the paper).

Four transaction classes, all rooted at a randomly chosen object and
bounded by a per-kind depth:

* **Set-oriented access** — breadth first on *all* references
  (``SETDEPTH``); empirically matches set queries (McIver & King).
* **Simple traversal** — depth first on all references (``SIMDEPTH``).
* **Hierarchy traversal** — depth first following only *one* reference
  type (``HIEDEPTH``).
* **Stochastic traversal** — a random walk of ``STODEPTH`` steps where the
  next reference index N is chosen with ``p(N) = 1/2^N`` (approaching the
  Markov-chain access patterns of Tsangaris & Naughton).

Every transaction can run **reversed** ("ascending the graphs") by walking
``BackRef`` edges instead of ``ORef``; reverse hierarchy traversals filter
back references by the type of the originating slot.

Duplicate visits are counted by default (the paper's OO1 heritage: its
depth-7 traversal touches "3280 parts, with possible duplicates"); set
semantics are available through ``dedupe=True``.

The :class:`AccessContext` funnels every object access through the store
(so page faults are charged) and notifies the clustering policy of each
link crossing (DSTC's observation input).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Mapping, Optional, Set, Tuple, Union

from repro.backends.base import Backend
from repro.clustering.base import ClusteringPolicy, NoClustering
from repro.errors import WorkloadError
from repro.rand.lewis_payne import LewisPayne
from repro.store.serializer import StoredObject
from repro.store.storage import ObjectStore

__all__ = [
    "TransactionKind",
    "TransactionSpec",
    "TransactionResult",
    "AccessContext",
    "run_transaction",
]


class TransactionKind(str, Enum):
    """The four OCB transaction classes."""

    SET = "set"
    SIMPLE = "simple"
    HIERARCHY = "hierarchy"
    STOCHASTIC = "stochastic"


@dataclass(frozen=True)
class TransactionSpec:
    """Everything needed to execute one transaction."""

    kind: TransactionKind
    root: int
    depth: int
    reverse: bool = False
    ref_type: Optional[int] = None  # Hierarchy traversals only.
    dedupe: bool = False
    max_visits: int = 5000


@dataclass(frozen=True)
class TransactionResult:
    """Logical outcome of one transaction (store I/O measured outside)."""

    kind: TransactionKind
    root: int
    visits: int
    distinct_objects: int
    max_depth_reached: int
    reverse: bool
    ref_type: Optional[int]
    truncated: bool


class AccessContext:
    """Store + policy + catalog wiring shared by all transactions.

    ``store`` may be the classic :class:`ObjectStore` or any
    :class:`~repro.backends.base.Backend`; only the shared
    ``read_object`` access path is used here.
    """

    def __init__(self, store: Union[ObjectStore, Backend],
                 policy: Optional[ClusteringPolicy] = None,
                 tref_table: Optional[Mapping[int, Tuple[int, ...]]] = None,
                 catalog: Optional[Mapping[int, int]] = None) -> None:
        self.store = store
        self.policy = policy or NoClustering()
        self._tref_table = dict(tref_table or {})
        self._catalog = dict(catalog or {})

    def class_of(self, oid: int) -> Optional[int]:
        """Class of *oid* from the catalog (no I/O), if known."""
        return self._catalog.get(oid)

    def ref_type_of(self, cid: Optional[int], index: int) -> Optional[int]:
        """Type of reference slot *index* of class *cid*, if known."""
        if cid is None:
            return None
        types = self._tref_table.get(cid)
        if types is None or index >= len(types):
            return None
        return types[index]

    def access(self, oid: int, source: Optional[StoredObject] = None,
               ref_index: Optional[int] = None,
               via_back_ref: bool = False) -> StoredObject:
        """Read one object, charging I/O and notifying the policy."""
        record = self.store.read_object(oid)
        source_oid = source.oid if source is not None else None
        if source is not None and ref_index is not None:
            if via_back_ref:
                # The crossed slot belongs to the *target* object's class.
                ref_type = self.ref_type_of(record.cid, ref_index)
            else:
                ref_type = self.ref_type_of(source.cid, ref_index)
        else:
            ref_type = None
        self.policy.observe_access(source_oid, oid, ref_type)
        return record

    def end_transaction(self) -> None:
        """Notify the policy that one transaction finished."""
        self.policy.on_transaction_end()


class _Tracker:
    """Visit accounting shared by the four traversal algorithms."""

    __slots__ = ("visits", "distinct", "max_depth", "truncated", "limit",
                 "dedupe")

    def __init__(self, limit: int, dedupe: bool) -> None:
        self.visits = 0
        self.distinct: Set[int] = set()
        self.max_depth = 0
        self.truncated = False
        self.limit = limit
        self.dedupe = dedupe

    def note(self, oid: int, depth: int) -> bool:
        """Record a visit; return False when the budget is exhausted."""
        if self.visits >= self.limit:
            self.truncated = True
            return False
        self.visits += 1
        self.distinct.add(oid)
        if depth > self.max_depth:
            self.max_depth = depth
        return True

    def should_expand(self, oid: int) -> bool:
        """With dedupe on, only first visits are expanded."""
        return True  # Expansion filtering handled by callers via `seen`.


def run_transaction(ctx: AccessContext, spec: TransactionSpec,
                    rng: LewisPayne) -> TransactionResult:
    """Execute one transaction and return its logical result."""
    tracker = _Tracker(spec.max_visits, spec.dedupe)
    if spec.kind is TransactionKind.SET:
        _breadth_first(ctx, spec, tracker)
    elif spec.kind is TransactionKind.SIMPLE:
        _depth_first(ctx, spec, tracker, type_filter=None)
    elif spec.kind is TransactionKind.HIERARCHY:
        if spec.ref_type is None:
            raise WorkloadError("hierarchy traversal needs a ref_type")
        _depth_first(ctx, spec, tracker, type_filter=spec.ref_type)
    elif spec.kind is TransactionKind.STOCHASTIC:
        _stochastic(ctx, spec, tracker, rng)
    else:  # pragma: no cover - exhaustive enum
        raise WorkloadError(f"unknown transaction kind {spec.kind}")
    ctx.end_transaction()
    return TransactionResult(
        kind=spec.kind,
        root=spec.root,
        visits=tracker.visits,
        distinct_objects=len(tracker.distinct),
        max_depth_reached=tracker.max_depth,
        reverse=spec.reverse,
        ref_type=spec.ref_type,
        truncated=tracker.truncated)


# ---------------------------------------------------------------------- #
# Neighbour expansion (forward or reversed)
# ---------------------------------------------------------------------- #

def _neighbours(ctx: AccessContext, record: StoredObject, reverse: bool,
                type_filter: Optional[int]) -> List[Tuple[int, int, bool]]:
    """(target oid, ref index, via_back_ref) edges leaving *record*."""
    edges: List[Tuple[int, int, bool]] = []
    if not reverse:
        for index, target in enumerate(record.refs):
            if target is None:
                continue
            if type_filter is not None and \
                    ctx.ref_type_of(record.cid, index) != type_filter:
                continue
            edges.append((target, index, False))
    else:
        for source_oid, index in record.back_refs:
            if type_filter is not None:
                source_cid = ctx.class_of(source_oid)
                if ctx.ref_type_of(source_cid, index) != type_filter:
                    continue
            edges.append((source_oid, index, True))
    return edges


# ---------------------------------------------------------------------- #
# Set-oriented access: breadth first on all references
# ---------------------------------------------------------------------- #

def _breadth_first(ctx: AccessContext, spec: TransactionSpec,
                   tracker: _Tracker) -> None:
    root_record = ctx.access(spec.root)
    if not tracker.note(spec.root, 0):
        return
    seen: Set[int] = {spec.root}
    frontier: "deque[Tuple[StoredObject, int]]" = deque([(root_record, 0)])
    while frontier:
        record, depth = frontier.popleft()
        if depth >= spec.depth:
            continue
        for target, index, via_back in _neighbours(ctx, record, spec.reverse,
                                                   None):
            if spec.dedupe and target in seen:
                continue
            child = ctx.access(target, source=record, ref_index=index,
                               via_back_ref=via_back)
            if not tracker.note(target, depth + 1):
                return
            seen.add(target)
            frontier.append((child, depth + 1))


# ---------------------------------------------------------------------- #
# Simple & hierarchy traversals: depth first
# ---------------------------------------------------------------------- #

def _depth_first(ctx: AccessContext, spec: TransactionSpec,
                 tracker: _Tracker, type_filter: Optional[int]) -> None:
    root_record = ctx.access(spec.root)
    if not tracker.note(spec.root, 0):
        return
    seen: Set[int] = {spec.root}

    def visit(record: StoredObject, depth: int) -> bool:
        if depth >= spec.depth:
            return True
        for target, index, via_back in _neighbours(ctx, record, spec.reverse,
                                                   type_filter):
            if spec.dedupe and target in seen:
                continue
            child = ctx.access(target, source=record, ref_index=index,
                               via_back_ref=via_back)
            if not tracker.note(target, depth + 1):
                return False
            seen.add(target)
            if not visit(child, depth + 1):
                return False
        return True

    visit(root_record, 0)


# ---------------------------------------------------------------------- #
# Stochastic traversal: p(N) = 1/2^N random walk
# ---------------------------------------------------------------------- #

_STOCHASTIC_RETRIES = 8


def _stochastic(ctx: AccessContext, spec: TransactionSpec,
                tracker: _Tracker, rng: LewisPayne) -> None:
    record = ctx.access(spec.root)
    if not tracker.note(spec.root, 0):
        return
    for step in range(1, spec.depth + 1):
        edges = _neighbours(ctx, record, spec.reverse, None)
        if not edges:
            return
        chosen: Optional[Tuple[int, int, bool]] = None
        for _ in range(_STOCHASTIC_RETRIES):
            n = rng.geometric_half(len(edges))
            if n is not None:
                chosen = edges[n - 1]
                break
        if chosen is None:
            return  # Absorbing state: residual probability mass.
        target, index, via_back = chosen
        record = ctx.access(target, source=record, ref_index=index,
                            via_back_ref=via_back)
        if not tracker.note(target, step):
            return

"""OCB transactions (Fig. 3 of the paper).

Four transaction classes, all rooted at a randomly chosen object and
bounded by a per-kind depth:

* **Set-oriented access** — breadth first on *all* references
  (``SETDEPTH``); empirically matches set queries (McIver & King).
* **Simple traversal** — depth first on all references (``SIMDEPTH``).
* **Hierarchy traversal** — depth first following only *one* reference
  type (``HIEDEPTH``).
* **Stochastic traversal** — a random walk of ``STODEPTH`` steps where the
  next reference index N is chosen with ``p(N) = 1/2^N`` (approaching the
  Markov-chain access patterns of Tsangaris & Naughton).

Every transaction can run **reversed** ("ascending the graphs") by walking
``BackRef`` edges instead of ``ORef``; reverse hierarchy traversals filter
back references by the type of the originating slot.

Duplicate visits are counted by default (the paper's OO1 heritage: its
depth-7 traversal touches "3280 parts, with possible duplicates"); set
semantics are available through ``dedupe=True``.

Every object access funnels through the execution kernel
(:class:`~repro.core.session.Session`, historically named
``AccessContext`` — the old name remains an alias), which charges the
engine and notifies the clustering policy of each link crossing (DSTC's
observation input).  Set-oriented accesses expand level by level and
prefetch each BFS frontier through the kernel's batched read path, so
engines with native batching (SQLite) answer a whole frontier — forward
or reversed — with one round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Set, Tuple

from repro.core.session import Session
from repro.errors import WorkloadError
from repro.rand.lewis_payne import LewisPayne
from repro.store.serializer import StoredObject

__all__ = [
    "TransactionKind",
    "TransactionSpec",
    "TransactionResult",
    "AccessContext",
    "run_transaction",
]

#: The kernel superseded the transaction-local access context; the old
#: name stays importable for existing harnesses and tests.
AccessContext = Session


class TransactionKind(str, Enum):
    """The four OCB transaction classes."""

    SET = "set"
    SIMPLE = "simple"
    HIERARCHY = "hierarchy"
    STOCHASTIC = "stochastic"


@dataclass(frozen=True)
class TransactionSpec:
    """Everything needed to execute one transaction."""

    kind: TransactionKind
    root: int
    depth: int
    reverse: bool = False
    ref_type: Optional[int] = None  # Hierarchy traversals only.
    dedupe: bool = False
    max_visits: int = 5000


@dataclass(frozen=True)
class TransactionResult:
    """Logical outcome of one transaction (store I/O measured outside)."""

    kind: TransactionKind
    root: int
    visits: int
    distinct_objects: int
    max_depth_reached: int
    reverse: bool
    ref_type: Optional[int]
    truncated: bool


class _Tracker:
    """Visit accounting shared by the four traversal algorithms."""

    __slots__ = ("visits", "distinct", "max_depth", "truncated", "limit",
                 "dedupe")

    def __init__(self, limit: int, dedupe: bool) -> None:
        self.visits = 0
        self.distinct: Set[int] = set()
        self.max_depth = 0
        self.truncated = False
        self.limit = limit
        self.dedupe = dedupe

    def note(self, oid: int, depth: int) -> bool:
        """Record a visit; return False when the budget is exhausted."""
        if self.visits >= self.limit:
            self.truncated = True
            return False
        self.visits += 1
        self.distinct.add(oid)
        if depth > self.max_depth:
            self.max_depth = depth
        return True

    def should_expand(self, oid: int) -> bool:
        """With dedupe on, only first visits are expanded."""
        return True  # Expansion filtering handled by callers via `seen`.


def run_transaction(ctx: Session, spec: TransactionSpec,
                    rng: LewisPayne) -> TransactionResult:
    """Execute one transaction and return its logical result."""
    tracker = _Tracker(spec.max_visits, spec.dedupe)
    if spec.kind is TransactionKind.SET:
        _breadth_first(ctx, spec, tracker)
    elif spec.kind is TransactionKind.SIMPLE:
        _depth_first(ctx, spec, tracker, type_filter=None)
    elif spec.kind is TransactionKind.HIERARCHY:
        if spec.ref_type is None:
            raise WorkloadError("hierarchy traversal needs a ref_type")
        _depth_first(ctx, spec, tracker, type_filter=spec.ref_type)
    elif spec.kind is TransactionKind.STOCHASTIC:
        _stochastic(ctx, spec, tracker, rng)
    else:  # pragma: no cover - exhaustive enum
        raise WorkloadError(f"unknown transaction kind {spec.kind}")
    ctx.end_transaction()
    return TransactionResult(
        kind=spec.kind,
        root=spec.root,
        visits=tracker.visits,
        distinct_objects=len(tracker.distinct),
        max_depth_reached=tracker.max_depth,
        reverse=spec.reverse,
        ref_type=spec.ref_type,
        truncated=tracker.truncated)


# ---------------------------------------------------------------------- #
# Neighbour expansion (forward or reversed)
# ---------------------------------------------------------------------- #

def _neighbours(ctx: Session, record: StoredObject, reverse: bool,
                type_filter: Optional[int]) -> List[Tuple[int, int, bool]]:
    """(target oid, ref index, via_back_ref) edges leaving *record*."""
    edges: List[Tuple[int, int, bool]] = []
    if not reverse:
        for index, target in enumerate(record.refs):
            if target is None:
                continue
            if type_filter is not None and \
                    ctx.ref_type_of(record.cid, index) != type_filter:
                continue
            edges.append((target, index, False))
    else:
        for source_oid, index in record.back_refs:
            if type_filter is not None:
                source_cid = ctx.class_of(source_oid)
                if ctx.ref_type_of(source_cid, index) != type_filter:
                    continue
            edges.append((source_oid, index, True))
    return edges


# ---------------------------------------------------------------------- #
# Set-oriented access: breadth first on all references
# ---------------------------------------------------------------------- #

def _breadth_first(ctx: Session, spec: TransactionSpec,
                   tracker: _Tracker) -> None:
    """Level-order expansion with one batched fetch per frontier.

    Processing a level edge-by-edge in FIFO order is exactly what the
    classic deque formulation did, so visit counts, policy observations
    and (on cost-model engines) per-object charging are unchanged; the
    only difference is that each level's target set is announced to the
    kernel up front, which engines with native batching answer in a
    single round trip — forward and reversed traversals alike.
    """
    root_record = ctx.access(spec.root)
    if not tracker.note(spec.root, 0):
        return
    seen: Set[int] = {spec.root}
    frontier: List[Tuple[StoredObject, int]] = [(root_record, 0)]
    while frontier:
        edges: List[Tuple[StoredObject, int, int, int, bool]] = []
        for record, depth in frontier:
            if depth >= spec.depth:
                continue
            for target, index, via_back in _neighbours(
                    ctx, record, spec.reverse, None):
                edges.append((record, depth, target, index, via_back))
        if not edges:
            return
        ctx.prefetch(target for _, _, target, _, _ in edges
                     if not (spec.dedupe and target in seen))
        next_frontier: List[Tuple[StoredObject, int]] = []
        for record, depth, target, index, via_back in edges:
            if spec.dedupe and target in seen:
                continue
            child = ctx.access(target, source=record, ref_index=index,
                               via_back_ref=via_back)
            if not tracker.note(target, depth + 1):
                return
            seen.add(target)
            next_frontier.append((child, depth + 1))
        frontier = next_frontier


# ---------------------------------------------------------------------- #
# Simple & hierarchy traversals: depth first
# ---------------------------------------------------------------------- #

def _depth_first(ctx: Session, spec: TransactionSpec,
                 tracker: _Tracker, type_filter: Optional[int]) -> None:
    root_record = ctx.access(spec.root)
    if not tracker.note(spec.root, 0):
        return
    seen: Set[int] = {spec.root}

    def visit(record: StoredObject, depth: int) -> bool:
        if depth >= spec.depth:
            return True
        for target, index, via_back in _neighbours(ctx, record, spec.reverse,
                                                   type_filter):
            if spec.dedupe and target in seen:
                continue
            child = ctx.access(target, source=record, ref_index=index,
                               via_back_ref=via_back)
            if not tracker.note(target, depth + 1):
                return False
            seen.add(target)
            if not visit(child, depth + 1):
                return False
        return True

    visit(root_record, 0)


# ---------------------------------------------------------------------- #
# Stochastic traversal: p(N) = 1/2^N random walk
# ---------------------------------------------------------------------- #

_STOCHASTIC_RETRIES = 8


def _stochastic(ctx: Session, spec: TransactionSpec,
                tracker: _Tracker, rng: LewisPayne) -> None:
    record = ctx.access(spec.root)
    if not tracker.note(spec.root, 0):
        return
    for step in range(1, spec.depth + 1):
        edges = _neighbours(ctx, record, spec.reverse, None)
        if not edges:
            return
        chosen: Optional[Tuple[int, int, bool]] = None
        for _ in range(_STOCHASTIC_RETRIES):
            n = rng.geometric_half(len(edges))
            if n is not None:
                chosen = edges[n - 1]
                break
        if chosen is None:
            return  # Absorbing state: residual probability mass.
        target, index, via_back = chosen
        record = ctx.access(target, source=record, ref_index=index,
                            via_back_ref=via_back)
        if not tracker.note(target, step):
            return

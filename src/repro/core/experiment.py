"""The before/after clustering experiment — the protocol behind Tables 4-5.

DSTC-CluB "measures the number of transaction I/Os before, and after the
DSTC algorithm reorganizes the database"; OCB adopts the same protocol.
The experiment:

1. drops the caches, runs the workload (cold + warm) while the policy
   observes — the warm run's mean reads/transaction is the **before**
   figure;
2. asks the policy for a new placement and applies it, recording the
   **clustering I/O overhead** separately (the paper's third metric);
3. drops the caches again and re-runs the *same* workload (same seed, so
   the comparison is paired) — the warm run gives the **after** figure;
4. reports ``gain = before / after``, the paper's "Gain Factor".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.clustering.base import ClusteringPolicy, PlacementContext
from repro.core.database import OCBDatabase
from repro.core.metrics import PhaseReport
from repro.core.parameters import WorkloadParameters
from repro.core.workload import WorkloadReport, WorkloadRunner
from repro.errors import WorkloadError
from repro.store.storage import ObjectStore, ReorganizationStats

__all__ = ["ExperimentResult", "ClusteringExperiment"]


@dataclass
class ExperimentResult:
    """Outcome of one before/after clustering experiment."""

    label: str
    policy_name: str
    before: WorkloadReport
    after: Optional[WorkloadReport]
    reorganization: Optional[ReorganizationStats]

    @property
    def ios_before(self) -> float:
        """Mean page reads per warm transaction, before reclustering."""
        return self.before.warm_reads_per_transaction

    @property
    def ios_after(self) -> float:
        """Mean page reads per warm transaction, after reclustering."""
        if self.after is None:
            return self.ios_before
        return self.after.warm_reads_per_transaction

    @property
    def gain_factor(self) -> float:
        """The paper's Gain Factor: before / after (1.0 when no change)."""
        after = self.ios_after
        if after <= 0.0:
            return float("inf") if self.ios_before > 0 else 1.0
        return self.ios_before / after

    @property
    def clustering_overhead_ios(self) -> int:
        """Pages read + written while physically reorganizing."""
        return self.reorganization.total_ios if self.reorganization else 0

    def table_row(self) -> Tuple[str, float, float, float]:
        """(label, before, after, gain) — one row of Table 4/5."""
        return (self.label, self.ios_before, self.ios_after, self.gain_factor)

    def describe(self) -> str:
        """One-line summary matching the paper's table columns."""
        return (f"{self.label}: {self.ios_before:.1f} I/Os before, "
                f"{self.ios_after:.1f} after, gain {self.gain_factor:.2f}x "
                f"(overhead {self.clustering_overhead_ios} I/Os)")


class ClusteringExperiment:
    """Runs the before/after protocol for one (database, store, policy)."""

    def __init__(self, database: OCBDatabase, store: ObjectStore,
                 policy: ClusteringPolicy,
                 workload: WorkloadParameters,
                 label: str = "OCB",
                 io_mode: str = "touched") -> None:
        self.database = database
        self.store = store
        self.policy = policy
        self.workload = workload
        self.label = label
        self.io_mode = io_mode

    def run(self) -> ExperimentResult:
        """Execute both phases and the intervening reorganization."""
        # Phase 1 — observe and measure "before".
        self.store.drop_caches()
        self.store.reset_stats()
        runner = WorkloadRunner(self.database, self.store, self.workload,
                                policy=self.policy)
        before = runner.run()

        # Reorganization — the policy proposes, the store applies.
        context = PlacementContext(sizes=self.database.record_sizes(),
                                   page_size=self.store.page_size)
        placement = self.policy.propose_placement(self.store.current_order(),
                                                  context)
        reorganization: Optional[ReorganizationStats] = None
        after: Optional[WorkloadReport] = None
        if placement is not None:
            if sorted(placement.order) != sorted(self.store.current_order()):
                raise WorkloadError(
                    f"policy {self.policy.name} proposed an invalid placement")
            reorganization = self.store.reorganize(
                placement.order, io_mode=self.io_mode,
                aligned_groups=placement.aligned_groups)

            # Phase 2 — identical workload, clustered layout.
            self.store.drop_caches()
            self.store.reset_stats()
            rerunner = WorkloadRunner(self.database, self.store, self.workload,
                                      policy=self.policy)
            after = rerunner.run()

        return ExperimentResult(label=self.label,
                                policy_name=self.policy.name,
                                before=before,
                                after=after,
                                reorganization=reorganization)

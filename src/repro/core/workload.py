"""The OCB execution protocol (Section 3.3).

Each client executes:

1. a **cold run** of ``COLDN`` transactions whose kinds are drawn from the
   PSET/PSIMPLE/PHIER/PSTOCH probabilities — its purpose is to fill the
   cache so the *stationary* behaviour is observed;
2. a **warm run** of ``HOTN`` transactions, whose metrics are the ones a
   benchmark report quotes.

A latency ``THINK`` can be inserted between transactions (charged on the
simulated clock).  Root objects come from DIST5/RAND5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.backends.base import Backend
from repro.clustering.base import ClusteringPolicy, NoClustering, PlacementContext
from repro.core.database import OCBDatabase
from repro.core.metrics import MetricsCollector, PhaseReport
from repro.core.parameters import WorkloadParameters
from repro.core.session import Session
from repro.core.transactions import (
    TransactionKind,
    TransactionSpec,
    run_transaction,
)
from repro.errors import WorkloadError
from repro.rand.lewis_payne import LewisPayne
from repro.store.storage import ObjectStore

__all__ = ["WorkloadReport", "WorkloadRunner"]

_STREAM_WORKLOAD = 0x0CB0_0001


@dataclass
class WorkloadReport:
    """Cold + warm phase metrics of one workload execution."""

    cold: PhaseReport
    warm: PhaseReport

    @property
    def warm_reads_per_transaction(self) -> float:
        """The paper's headline metric: mean page reads per transaction."""
        return self.warm.totals.reads_per_transaction

    @property
    def warm_ios_per_transaction(self) -> float:
        """Mean total I/Os per warm transaction."""
        return self.warm.totals.ios_per_transaction


class WorkloadRunner:
    """Executes the OCB protocol for a single client.

    ``store`` is the classic :class:`ObjectStore` (the simulated engine,
    driven directly), any :class:`~repro.backends.base.Backend`, a
    registered backend **name** (the engine is created and bulk-loaded
    with the database), or a ready :class:`~repro.core.session.Session`
    — the runner only talks to the kernel, so the same workload, RNG
    streams and transaction mix execute unchanged against every engine.
    """

    def __init__(self, database: OCBDatabase,
                 store: Union[ObjectStore, Backend, Session, str],
                 parameters: WorkloadParameters,
                 policy: Optional[ClusteringPolicy] = None,
                 rng: Optional[LewisPayne] = None,
                 client_id: int = 0,
                 batch: Optional[bool] = None) -> None:
        self.database = database
        self.parameters = parameters
        self.policy = policy or NoClustering()
        if isinstance(store, Session):
            if policy is not None and policy is not store.policy:
                raise WorkloadError(
                    "conflicting clustering policies: the Session already "
                    "owns one; pass the policy when constructing the "
                    "Session, not the runner")
            self.session = store
            self.policy = self.session.policy
        elif store is None or isinstance(store, str):
            # A registered backend name: create, bulk-load, run.
            self.session = Session.for_database(
                database, store, policy=self.policy, batch=batch)
        else:
            self.session = Session(store, policy=self.policy,
                                   tref_table=database.tref_table(),
                                   catalog=database.catalog(), batch=batch)
        self.store = self.session.store
        self.session.require_loaded()
        if not isinstance(self.policy, NoClustering) and \
                not getattr(self.store, "supports_clustering", True):
            raise WorkloadError(
                f"backend {self.session.backend_name!r} "
                f"does not support physical clustering; use the simulated "
                f"backend for clustering experiments")
        self.client_id = client_id
        seed = parameters.seed if parameters.seed is not None \
            else database.parameters.seed
        base_rng = rng or LewisPayne(seed)
        self._rng = base_rng.spawn(_STREAM_WORKLOAD + client_id)
        #: Backward-compatible alias: the kernel superseded the
        #: per-runner ``AccessContext``.
        self.context = self.session

    # ------------------------------------------------------------------ #
    # Drawing transactions
    # ------------------------------------------------------------------ #

    def draw_spec(self) -> TransactionSpec:
        """Draw kind, root, direction and depth for the next transaction."""
        p = self.parameters
        u = self._rng.random()
        if u < p.p_set:
            kind, depth = TransactionKind.SET, p.set_depth
        elif u < p.p_set + p.p_simple:
            kind, depth = TransactionKind.SIMPLE, p.simple_depth
        elif u < p.p_set + p.p_simple + p.p_hierarchy:
            kind, depth = TransactionKind.HIERARCHY, p.hierarchy_depth
        else:
            kind, depth = TransactionKind.STOCHASTIC, p.stochastic_depth

        root = p.dist5.draw(self._rng, 1, self.database.num_objects)
        reverse = (p.reverse_probability > 0.0
                   and self._rng.random() < p.reverse_probability)
        ref_type = None
        if kind is TransactionKind.HIERARCHY:
            ref_type = p.hierarchy_ref_type if p.hierarchy_ref_type is not None \
                else self._rng.randint(
                    1, self.database.parameters.num_ref_types)
        return TransactionSpec(kind=kind, root=root, depth=depth,
                               reverse=reverse, ref_type=ref_type,
                               dedupe=p.dedupe_visits,
                               max_visits=p.max_visits)

    # ------------------------------------------------------------------ #
    # Phases
    # ------------------------------------------------------------------ #

    def step(self, collector: MetricsCollector) -> None:
        """Execute exactly one transaction (multi-client interleaving)."""
        spec = self.draw_spec()
        with self.session.measure() as span:
            result = run_transaction(self.session, spec, self._rng)
        collector.record(result, span.delta, span.wall)
        self.session.charge_think_time(self.parameters.think_time)
        self._maybe_auto_reorganize()

    def run_phase(self, name: str, transactions: int) -> PhaseReport:
        """Run *transactions* transactions, collecting per-kind metrics."""
        collector = MetricsCollector(name)
        for _ in range(transactions):
            self.step(collector)
        return collector.report

    def run(self) -> WorkloadReport:
        """Execute the full protocol: cold run, then warm run."""
        cold = self.run_phase("cold", self.parameters.cold_n)
        warm = self.run_phase("warm", self.parameters.hot_n)
        return WorkloadReport(cold=cold, warm=warm)

    # ------------------------------------------------------------------ #
    # Auto reorganization (policies with a trigger period)
    # ------------------------------------------------------------------ #

    def _maybe_auto_reorganize(self) -> None:
        if not self.policy.wants_reorganization():
            return
        context = PlacementContext(sizes=self.database.record_sizes(),
                                   page_size=self.store.page_size)
        placement = self.policy.propose_placement(self.session.current_order(),
                                                  context)
        if placement is not None:
            self.store.reorganize(placement.order,
                                  aligned_groups=placement.aligned_groups)

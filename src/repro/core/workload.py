"""The OCB execution protocol (Section 3.3).

Each client executes:

1. a **cold run** of ``COLDN`` transactions whose kinds are drawn from the
   PSET/PSIMPLE/PHIER/PSTOCH probabilities — its purpose is to fill the
   cache so the *stationary* behaviour is observed;
2. a **warm run** of ``HOTN`` transactions, whose metrics are the ones a
   benchmark report quotes.

A latency ``THINK`` can be inserted between transactions (charged on the
simulated clock).  Root objects come from DIST5/RAND5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.backends.base import Backend
from repro.clustering.base import ClusteringPolicy, NoClustering, PlacementContext
from repro.core.database import OCBDatabase
from repro.core.metrics import MetricsCollector, PhaseReport
from repro.core.parameters import WorkloadParameters
from repro.core.transactions import (
    AccessContext,
    TransactionKind,
    TransactionSpec,
    run_transaction,
)
from repro.errors import WorkloadError
from repro.rand.lewis_payne import LewisPayne
from repro.store.storage import ObjectStore

__all__ = ["WorkloadReport", "WorkloadRunner"]

_STREAM_WORKLOAD = 0x0CB0_0001


@dataclass
class WorkloadReport:
    """Cold + warm phase metrics of one workload execution."""

    cold: PhaseReport
    warm: PhaseReport

    @property
    def warm_reads_per_transaction(self) -> float:
        """The paper's headline metric: mean page reads per transaction."""
        return self.warm.totals.reads_per_transaction

    @property
    def warm_ios_per_transaction(self) -> float:
        """Mean total I/Os per warm transaction."""
        return self.warm.totals.ios_per_transaction


class WorkloadRunner:
    """Executes the OCB protocol for a single client.

    ``store`` is either the classic :class:`ObjectStore` (the simulated
    engine, driven directly) or any :class:`~repro.backends.base.Backend`
    — the runner only uses the surface the two share, so the same
    workload, RNG streams and transaction mix execute unchanged against
    every engine.
    """

    def __init__(self, database: OCBDatabase,
                 store: Union[ObjectStore, Backend],
                 parameters: WorkloadParameters,
                 policy: Optional[ClusteringPolicy] = None,
                 rng: Optional[LewisPayne] = None,
                 client_id: int = 0) -> None:
        if store.object_count == 0:
            raise WorkloadError("the store is empty; bulk-load the database "
                                "before running a workload")
        if not isinstance(policy or NoClustering(), NoClustering) and \
                not getattr(store, "supports_clustering", True):
            raise WorkloadError(
                f"backend {getattr(store, 'name', type(store).__name__)!r} "
                f"does not support physical clustering; use the simulated "
                f"backend for clustering experiments")
        self.database = database
        self.store = store
        self.parameters = parameters
        self.policy = policy or NoClustering()
        self.client_id = client_id
        seed = parameters.seed if parameters.seed is not None \
            else database.parameters.seed
        base_rng = rng or LewisPayne(seed)
        self._rng = base_rng.spawn(_STREAM_WORKLOAD + client_id)
        self.context = AccessContext(
            store=store,
            policy=self.policy,
            tref_table=database.tref_table(),
            catalog=database.catalog())

    # ------------------------------------------------------------------ #
    # Drawing transactions
    # ------------------------------------------------------------------ #

    def draw_spec(self) -> TransactionSpec:
        """Draw kind, root, direction and depth for the next transaction."""
        p = self.parameters
        u = self._rng.random()
        if u < p.p_set:
            kind, depth = TransactionKind.SET, p.set_depth
        elif u < p.p_set + p.p_simple:
            kind, depth = TransactionKind.SIMPLE, p.simple_depth
        elif u < p.p_set + p.p_simple + p.p_hierarchy:
            kind, depth = TransactionKind.HIERARCHY, p.hierarchy_depth
        else:
            kind, depth = TransactionKind.STOCHASTIC, p.stochastic_depth

        root = p.dist5.draw(self._rng, 1, self.database.num_objects)
        reverse = (p.reverse_probability > 0.0
                   and self._rng.random() < p.reverse_probability)
        ref_type = None
        if kind is TransactionKind.HIERARCHY:
            ref_type = p.hierarchy_ref_type if p.hierarchy_ref_type is not None \
                else self._rng.randint(
                    1, self.database.parameters.num_ref_types)
        return TransactionSpec(kind=kind, root=root, depth=depth,
                               reverse=reverse, ref_type=ref_type,
                               dedupe=p.dedupe_visits,
                               max_visits=p.max_visits)

    # ------------------------------------------------------------------ #
    # Phases
    # ------------------------------------------------------------------ #

    def step(self, collector: MetricsCollector) -> None:
        """Execute exactly one transaction (multi-client interleaving)."""
        spec = self.draw_spec()
        before = self.store.snapshot()
        wall_start = time.perf_counter()
        result = run_transaction(self.context, spec, self._rng)
        wall = time.perf_counter() - wall_start
        delta = self.store.snapshot() - before
        collector.record(result, delta, wall)
        think = self.parameters.think_time
        if think > 0.0:
            self.store.clock.advance(
                think * self.store.cost_model.think_scale)
        self._maybe_auto_reorganize()

    def run_phase(self, name: str, transactions: int) -> PhaseReport:
        """Run *transactions* transactions, collecting per-kind metrics."""
        collector = MetricsCollector(name)
        for _ in range(transactions):
            self.step(collector)
        return collector.report

    def run(self) -> WorkloadReport:
        """Execute the full protocol: cold run, then warm run."""
        cold = self.run_phase("cold", self.parameters.cold_n)
        warm = self.run_phase("warm", self.parameters.hot_n)
        return WorkloadReport(cold=cold, warm=warm)

    # ------------------------------------------------------------------ #
    # Auto reorganization (policies with a trigger period)
    # ------------------------------------------------------------------ #

    def _maybe_auto_reorganize(self) -> None:
        if not self.policy.wants_reorganization():
            return
        context = PlacementContext(sizes=self.database.record_sizes(),
                                   page_size=self.store.page_size)
        placement = self.policy.propose_placement(self.store.current_order(),
                                                  context)
        if placement is not None:
            self.store.reorganize(placement.order,
                                  aligned_groups=placement.aligned_groups)

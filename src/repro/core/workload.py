"""The OCB execution protocol (Section 3.3) — now a scenario-layer shim.

Each client executes:

1. a **cold run** of ``COLDN`` transactions whose kinds are drawn from the
   PSET/PSIMPLE/PHIER/PSTOCH probabilities — its purpose is to fill the
   cache so the *stationary* behaviour is observed;
2. a **warm run** of ``HOTN`` transactions, whose metrics are the ones a
   benchmark report quotes.

A latency ``THINK`` can be inserted between transactions (charged on the
simulated clock).  Root objects come from DIST5/RAND5.

:class:`WorkloadRunner` is a thin shim over the declarative scenario
layer (:mod:`repro.core.scenario`): the Table 2 probabilities become a
transaction-only :class:`~repro.core.scenario.WorkloadMix` and a
:class:`~repro.core.scenario.ClientExecutor` drives it.  The entry draw,
the RNG substream and the per-transaction execution are exact ports of
the pre-refactor code, so reports are byte-identical on the same seed
(pinned by ``tests/core/test_shim_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.backends.base import Backend
from repro.clustering.base import ClusteringPolicy, NoClustering
from repro.core.database import OCBDatabase
from repro.core.metrics import MetricsCollector, PhaseReport
from repro.core.parameters import WorkloadParameters
from repro.core.scenario import (
    STREAM_WORKLOAD,
    ClientExecutor,
    ScenarioCollector,
    WorkloadMix,
)
from repro.core.session import Session
from repro.core.transactions import TransactionSpec
from repro.errors import WorkloadError
from repro.rand.lewis_payne import LewisPayne
from repro.store.storage import ObjectStore

__all__ = ["WorkloadReport", "WorkloadRunner"]

#: Backward-compatible alias: the substream key now lives in the
#: scenario layer.
_STREAM_WORKLOAD = STREAM_WORKLOAD


@dataclass
class WorkloadReport:
    """Cold + warm phase metrics of one workload execution."""

    cold: PhaseReport
    warm: PhaseReport

    @property
    def warm_reads_per_transaction(self) -> float:
        """The paper's headline metric: mean page reads per transaction."""
        return self.warm.totals.reads_per_transaction

    @property
    def warm_ios_per_transaction(self) -> float:
        """Mean total I/Os per warm transaction."""
        return self.warm.totals.ios_per_transaction


class WorkloadRunner:
    """Executes the OCB protocol for a single client.

    ``store`` is the classic :class:`ObjectStore` (the simulated engine,
    driven directly), any :class:`~repro.backends.base.Backend`, a
    registered backend **name** (the engine is created and bulk-loaded
    with the database), or a ready :class:`~repro.core.session.Session`
    — the runner only talks to the kernel, so the same workload, RNG
    streams and transaction mix execute unchanged against every engine.
    """

    def __init__(self, database: OCBDatabase,
                 store: Union[ObjectStore, Backend, Session, str],
                 parameters: WorkloadParameters,
                 policy: Optional[ClusteringPolicy] = None,
                 rng: Optional[LewisPayne] = None,
                 client_id: int = 0,
                 batch: Optional[bool] = None) -> None:
        self.database = database
        self.parameters = parameters
        self.policy = policy or NoClustering()
        if isinstance(store, Session):
            if policy is not None and policy is not store.policy:
                raise WorkloadError(
                    "conflicting clustering policies: the Session already "
                    "owns one; pass the policy when constructing the "
                    "Session, not the runner")
            self.session = store
            self.policy = self.session.policy
        elif store is None or isinstance(store, str):
            # A registered backend name: create, bulk-load, run.
            self.session = Session.for_database(
                database, store, policy=self.policy, batch=batch)
        else:
            self.session = Session(store, policy=self.policy,
                                   tref_table=database.tref_table(),
                                   catalog=database.catalog(), batch=batch)
        self.store = self.session.store
        self.session.require_loaded()
        if not isinstance(self.policy, NoClustering) and \
                not getattr(self.store, "supports_clustering", True):
            raise WorkloadError(
                f"backend {self.session.backend_name!r} "
                f"does not support physical clustering; use the simulated "
                f"backend for clustering experiments")
        self.client_id = client_id
        seed = parameters.seed if parameters.seed is not None \
            else database.parameters.seed
        base_rng = rng or LewisPayne(seed)
        self.mix = WorkloadMix.from_workload_parameters(parameters)
        self._executor = ClientExecutor(
            database, self.mix, self.session, client_id=client_id,
            rng=base_rng.spawn(STREAM_WORKLOAD + client_id))
        self._rng = self._executor.rng
        #: Backward-compatible alias: the kernel superseded the
        #: per-runner ``AccessContext``.
        self.context = self.session

    # ------------------------------------------------------------------ #
    # Drawing transactions
    # ------------------------------------------------------------------ #

    def draw_spec(self) -> TransactionSpec:
        """Draw kind, root, direction and depth for the next transaction."""
        entry = self._executor.draw_entry()
        return self._executor.draw_transaction_spec(entry)

    # ------------------------------------------------------------------ #
    # Phases
    # ------------------------------------------------------------------ #

    def step(self, collector: MetricsCollector) -> None:
        """Execute exactly one transaction (multi-client interleaving)."""
        executor = self._executor
        entry = executor.draw_entry()
        result, delta, wall = executor.run_transaction_entry(entry)
        collector.record(result, delta, wall)
        self.session.charge_think_time(self.parameters.think_time)
        executor._maybe_auto_reorganize()

    def run_phase(self, name: str, transactions: int) -> PhaseReport:
        """Run *transactions* transactions, collecting per-kind metrics."""
        collector = ScenarioCollector(name)
        for _ in range(transactions):
            self._executor.step(collector)
        return collector.classic.report

    def run(self) -> WorkloadReport:
        """Execute the full protocol: cold run, then warm run."""
        cold = self.run_phase("cold", self.parameters.cold_n)
        warm = self.run_phase("warm", self.parameters.hot_n)
        return WorkloadReport(cold=cold, warm=warm)

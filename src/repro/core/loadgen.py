"""Open-loop load generation: offered arrival rates against a Scenario.

Every other runner in this repo is *closed-loop* — a client issues its
next operation only after the previous one returns, so the system under
test sets its own pace and queueing delay is structurally invisible
(the coordinated-omission trap).  This module is the *open-loop*
driver: a seeded arrival schedule (Poisson or fixed-rate) decides when
each operation *should* start, the driver issues it as close to that
instant as it can, and :class:`repro.obs.latency.LatencyCollector`
records the operation against its **intended** arrival time.  When the
engine stalls, the arrivals keep coming — the backlog drains late and
every delayed operation's *response* time (intended → completion)
honestly includes the wait, while its *service* time (start →
completion) stays an engine-only number.

The driver is deliberately single-threaded: operations execute
sequentially in arrival order, so the harness itself is a single-server
FIFO queue.  That is exactly the model
:func:`repro.multiuser.des.simulate_open_arrivals` simulates, which is
what makes the predicted-vs-measured wait comparison in
:func:`run_load_sweep` an apples-to-apples validation of the DES layer
rather than a hand-wave.

Arrival schedules draw from a dedicated Lewis–Payne substream
(:data:`STREAM_ARRIVALS`), independent of the workload streams, so the
same seed replays the same arrival process at every offered rate.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.database import OCBDatabase
from repro.core.scenario import (
    ClientScenarioReport,
    Scenario,
    ScenarioCollector,
    ScenarioReport,
    ScenarioRunner,
)
from repro.errors import ParameterError
from repro.obs import trace
from repro.obs.latency import DEFAULT_LATE_GRACE, LatencyCollector
from repro.rand.lewis_payne import DEFAULT_SEED, LewisPayne

__all__ = ["ARRIVAL_MODES", "STREAM_ARRIVALS", "STREAM_SERVICE",
           "ArrivalSchedule", "merged_arrivals", "pace",
           "OpenLoopReport", "OpenLoopRunner",
           "find_knee", "annotate_knee", "run_load_sweep"]

#: Supported arrival processes.
ARRIVAL_MODES = ("poisson", "fixed")

#: Lewis–Payne substream keys: arrival schedules (one per client lane,
#: offset by client id) and the DES service-time sampler.
STREAM_ARRIVALS = 0x0CB0_0A21
STREAM_SERVICE = 0x0CB0_0A22


@dataclass(frozen=True)
class ArrivalSchedule:
    """A seeded schedule of intended operation start offsets.

    ``poisson`` draws exponential inter-arrival gaps at ``rate`` per
    second (a memoryless open-traffic model); ``fixed`` spaces arrivals
    exactly ``1/rate`` apart.  ``stream`` offsets the RNG substream so
    per-client lanes are independent but jointly reproducible.
    """

    rate: float
    operations: int
    mode: str = "poisson"
    seed: int = DEFAULT_SEED
    stream: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ParameterError(f"rate must be > 0, got {self.rate}")
        if self.operations < 0:
            raise ParameterError(
                f"operations must be >= 0, got {self.operations}")
        if self.mode not in ARRIVAL_MODES:
            raise ParameterError(
                f"unknown arrival mode {self.mode!r}; "
                f"expected one of {ARRIVAL_MODES}")

    def offsets(self) -> List[float]:
        """Intended start offsets (seconds from epoch), ascending."""
        if self.mode == "fixed":
            return [(i + 1) / self.rate for i in range(self.operations)]
        rng = LewisPayne(self.seed).spawn(STREAM_ARRIVALS + self.stream)
        now = 0.0
        schedule = []
        for _ in range(self.operations):
            now += rng.expovariate(self.rate)
            schedule.append(now)
        return schedule


def merged_arrivals(rate: float, operations: int, clients: int,
                    mode: str = "poisson",
                    seed: int = DEFAULT_SEED) -> List[Tuple[float, int]]:
    """Merge per-client arrival lanes into one ``(offset, client)`` list.

    The offered ``rate`` splits evenly across ``clients`` (each lane an
    independent substream), mirroring how the process-parallel runner
    shares a target rate among workers; the merged list is sorted by
    intended start time, ties broken by client id.
    """
    if clients < 1:
        raise ParameterError(f"clients must be >= 1, got {clients}")
    merged: List[Tuple[float, int]] = []
    share = rate / clients
    base, remainder = divmod(operations, clients)
    for client in range(clients):
        count = base + (1 if client < remainder else 0)
        schedule = ArrivalSchedule(rate=share, operations=count, mode=mode,
                                   seed=seed, stream=client)
        merged.extend((offset, client) for offset in schedule.offsets())
    merged.sort()
    return merged


def pace(offsets: Sequence[float], execute: Callable[[int], None],
         latency: LatencyCollector, *,
         observe: Optional[Callable[[int, bool, int], None]] = None,
         clock: Callable[[], float] = time.perf_counter,
         sleep: Callable[[float], None] = time.sleep) -> float:
    """Drive *execute* through an intended-arrival schedule.

    For each ascending offset: sleep until the intended instant (never
    skip ahead), count how many arrivals are already due (the backlog a
    stalled engine accumulates), run the operation, and record it
    against its *intended* time in *latency*.  ``observe(index, late,
    backlog)`` lets callers attribute lateness per client.  Returns the
    wall-clock seconds the paced phase took.
    """
    epoch = clock()
    total = len(offsets)
    due = 0
    for index, offset in enumerate(offsets):
        intended = epoch + offset
        now = clock()
        slept = 0.0
        if now < intended:
            slept = intended - now
            sleep(slept)
            now = clock()
        while due < total and offsets[due] <= now - epoch:
            due += 1
        backlog = max(1, due - index)
        latency.note_backlog(backlog)
        started = clock()
        execute(index)
        completed = clock()
        late = latency.record(intended, started, completed)
        if trace.enabled:
            trace.emit("loadgen.arrival", slept, op=index, late=late,
                       backlog=backlog)
            if late:
                trace.emit("loadgen.late_start", started - intended,
                           op=index, backlog=backlog)
        if observe is not None:
            observe(index, late, backlog)
    return clock() - epoch


@dataclass
class OpenLoopReport:
    """One offered rate's measurement: scenario report + latency split."""

    scenario: ScenarioReport
    latency: LatencyCollector
    offered_rate: float
    arrival_mode: str
    #: Paced (warm) arrivals executed and the wall-clock seconds the
    #: paced phase took — the pair that defines achieved throughput.
    operations: int = 0
    elapsed_seconds: float = 0.0

    @property
    def achieved_throughput(self) -> float:
        """Completed paced operations per second of wall-clock."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.operations / self.elapsed_seconds

    def cell(self) -> Dict[str, object]:
        """One flat ``load_sweep`` document cell for this rate."""
        report = self.scenario
        service_p95_ms = self.latency.service.percentile(95.0) * 1e3
        cell: Dict[str, object] = {
            "key": (f"{report.backend_name}/{report.scenario_name}"
                    f"/r{self.offered_rate:g}"),
            "backend": report.backend_name,
            "scenario": report.scenario_name,
            "clients": report.client_count,
            "offered_rate": self.offered_rate,
            "arrival_mode": self.arrival_mode,
            "operations": self.operations,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput": self.achieved_throughput,
            # The cross-document regression gate compares wall_p95_ms;
            # service time is the engine-only number that should stay
            # stable run-over-run (response blows up near the knee by
            # design, so it must not be the gated field).
            "wall_p95_ms": service_p95_ms,
            "write_operations": report.write_operations,
            "busy_retries": report.busy_retries,
        }
        cell.update(self.latency.cell_fields())
        return cell


class OpenLoopRunner:
    """Runs one Scenario under an offered arrival rate, in-process.

    Composition over the closed-loop :class:`ScenarioRunner`: engine
    resolution, executor construction (per-client partitioning, seeded
    substreams) and engine-stats attribution are reused unchanged; only
    the warm phase's pacing differs.  The cold phase stays closed-loop —
    it is cache priming, not measurement.  An injected ``store`` (e.g. a
    deterministic stalling backend in tests) flows straight through to
    :meth:`ScenarioRunner._resolve_engine`.
    """

    def __init__(self, database: OCBDatabase, scenario: Scenario,
                 rate: float, *, operations: Optional[int] = None,
                 mode: str = "poisson", seed: Optional[int] = None,
                 store: Optional[object] = None,
                 policy: Optional[object] = None,
                 late_grace: float = DEFAULT_LATE_GRACE,
                 clock: Callable[[], float] = time.perf_counter,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if rate <= 0.0:
            raise ParameterError(f"rate must be > 0, got {rate}")
        if mode not in ARRIVAL_MODES:
            raise ParameterError(
                f"unknown arrival mode {mode!r}; "
                f"expected one of {ARRIVAL_MODES}")
        self.scenario = scenario
        self.rate = rate
        self.mode = mode
        self.operations = (operations if operations is not None
                           else scenario.warm_ops)
        self.seed = seed if seed is not None else \
            (scenario.seed if scenario.seed is not None else DEFAULT_SEED)
        self.late_grace = late_grace
        self._clock = clock
        self._sleep = sleep
        self._runner = ScenarioRunner(database, scenario, store=store,
                                      policy=policy)

    def arrivals(self) -> List[Tuple[float, int]]:
        """The merged ``(offset, client)`` schedule this run executes."""
        return merged_arrivals(self.rate, self.operations,
                               self.scenario.clients, self.mode, self.seed)

    def run(self) -> OpenLoopReport:
        """Cold-prime closed-loop, then pace the warm arrivals."""
        scenario = self.scenario
        engine = self._runner._resolve_engine()
        executors = self._runner.build_executors(engine)
        cold = [ScenarioCollector("cold") for _ in executors]
        warm = [ScenarioCollector("warm") for _ in executors]
        started = self._clock()
        if trace.enabled:
            with trace.span("scenario.phase", phase="cold",
                            scenario=scenario.mix.name):
                for _ in range(scenario.cold_ops):
                    for executor, collector in zip(executors, cold):
                        executor.step(collector)
        else:
            for _ in range(scenario.cold_ops):
                for executor, collector in zip(executors, cold):
                    executor.step(collector)
        arrivals = self.arrivals()
        offsets = [offset for offset, _ in arrivals]
        latency = LatencyCollector(late_grace=self.late_grace)
        late_by_client = [0] * len(executors)
        backlog_by_client = [0] * len(executors)

        def execute(index: int) -> None:
            client = arrivals[index][1]
            executors[client].step(warm[client])

        def observe(index: int, late: bool, backlog: int) -> None:
            client = arrivals[index][1]
            if late:
                late_by_client[client] += 1
            if backlog > backlog_by_client[client]:
                backlog_by_client[client] = backlog

        paced = pace(offsets, execute, latency, observe=observe,
                     clock=self._clock, sleep=self._sleep)
        elapsed = self._clock() - started
        clients = [
            ClientScenarioReport(
                client_id=executor.client_id,
                cold=cold_collector.phase,
                warm=warm_collector.phase,
                read_misses=executor.read_misses,
                write_conflicts=executor.write_conflicts,
                late_starts=late_by_client[executor.client_id],
                max_backlog=backlog_by_client[executor.client_id])
            for executor, cold_collector, warm_collector
            in zip(executors, cold, warm)]
        backend_name = getattr(engine, "name", type(engine).__name__)
        stats = engine.stats() if hasattr(engine, "stats") else {}
        if clients and stats.get("busy_retries"):
            clients[0].busy_retries += int(stats["busy_retries"])
            clients[0].busy_wait_seconds += float(
                stats.get("busy_wait_seconds", 0.0) or 0.0)
        if clients and stats.get("remote_reads"):
            clients[0].remote_reads += int(stats["remote_reads"])
        report = ScenarioReport(
            scenario_name=scenario.mix.name,
            clients=clients,
            backend_name=backend_name,
            mode="open-loop",
            elapsed_seconds=elapsed,
            executed_parallel=False,
            sql_round_trips=int(stats.get("sql_round_trips", 0) or 0),
            offered_rate=self.rate,
            arrival_mode=self.mode)
        return OpenLoopReport(
            scenario=report,
            latency=latency,
            offered_rate=self.rate,
            arrival_mode=self.mode,
            operations=len(arrivals),
            elapsed_seconds=paced)


# ---------------------------------------------------------------------- #
# Saturation-knee detection and the rate sweep
# ---------------------------------------------------------------------- #

def find_knee(cells: Sequence[Dict[str, object]],
              divergence: float = 0.10,
              blowup: float = 3.0) -> Optional[float]:
    """The lowest offered rate at which the system saturates, or None.

    A rate saturates when *either* signal fires: achieved throughput
    falls more than ``divergence`` below the offered rate (the engine
    cannot drain the arrivals), or response-time P95 exceeds ``blowup``
    times the lowest-rate baseline (the queue is growing even though
    throughput still keeps up).
    """
    ordered = sorted(cells, key=lambda cell: cell["offered_rate"])
    if not ordered:
        return None
    baseline = float(ordered[0].get("response_p95_ms", 0.0) or 0.0)
    for cell in ordered:
        offered = float(cell["offered_rate"])
        achieved = float(cell.get("throughput", 0.0) or 0.0)
        response_p95 = float(cell.get("response_p95_ms", 0.0) or 0.0)
        diverged = achieved < offered * (1.0 - divergence)
        blown = baseline > 0.0 and response_p95 > blowup * baseline
        if diverged or blown:
            return offered
    return None


def annotate_knee(cells: Sequence[Dict[str, object]],
                  knee: Optional[float]) -> None:
    """Mark each cell with its saturation verdict in place."""
    for cell in cells:
        offered = float(cell["offered_rate"])
        cell["saturated"] = knee is not None and offered >= knee
        cell["knee"] = knee is not None and offered == knee


def run_load_sweep(database: OCBDatabase, scenario: Scenario,
                   rates: Sequence[float], *,
                   operations: Optional[int] = None,
                   mode: str = "poisson", seed: Optional[int] = None,
                   divergence: float = 0.10, blowup: float = 3.0,
                   predict: bool = True,
                   late_grace: float = DEFAULT_LATE_GRACE,
                   store_factory: Optional[Callable[[], object]] = None,
                   progress: Optional[Callable[[str], None]] = None
                   ) -> Dict[str, object]:
    """Sweep offered rates, detect the knee, predict waits with the DES.

    Each rate runs against a pristine deepcopy of *database* (mutating
    mixes must not let one rate's inserts warp the next rate's graph —
    the same discipline the bench matrix uses).  When ``predict`` is
    set, every measured rate is replayed through
    :func:`repro.multiuser.des.simulate_open_arrivals` — identical
    arrival schedule, service times inverse-sampled from the *measured*
    service histogram — and the predicted mean/P95 wait lands next to
    the measured one in each cell.  Returns ``{"cells": [...], "knee":
    rate-or-None, ...}`` ready for ``results.build_document``.
    """
    if not rates:
        raise ParameterError("at least one offered rate is required")
    unique = sorted(set(float(rate) for rate in rates))
    if len(unique) != len(rates):
        raise ParameterError(f"offered rates must be unique, got {rates}")
    resolved_seed = seed if seed is not None else \
        (scenario.seed if scenario.seed is not None else DEFAULT_SEED)
    cells: List[Dict[str, object]] = []
    for index, rate in enumerate(unique):
        if progress is not None:
            progress(f"rate {rate:g} op/s "
                     f"({index + 1}/{len(unique)}) ...")
        pristine = copy.deepcopy(database)
        store = store_factory() if store_factory is not None else None
        runner = OpenLoopRunner(pristine, scenario, rate,
                                operations=operations, mode=mode,
                                seed=resolved_seed, store=store,
                                late_grace=late_grace)
        measured = runner.run()
        cell = measured.cell()
        if predict:
            cell.update(_predict_cell(runner, measured))
        cells.append(cell)
    knee = find_knee(cells, divergence=divergence, blowup=blowup)
    annotate_knee(cells, knee)
    return {
        "cells": cells,
        "knee": knee,
        "divergence": divergence,
        "blowup": blowup,
        "arrival_mode": mode,
        "seed": resolved_seed,
    }


def _predict_cell(runner: OpenLoopRunner,
                  measured: OpenLoopReport) -> Dict[str, float]:
    """DES-predicted wait fields for one measured rate."""
    from repro.multiuser.des import simulate_open_arrivals

    offsets = [offset for offset, _ in runner.arrivals()]
    service = measured.latency.service
    if not offsets or not service.count:
        return {}
    rng = LewisPayne(runner.seed).spawn(STREAM_SERVICE)
    services = [service.sample_inverse(rng.random53()) for _ in offsets]
    prediction = simulate_open_arrivals(offsets, services)
    return {
        "predicted_wait_mean_ms": prediction.mean_wait * 1e3,
        "predicted_wait_p95_ms": prediction.p95_wait * 1e3,
        "predicted_response_mean_ms": prediction.mean_response * 1e3,
        "predicted_throughput": prediction.throughput,
        "predicted_utilization": prediction.utilization,
    }

"""OCB metrics (Section 3.3 of the paper).

The paper measures, globally *and per transaction type*:

* database response time (we report both simulated and wall-clock),
* the number of accessed objects,
* the number of I/Os performed, split into **transaction I/Os** and
  **clustering I/O overhead**.

:class:`MetricsCollector` accumulates per-kind aggregates from
``(TransactionResult, StoreSnapshot delta, wall seconds)`` triples;
:class:`PhaseReport` is the publishable summary of one protocol phase
(cold or warm run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.transactions import TransactionKind, TransactionResult
from repro.stats import percentile
from repro.store.storage import StoreSnapshot

__all__ = ["KindStats", "LatencyPercentiles", "PhaseReport",
           "MetricsCollector"]


@dataclass(frozen=True)
class LatencyPercentiles:
    """Wall-clock latency summary of a sample set (seconds)."""

    count: int
    p50: float
    p95: float
    p99: float
    p999: float = 0.0

    @classmethod
    def from_samples(cls, samples: "List[float]") -> "LatencyPercentiles":
        """Percentiles of *samples*; all-zero when no samples exist.

        *samples* may be a plain sequence or any object exposing
        ``__len__`` and ``percentile(q)`` (``stats.BoundedSample``, an
        ``obs.latency.LatencyHistogram``) — long-running sweeps fold
        into bounded histograms instead of unbounded lists.
        """
        if not len(samples):
            return cls(count=0, p50=0.0, p95=0.0, p99=0.0)
        quantile = getattr(samples, "percentile", None)
        if quantile is None:
            def quantile(q: float) -> float:
                return percentile(samples, q)
        return cls(count=len(samples),
                   p50=quantile(50.0),
                   p95=quantile(95.0),
                   p99=quantile(99.0),
                   p999=quantile(99.9))

    def describe(self, scale: float = 1e3, unit: str = "ms") -> str:
        """One line, e.g. ``P50 0.12 ms | P95 0.50 ms | P99 0.91 ms``."""
        return (f"P50 {self.p50 * scale:.3f} {unit} | "
                f"P95 {self.p95 * scale:.3f} {unit} | "
                f"P99 {self.p99 * scale:.3f} {unit}")


@dataclass
class KindStats:
    """Aggregates for one transaction kind."""

    count: int = 0
    visits: int = 0
    distinct_objects: int = 0
    io_reads: int = 0
    io_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    sim_time: float = 0.0
    wall_time: float = 0.0
    truncated: int = 0
    wall_samples: List[float] = field(default_factory=list)

    def add(self, result: TransactionResult, delta: StoreSnapshot,
            wall_seconds: float) -> None:
        """Fold one transaction into the aggregate."""
        self.count += 1
        self.visits += result.visits
        self.distinct_objects += result.distinct_objects
        self.io_reads += delta.io_reads
        self.io_writes += delta.io_writes
        self.buffer_hits += delta.buffer.hits
        self.buffer_misses += delta.buffer.misses
        self.sim_time += delta.sim_time
        self.wall_time += wall_seconds
        self.wall_samples.append(wall_seconds)
        if result.truncated:
            self.truncated += 1

    def merge(self, other: "KindStats") -> None:
        """Fold another aggregate (multi-client merges)."""
        self.count += other.count
        self.visits += other.visits
        self.distinct_objects += other.distinct_objects
        self.io_reads += other.io_reads
        self.io_writes += other.io_writes
        self.buffer_hits += other.buffer_hits
        self.buffer_misses += other.buffer_misses
        self.sim_time += other.sim_time
        self.wall_time += other.wall_time
        self.truncated += other.truncated
        self.wall_samples.extend(other.wall_samples)

    # Per-transaction means (0.0 when the kind never ran).

    @property
    def ios_per_transaction(self) -> float:
        """Mean page I/Os (reads + writes) per transaction."""
        return (self.io_reads + self.io_writes) / self.count if self.count else 0.0

    @property
    def reads_per_transaction(self) -> float:
        """Mean page reads per transaction."""
        return self.io_reads / self.count if self.count else 0.0

    @property
    def visits_per_transaction(self) -> float:
        """Mean accessed objects per transaction."""
        return self.visits / self.count if self.count else 0.0

    @property
    def sim_time_per_transaction(self) -> float:
        """Mean simulated response time per transaction (seconds)."""
        return self.sim_time / self.count if self.count else 0.0

    @property
    def hit_ratio(self) -> float:
        """Buffer hit ratio over the kind's accesses."""
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 0.0

    @property
    def wall_time_per_transaction(self) -> float:
        """Mean wall-clock response time per transaction (seconds)."""
        return self.wall_time / self.count if self.count else 0.0

    def wall_percentiles(self) -> LatencyPercentiles:
        """Wall-clock latency percentiles over the kind's transactions."""
        return LatencyPercentiles.from_samples(self.wall_samples)


@dataclass
class PhaseReport:
    """Metrics of one protocol phase (cold run or warm run)."""

    name: str
    per_kind: Dict[TransactionKind, KindStats] = field(default_factory=dict)

    @property
    def totals(self) -> KindStats:
        """Aggregate over every kind."""
        total = KindStats()
        for stats in self.per_kind.values():
            total.merge(stats)
        return total

    @property
    def transaction_count(self) -> int:
        """Transactions executed in the phase."""
        return sum(stats.count for stats in self.per_kind.values())

    def kind(self, kind: TransactionKind) -> KindStats:
        """Stats for one kind (empty aggregate if it never ran)."""
        return self.per_kind.get(kind, KindStats())

    def wall_percentiles(self) -> LatencyPercentiles:
        """Wall-clock P50/P95/P99 over every transaction in the phase."""
        return self.totals.wall_percentiles()

    def merge(self, other: "PhaseReport") -> None:
        """Fold another phase report into this one (multi-client)."""
        for kind, stats in other.per_kind.items():
            if kind in self.per_kind:
                self.per_kind[kind].merge(stats)
            else:
                merged = KindStats()
                merged.merge(stats)
                self.per_kind[kind] = merged

    def rows(self) -> List[Tuple[str, int, float, float, float, float]]:
        """Table rows: kind, n, visits/txn, reads/txn, IOs/txn, t_sim/txn."""
        table = []
        for kind in TransactionKind:
            stats = self.per_kind.get(kind)
            if stats is None or stats.count == 0:
                continue
            table.append((kind.value, stats.count,
                          stats.visits_per_transaction,
                          stats.reads_per_transaction,
                          stats.ios_per_transaction,
                          stats.sim_time_per_transaction))
        totals = self.totals
        table.append(("all", totals.count,
                      totals.visits_per_transaction,
                      totals.reads_per_transaction,
                      totals.ios_per_transaction,
                      totals.sim_time_per_transaction))
        return table


class MetricsCollector:
    """Accumulates transaction results into a :class:`PhaseReport`."""

    def __init__(self, phase_name: str) -> None:
        self._report = PhaseReport(name=phase_name)

    def record(self, result: TransactionResult, delta: StoreSnapshot,
               wall_seconds: float = 0.0) -> None:
        """Fold one transaction (with its store-delta) into the phase."""
        stats = self._report.per_kind.setdefault(result.kind, KindStats())
        stats.add(result, delta, wall_seconds)

    @property
    def report(self) -> PhaseReport:
        """The phase report built so far."""
        return self._report

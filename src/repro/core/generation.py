"""The OCB database generation algorithm (Fig. 2 of the paper).

Three chief steps, exactly as published:

1. **Schema instantiation** — create NC classes; draw each reference's type
   with DIST1 over [1, NREFT] (or take the a-priori ``fixed_tref``); draw
   each referenced class with DIST2 over [INFCLASS, SUPCLASS] (or take
   ``fixed_cref``); a drawn 0 is a NIL reference.
2. **Consistency check** — for every reference whose type's graph must stay
   acyclic, browse the typed class graph from the referenced class; if the
   referencing class is reachable (or a cycle is found) the reference is
   NULLed.  Then instance sizes are computed over the (now acyclic)
   inheritance graph.
3. **Object instantiation** — draw each object's class with DIST3 over
   [1, NC] and append it to the class iterator; then draw every forward
   reference with DIST4 over [INFREF, SUPREF] (RefZone-relative when
   configured), mapping the drawn id into the target class's iterator;
   reverse references are installed at the same time.

The Lewis–Payne generator supplies all randomness, through four derived
substreams (one per step of the algorithm) so that changing, say, NO does
not perturb the schema draws.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.database import OCBDatabase, OCBObject
from repro.core.parameters import DatabaseParameters
from repro.core.schema import ClassDescriptor, Schema
from repro.errors import GenerationError
from repro.rand.lewis_payne import LewisPayne

__all__ = ["GenerationReport", "generate_database", "generate_schema"]

# Substream keys: one independent Lewis-Payne stream per generation phase.
_STREAM_TYPES = 0x5EED_0001
_STREAM_CLASS_REFS = 0x5EED_0002
_STREAM_OBJECT_CLASSES = 0x5EED_0003
_STREAM_OBJECT_REFS = 0x5EED_0004


@dataclass(frozen=True)
class GenerationReport:
    """Timing and bookkeeping of one database generation (Fig. 4 input)."""

    schema_seconds: float
    consistency_seconds: float
    objects_seconds: float
    references_seconds: float
    removed_references: int

    @property
    def total_seconds(self) -> float:
        """End-to-end generation time."""
        return (self.schema_seconds + self.consistency_seconds +
                self.objects_seconds + self.references_seconds)


def generate_schema(parameters: DatabaseParameters,
                    rng: Optional[LewisPayne] = None) -> Tuple[Schema, int]:
    """Run steps 1 and 2 of Fig. 2; return (schema, removed_reference_count)."""
    root_rng = rng or LewisPayne(parameters.seed)
    type_rng = root_rng.spawn(_STREAM_TYPES)
    class_rng = root_rng.spawn(_STREAM_CLASS_REFS)

    classes = _instantiate_classes(parameters, type_rng, class_rng)
    schema = Schema(classes, parameters.reference_types)  # type: ignore[arg-type]
    removed = _enforce_consistency(schema, parameters)
    schema.compute_instance_sizes()
    return schema, removed


def generate_database(parameters: DatabaseParameters,
                      validate: bool = False
                      ) -> Tuple[OCBDatabase, GenerationReport]:
    """Run the full Fig. 2 algorithm; return the database and its timings."""
    root_rng = LewisPayne(parameters.seed)

    t0 = time.perf_counter()
    type_rng = root_rng.spawn(_STREAM_TYPES)
    class_rng = root_rng.spawn(_STREAM_CLASS_REFS)
    classes = _instantiate_classes(parameters, type_rng, class_rng)
    schema = Schema(classes, parameters.reference_types)  # type: ignore[arg-type]
    t1 = time.perf_counter()

    removed = _enforce_consistency(schema, parameters)
    schema.compute_instance_sizes()
    t2 = time.perf_counter()

    object_rng = root_rng.spawn(_STREAM_OBJECT_CLASSES)
    objects = _instantiate_objects(schema, parameters, object_rng)
    t3 = time.perf_counter()

    ref_rng = root_rng.spawn(_STREAM_OBJECT_REFS)
    _instantiate_references(schema, objects, parameters, ref_rng)
    t4 = time.perf_counter()

    database = OCBDatabase(schema, objects, parameters)
    if validate:
        database.validate()
    report = GenerationReport(
        schema_seconds=t1 - t0,
        consistency_seconds=t2 - t1,
        objects_seconds=t3 - t2,
        references_seconds=t4 - t3,
        removed_references=removed)
    return database, report


# ---------------------------------------------------------------------- #
# Step 1 — schema instantiation
# ---------------------------------------------------------------------- #

def _instantiate_classes(parameters: DatabaseParameters,
                         type_rng: LewisPayne,
                         class_rng: LewisPayne) -> List[ClassDescriptor]:
    classes: List[ClassDescriptor] = []
    for cid in range(1, parameters.num_classes + 1):
        max_nref = parameters.max_nref_for(cid)
        if parameters.fixed_tref is not None:
            tref = list(parameters.fixed_tref[cid - 1])
        else:
            tref = [parameters.dist1.draw(type_rng, 1, parameters.num_ref_types,
                                          center=cid)
                    for _ in range(max_nref)]
        classes.append(ClassDescriptor(
            cid=cid,
            max_nref=max_nref,
            base_size=parameters.base_size_for(cid),
            tref=tref,
            cref=[None] * max_nref))

    for descriptor in classes:
        if parameters.fixed_cref is not None:
            fixed_row = parameters.fixed_cref[descriptor.cid - 1]
            descriptor.cref = [None if target in (None, 0) else int(target)
                               for target in fixed_row]
            continue
        cref: List[Optional[int]] = []
        for _ in range(descriptor.max_nref):
            drawn = parameters.dist2.draw(
                class_rng, parameters.inf_class,
                parameters.sup_class,  # type: ignore[arg-type]
                center=descriptor.cid)
            cref.append(None if drawn == 0 else drawn)
        descriptor.cref = cref
    return classes


# ---------------------------------------------------------------------- #
# Step 2 — consistency check (cycle suppression)
# ---------------------------------------------------------------------- #

def _enforce_consistency(schema: Schema,
                         parameters: DatabaseParameters) -> int:
    """NULL every acyclic-typed reference that closes a cycle.

    Classes and references are processed in the paper's order (class id,
    then reference index), re-checking reachability after each removal,
    which is exactly the incremental behaviour of Fig. 2.
    """
    removed = 0
    for descriptor in schema:
        for index, type_id, target in list(descriptor.references()):
            if target is None:
                continue
            spec = schema.ref_type(type_id)
            if not spec.acyclic:
                continue
            if target == descriptor.cid or _reaches(
                    schema, type_id, start=target, goal=descriptor.cid):
                descriptor.cref[index] = None
                removed += 1
    for spec in schema.reference_types():
        if spec.acyclic and schema.has_cycle(spec.type_id):
            raise GenerationError(
                f"consistency step left a cycle in type {spec.type_id}")
    return removed


def _reaches(schema: Schema, type_id: int, start: int, goal: int) -> bool:
    """Depth-first reachability in the class graph of one reference type."""
    stack = [start]
    seen: Set[int] = set()
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        if node in seen:
            continue
        seen.add(node)
        descriptor = schema.get(node)
        for _, t, target in descriptor.references():
            if t == type_id and target is not None and target not in seen:
                stack.append(target)
    return False


# ---------------------------------------------------------------------- #
# Step 3 — object instantiation
# ---------------------------------------------------------------------- #

def _instantiate_objects(schema: Schema, parameters: DatabaseParameters,
                         rng: LewisPayne) -> Dict[int, OCBObject]:
    objects: Dict[int, OCBObject] = {}
    num_classes = parameters.num_classes
    for oid in range(1, parameters.num_objects + 1):
        cid = parameters.dist3.draw(rng, 1, num_classes, center=oid)
        descriptor = schema.get(cid)
        obj = OCBObject(oid=oid, cid=cid,
                        oref=[None] * descriptor.max_nref)
        descriptor.iterator.append(oid)
        objects[oid] = obj
    return objects


def _instantiate_references(schema: Schema, objects: Dict[int, OCBObject],
                            parameters: DatabaseParameters,
                            rng: LewisPayne) -> None:
    """Fig. 2's final loop: draw ORef targets and install BackRefs.

    The draw ``l = RAND(DIST4, INFREF, SUPREF)`` happens on the object-id
    range; the drawn id is mapped into the target class's iterator with
    ``(l - 1) mod population`` (see DESIGN.md §3).
    """
    if not objects:
        return
    for descriptor in schema:
        for oid in descriptor.iterator:
            obj = objects[oid]
            low, high = parameters.object_ref_bounds(oid)
            for index, type_id, target_class in descriptor.references():
                if target_class is None:
                    continue
                target_descriptor = schema.get(target_class)
                population = target_descriptor.population
                if population == 0:
                    continue
                drawn = parameters.dist4.draw(rng, low, high, center=oid)
                target_oid = target_descriptor.iterator[(drawn - 1) % population]
                obj.oref[index] = target_oid
                objects[target_oid].back_refs.append((oid, index))

"""The unified execution kernel: one Session, every workload, any engine.

:class:`Session` is the single surface through which *all three* OCB
execution paths — the cold/warm transaction protocol
(:mod:`repro.core.transactions` / :mod:`repro.core.workload`), the
extended generic operation set (:mod:`repro.core.generic_ops`) and
multi-user interleaving (:mod:`repro.multiuser.runner`) — touch storage.
It grew out of the old ``AccessContext`` and owns everything the paths
used to wire up separately:

* **object access** — :meth:`access` charges the engine and notifies the
  clustering policy of the link crossing (DSTC's observation input);
* **batched access** — :meth:`prefetch` pulls a whole BFS frontier or
  match set through :meth:`~repro.backends.base.Backend.read_many` into
  a decoded-record cache that :meth:`access` consults, turning N point
  queries into one round trip on engines that support it (SQLite).
  Batching only activates when the engine declares
  ``supports_batched_reads``, so cost-model engines keep bit-identical
  per-object accounting;
* **metrics charging** — :meth:`measure` snapshots the engine around a
  transaction and yields the ``(delta, wall seconds)`` pair every
  collector consumes; :meth:`charge_think_time` advances the simulated
  clock by THINK;
* **lifecycle** — :meth:`drop_caches` (honest cold runs),
  :meth:`flush`, :meth:`reset_stats`, :meth:`close`.

A Session wraps either the classic :class:`~repro.store.storage.ObjectStore`
(driven directly, exactly as before the backends subsystem existed) or
any :class:`~repro.backends.base.Backend`; :meth:`Session.for_database`
additionally accepts a *registered backend name* and bulk-loads the
generated database into a fresh engine, which is how every runner lets
callers say ``backend="sqlite"``.
"""

from __future__ import annotations

import time
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.backends.base import Backend, ReadHandle
from repro.clustering.base import ClusteringPolicy, NoClustering
from repro.core.database import OCBDatabase
from repro.errors import WorkloadError
from repro.obs import trace
from repro.store.serializer import StoredObject
from repro.store.storage import ObjectStore, StoreConfig, StoreSnapshot

__all__ = ["Measurement", "Session"]

#: Anything a Session can drive.
StoreLike = Union[ObjectStore, Backend]

#: Pipelined-BFS frontier chunk: while one chunk's references are being
#: filtered on the caller's thread, the next chunk's read is already in
#: flight on the engine's pool.  Sized so a default-depth OCB frontier
#: splits into a handful of overlapping reads without shrinking the
#: IN-clause batches below usefulness.
_PIPELINE_CHUNK = 128


class Measurement:
    """One measured span: engine-counter delta plus wall-clock seconds.

    Used as a context manager by every runner::

        with session.measure() as m:
            ...execute the transaction...
        collector.record(result, m.delta, m.wall)
    """

    __slots__ = ("_store", "_before", "_start", "delta", "wall")

    def __init__(self, store: StoreLike) -> None:
        self._store = store
        self.delta: Optional[StoreSnapshot] = None
        self.wall: float = 0.0

    def __enter__(self) -> "Measurement":
        self._before = self._store.snapshot()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.wall = time.perf_counter() - self._start
        self.delta = self._store.snapshot() - self._before
        if trace.enabled:
            trace.emit("session.measure", self.wall,
                       io_reads=self.delta.io_reads,
                       io_writes=self.delta.io_writes)


class Session:
    """Store + policy + catalog wiring shared by every execution path.

    ``store`` may be the classic :class:`ObjectStore` or any
    :class:`~repro.backends.base.Backend`; only the surface the two
    share is used.  ``batch`` controls frontier batching: ``None``
    (default) auto-detects ``supports_batched_reads`` on the engine,
    ``True``/``False`` force it on or off (forcing it on against an
    engine without native batching falls back to a read loop).
    """

    def __init__(self, store: StoreLike,
                 policy: Optional[ClusteringPolicy] = None,
                 tref_table: Optional[Mapping[int, Tuple[int, ...]]] = None,
                 catalog: Optional[Mapping[int, int]] = None,
                 batch: Optional[bool] = None,
                 lazy: bool = False,
                 pipeline: bool = False) -> None:
        self.store = store
        self.policy = policy or NoClustering()
        self._tref_table = dict(tref_table or {})
        self._catalog = dict(catalog or {})
        if batch is None:
            batch = bool(getattr(store, "supports_batched_reads", False))
        self.batch_reads = batch and hasattr(store, "read_many")
        self.batch_writes = self.batch_reads and \
            bool(getattr(store, "supports_batched_writes", False))
        #: Decode-free read mode: every read asks the engine for a lazy
        #: zero-copy record (header parsed, refs/back-refs deferred).
        #: Default off so default-path goldens and cost accounting stay
        #: byte-identical; engines without a byte representation simply
        #: ignore the flag.
        self.lazy = bool(lazy)
        #: Pipelined BFS: during frontier traversal the next chunk's read
        #: is submitted (engine submit/collect hooks) while the current
        #: chunk's references are filtered on this thread.  Requested via
        #: the flag but only *effective* on engines that declare
        #: ``supports_async_reads`` — everywhere else the session keeps
        #: the exact sequential call sequence, so the off/ineffective
        #: path executes none of the pool machinery.
        self.pipeline = bool(pipeline) and \
            bool(getattr(store, "supports_async_reads", False))
        self._prefetched: Dict[int, StoredObject] = {}

    # ------------------------------------------------------------------ #
    # Construction from a registered backend
    # ------------------------------------------------------------------ #

    @classmethod
    def for_database(cls, database: OCBDatabase,
                     store: "StoreLike | str | None" = None,
                     store_config: Optional[StoreConfig] = None,
                     policy: Optional[ClusteringPolicy] = None,
                     batch: Optional[bool] = None,
                     backend_options: Optional[dict] = None,
                     load: bool = True,
                     lazy: bool = False,
                     pipeline: bool = False) -> "Session":
        """Build a Session over *store* for a generated *database*.

        *store* may be a loaded :class:`ObjectStore`/:class:`Backend`
        instance, a registered backend **name** (resolved through the
        registry; ``None`` means ``"simulated"``), or a fresh empty
        engine.  Named and empty engines are bulk-loaded with the
        database in oid order and their counters reset, so
        ``Session.for_database(db, "sqlite")`` is everything a caller
        needs to run any workload on SQLite.

        ``load=False`` *attaches* instead: the engine must already hold
        the data (a worker process connecting to storage its parent bulk
        loaded).  An empty engine then raises immediately rather than
        letting N workers race to load the same shared file.
        """
        from repro.backends import resolve_backend  # Late: avoids a cycle.
        if store is None or isinstance(store, str):
            store = resolve_backend(store, store_config,
                                    **(backend_options or {}))
        if store.object_count == 0:
            if not load:
                raise WorkloadError(
                    "Session.for_database(load=False) attaches to "
                    "pre-loaded storage, but the engine is empty; the "
                    "coordinating process must bulk-load it first")
            database.load_into(store)
            store.reset_stats()
        return cls(store, policy=policy,
                   tref_table=database.tref_table(),
                   catalog=database.catalog(), batch=batch, lazy=lazy,
                   pipeline=pipeline)

    # ------------------------------------------------------------------ #
    # Catalog lookups (no I/O)
    # ------------------------------------------------------------------ #

    def class_of(self, oid: int) -> Optional[int]:
        """Class of *oid* from the catalog (no I/O), if known."""
        return self._catalog.get(oid)

    def ref_type_of(self, cid: Optional[int], index: int) -> Optional[int]:
        """Type of reference slot *index* of class *cid*, if known."""
        if cid is None:
            return None
        types = self._tref_table.get(cid)
        if types is None or index >= len(types):
            return None
        return types[index]

    # ------------------------------------------------------------------ #
    # Object access (the hot path)
    # ------------------------------------------------------------------ #

    def access(self, oid: int, source: Optional[StoredObject] = None,
               ref_index: Optional[int] = None,
               via_back_ref: bool = False) -> StoredObject:
        """Read one object, charging I/O and notifying the policy.

        Prefetched records (see :meth:`prefetch`) are served from the
        decoded-record cache without touching the engine again; the
        clustering policy still observes every link crossing.  Each
        prefetched record is consumed by its first serve (so the cache
        never grows past one frontier/chunk, and repeat visits are
        charged to the engine exactly as they are without batching —
        the OO1 heritage of counting duplicate visits carries over to
        the physical counters).
        """
        record = self._prefetched.pop(oid, None) if self.batch_reads else None
        if record is None:
            record = self._read_object(oid)
        source_oid = source.oid if source is not None else None
        if source is not None and ref_index is not None:
            if via_back_ref:
                # The crossed slot belongs to the *target* object's class.
                ref_type = self.ref_type_of(record.cid, ref_index)
            else:
                ref_type = self.ref_type_of(source.cid, ref_index)
        else:
            ref_type = None
        self.policy.observe_access(source_oid, oid, ref_type)
        return record

    def touch(self, oid: int, source_oid: Optional[int] = None
              ) -> StoredObject:
        """Read one object with an untyped policy observation.

        The generic operations' access path: range lookups and
        sequential scans cross no reference slot, so the policy sees a
        ``None`` reference type.  Like :meth:`access`, a prefetched
        record is consumed by its first serve.
        """
        record = self._prefetched.pop(oid, None) if self.batch_reads else None
        if record is None:
            record = self._read_object(oid)
        self.policy.observe_access(source_oid, oid, None)
        return record

    def _read_object(self, oid: int) -> StoredObject:
        """One engine read, lazily decoded when the session is lazy.

        The flag is only *passed* in lazy mode, so default sessions issue
        the exact call they always have — stub stores in tests (and any
        engine predating the flag) keep working unchanged.
        """
        if self.lazy:
            return self.store.read_object(oid, lazy=True)
        return self.store.read_object(oid)

    def prefetch(self, oids: Iterable[int]) -> int:
        """Batch-fetch *oids* into the decoded-record cache.

        A no-op (returning 0) unless the engine supports batched reads,
        so callers sprinkle frontier prefetches without changing the
        behaviour of cost-model engines.  Returns the number of records
        actually fetched; already-cached oids are not re-read.

        Each cached record is consumed by its first :meth:`access` /
        :meth:`touch`, so the cache holds at most one frontier or scan
        chunk at a time.  Note that engine-side *physical* counters
        (``object_accesses``, SQL round trips) legitimately differ
        between batched and per-object runs — prefetching may fetch
        objects a truncated traversal never serves; the paper's
        *logical* "accessed objects" metric is tracked by the metrics
        pipeline and is batching-invariant.
        """
        if not self.batch_reads:
            return 0
        missing = [oid for oid in dict.fromkeys(oids)
                   if oid not in self._prefetched]
        if not missing:
            return 0
        if self.lazy:
            self._prefetched.update(self.store.read_many(missing, lazy=True))
        else:
            self._prefetched.update(self.store.read_many(missing))
        return len(missing)

    def traverse_refs_many(self, oids: Iterable[int]
                           ) -> Dict[int, Tuple[int, ...]]:
        """A batch of objects' outgoing references, keyed by oid.

        Structure-only frontier expansion: engines with a link index
        (SQLite built with ``ref_index=True``) answer the whole batch in
        one set-oriented round trip without decoding records; everywhere
        else the backend's loop fallback runs.  No policy observations
        are made — callers that *visit* the targets still go through
        :meth:`access`.
        """
        batched = getattr(self.store, "traverse_refs_many", None)
        if batched is not None:
            return batched(list(oids))
        # The classic ObjectStore: read-and-filter, one object at a time.
        refs: Dict[int, Tuple[int, ...]] = {}
        for oid in oids:
            if oid not in refs:
                refs[oid] = self.store.read_object(oid).non_null_refs()
        return refs

    def iter_frontier_refs(self, frontier: Sequence[int]
                           ) -> "Iterable[Dict[int, Tuple[int, ...]]]":
        """Yield a BFS frontier's reference answers, pipelined when on.

        The sequential path (``pipeline`` off, or an engine without the
        submit/collect hooks' async support) yields the whole frontier's
        answers in one :meth:`traverse_refs_many` call — the exact
        pre-pipeline call sequence, touching none of the pool machinery.

        The pipelined path splits the frontier into chunks and keeps
        exactly one chunk's read in flight ahead of the consumer: chunk
        *i+1* is submitted through the engine's
        ``submit_traverse_refs_many`` *before* chunk *i*'s answers are
        yielded, so the caller's filtering of chunk *i* (visited-set
        updates, membership checks) overlaps the engine-side execution
        of chunk *i+1*.  Chunks are contiguous runs of the frontier
        order, so consuming the yielded answers in order visits every
        (oid, targets) pair in exactly the sequential order — traversal
        results are byte-identical across modes.
        """
        frontier = list(frontier)
        submit = getattr(self.store, "submit_traverse_refs_many", None)
        if not self.pipeline or submit is None \
                or len(frontier) <= _PIPELINE_CHUNK:
            yield self.traverse_refs_many(frontier)
            return
        chunks = [frontier[start:start + _PIPELINE_CHUNK]
                  for start in range(0, len(frontier), _PIPELINE_CHUNK)]
        handle: "ReadHandle" = submit(chunks[0])
        for index in range(len(chunks)):
            ahead = submit(chunks[index + 1]) \
                if index + 1 < len(chunks) else None
            yield handle.result()
            if ahead is not None:
                handle = ahead

    def end_transaction(self) -> None:
        """Close one transaction: notify the policy, drop the prefetch
        cache (its residency guarantee does not outlive the frontier)."""
        self.policy.on_transaction_end()
        self._prefetched.clear()

    # ------------------------------------------------------------------ #
    # Mutation (the generic-operations extension)
    # ------------------------------------------------------------------ #

    def write_record(self, record: StoredObject) -> None:
        """Update one object in place."""
        self._prefetched.pop(record.oid, None)
        self.store.write_object(record)

    def write_records(self, records: Sequence[StoredObject]) -> None:
        """Write a batch — one round trip on engines with native batched
        writes, an in-order loop everywhere else."""
        if not records:
            return
        for record in records:
            self._prefetched.pop(record.oid, None)
        if self.batch_writes:
            self.store.write_many(records)
        else:
            for record in records:
                self.store.write_object(record)

    def insert_record(self, record: StoredObject) -> None:
        """Persist a brand-new object."""
        self.store.insert_object(record)

    def delete_record(self, oid: int) -> None:
        """Remove an object."""
        self._prefetched.pop(oid, None)
        self.store.delete_object(oid)

    # ------------------------------------------------------------------ #
    # Metrics charging
    # ------------------------------------------------------------------ #

    def measure(self) -> Measurement:
        """Context manager measuring one span (counter delta + wall)."""
        return Measurement(self.store)

    def snapshot(self) -> StoreSnapshot:
        """The engine's counter snapshot."""
        return self.store.snapshot()

    def charge_think_time(self, seconds: float) -> None:
        """Advance the simulated clock by THINK (scaled by the model)."""
        if seconds > 0.0:
            self.store.clock.advance(
                seconds * self.store.cost_model.think_scale)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def object_count(self) -> int:
        """Live objects in the engine."""
        return self.store.object_count

    def require_loaded(self) -> None:
        """Raise unless the engine holds a bulk-loaded database."""
        if self.store.object_count == 0:
            raise WorkloadError("the store is empty; bulk-load the database "
                                "before running a workload")

    def current_order(self) -> List[int]:
        """Object ids in the engine's physical (or canonical) order."""
        return self.store.current_order()

    def drop_caches(self) -> bool:
        """Evict engine caches for an honest cold run.

        Returns ``True`` when cached state was actually dropped (the
        classic store always drops; backends report through the
        protocol's :meth:`~repro.backends.base.Backend.drop_caches`).
        """
        self._prefetched.clear()
        result = self.store.drop_caches()
        return True if result is None else bool(result)

    def flush(self) -> int:
        """Persist buffered writes (no-op on write-through engines)."""
        flush = getattr(self.store, "flush", None)
        if flush is None:
            return 0
        return int(flush() or 0)

    def reset_stats(self) -> None:
        """Zero the engine's accounting counters."""
        self.store.reset_stats()

    def close(self) -> None:
        """Release engine resources."""
        close = getattr(self.store, "close", None)
        if close is not None:
            close()

    @property
    def backend_name(self) -> str:
        """Engine name (registry name for backends, class name else)."""
        return getattr(self.store, "name", type(self.store).__name__)

"""Parameter presets: the paper's tables plus benchmark approximations.

* :func:`default_database_parameters` / :func:`default_workload_parameters`
  — Tables 1 and 2 verbatim (with an optional ``scale`` so tests and CI
  machines can run proportionally smaller instances).
* :func:`dstc_club_database_parameters` /
  :func:`dstc_club_workload_parameters` — Table 3: OCB tuned to mimic the
  DSTC-CluB benchmark (OO1-derived; two classes, three references per
  object, constant DIST1-3, the Special RefZone locality for DIST4, and a
  traversal-only workload at OO1's depth 7).
* :func:`oo1_like_database_parameters`,
  :func:`hypermodel_like_database_parameters`,
  :func:`oo7_like_database_parameters` — the paper's genericity claim
  ("existing benchmark databases might be approximated with OCB's schema,
  tuned by the appropriate parameters") made concrete.

``PRESETS`` maps preset names to ``(database, workload)`` factories for the
CLI and the benchmark harness.

``SCENARIO_PRESETS`` is the declarative-scenario library (``ocb scenario``,
:mod:`repro.core.scenario`): named :class:`~repro.core.scenario.Scenario`
factories covering the paper-default transaction mix plus the read/write
shapes the legacy runners could not express — ``read_heavy``,
``write_heavy``, ``mixed_oltp``, ``scan_heavy``, the decode-free
``graph_walk`` and the skew-composition ``hot_spot`` (per-entry DIST5
overrides steering Zipf-hot roots onto a sharded engine).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.parameters import (
    DatabaseParameters,
    ReferenceTypeSpec,
    WorkloadParameters,
)
from repro.core.scenario import MixEntry, Scenario, WorkloadMix
from repro.errors import ParameterError
from repro.rand.distributions import (
    ConstantDistribution,
    SpecialDistribution,
    UniformDistribution,
    ZipfDistribution,
)

__all__ = [
    "default_database_parameters",
    "default_workload_parameters",
    "dstc_club_database_parameters",
    "dstc_club_workload_parameters",
    "oo1_like_database_parameters",
    "oo1_like_workload_parameters",
    "hypermodel_like_database_parameters",
    "oo7_like_database_parameters",
    "PRESETS",
    "preset",
    "SCENARIO_PRESETS",
    "scenario_preset",
]


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    if scale <= 0:
        raise ParameterError(f"scale must be > 0, got {scale}")
    return max(minimum, int(round(value * scale)))


# ---------------------------------------------------------------------- #
# Tables 1 & 2 — OCB defaults
# ---------------------------------------------------------------------- #

def default_database_parameters(scale: float = 1.0,
                                seed: Optional[int] = None
                                ) -> DatabaseParameters:
    """Table 1 defaults; ``scale`` shrinks NO proportionally."""
    kwargs = {} if seed is None else {"seed": seed}
    return DatabaseParameters(
        num_classes=20,
        max_nref=10,
        base_size=50,
        num_objects=_scaled(20000, scale),
        num_ref_types=4,
        **kwargs)


def default_workload_parameters(scale: float = 1.0) -> WorkloadParameters:
    """Table 2 defaults; ``scale`` shrinks COLDN and HOTN proportionally."""
    return WorkloadParameters(
        set_depth=3,
        simple_depth=3,
        hierarchy_depth=5,
        stochastic_depth=50,
        cold_n=_scaled(1000, scale),
        hot_n=_scaled(10000, scale),
        think_time=0.0,
        p_set=0.25,
        p_simple=0.25,
        p_hierarchy=0.25,
        p_stochastic=0.25,
        clients=1)


# ---------------------------------------------------------------------- #
# Table 3 — OCB parameterized to approximate DSTC-CluB (OO1-derived)
# ---------------------------------------------------------------------- #

def dstc_club_database_parameters(num_objects: int = 20000,
                                  ref_zone: int = 100,
                                  seed: Optional[int] = None
                                  ) -> DatabaseParameters:
    """Table 3: NC=2, MAXNREF=3, NREFT=3, constant DIST1-3, Special DIST4.

    "Constant" in Table 3 is the paper's "set up a priori" escape hatch:
    the OO1 structure is fixed rather than drawn.  Class 1 plays OO1's
    Part (three part-to-part links, folding Connection objects into the
    link slots); class 2 plays Connection.  DIST3 = Constant(1) puts every
    object in the Part class, matching OO1's traversal population.  DIST4
    is the Special OO1 locality: 90 % of references fall within
    ``ref_zone`` of the referencing part, 10 % anywhere.
    """
    kwargs = {} if seed is None else {"seed": seed}
    reference_types = (
        ReferenceTypeSpec(1, "connection-to", acyclic=False),
        ReferenceTypeSpec(2, "connection-from", acyclic=False),
        ReferenceTypeSpec(3, "part-of", acyclic=False),
    )
    return DatabaseParameters(
        num_classes=2,
        max_nref=3,
        base_size=50,
        num_objects=num_objects,
        num_ref_types=3,
        inf_class=0,
        sup_class=2,
        dist1=ConstantDistribution(1),
        dist2=ConstantDistribution(1),
        dist3=ConstantDistribution(1),
        dist4=SpecialDistribution(ref_zone=ref_zone, locality_probability=0.9),
        reference_types=reference_types,
        fixed_tref=((1, 1, 1), (1, 2, 3)),
        fixed_cref=((1, 1, 1), (1, 1, 0)),
        **kwargs)


def dstc_club_workload_parameters(transactions: int = 100,
                                  cold: int = 10,
                                  depth: int = 7) -> WorkloadParameters:
    """DSTC-CluB's single transaction type: OO1's depth-7 traversal.

    ``depth`` defaults to OO1's 7 hops; scaled-down experiment instances
    shrink it together with the database so the traversal's footprint
    stays proportional (see EXPERIMENTS.md).
    """
    return WorkloadParameters(
        simple_depth=depth,
        p_set=0.0,
        p_simple=1.0,
        p_hierarchy=0.0,
        p_stochastic=0.0,
        cold_n=cold,
        hot_n=transactions,
        max_visits=3280)  # OO1: "total of 3280 parts, with possible duplicates".


# ---------------------------------------------------------------------- #
# Genericity presets — other benchmarks approximated with OCB
# ---------------------------------------------------------------------- #

def oo1_like_database_parameters(num_parts: int = 20000,
                                 ref_zone: Optional[int] = None,
                                 seed: Optional[int] = None
                                 ) -> DatabaseParameters:
    """OO1/Cattell: parts with three links, RefZone = 1 % of the parts."""
    zone = ref_zone if ref_zone is not None else max(1, num_parts // 100)
    return dstc_club_database_parameters(num_objects=num_parts,
                                         ref_zone=zone, seed=seed)


def oo1_like_workload_parameters() -> WorkloadParameters:
    """OO1's traversal mix (lookups are modelled by depth-0 set accesses)."""
    return WorkloadParameters(
        set_depth=0,          # Lookup: access the selected part itself.
        simple_depth=7,       # Traversal: depth-first, seven hops.
        p_set=0.5,
        p_simple=0.5,
        p_hierarchy=0.0,
        p_stochastic=0.0,
        cold_n=20,
        hot_n=200,
        max_visits=3280,
        reverse_probability=0.5)  # OO1 also performs reverse traversals.


def hypermodel_like_database_parameters(num_nodes: int = 3906,
                                        seed: Optional[int] = None
                                        ) -> DatabaseParameters:
    """HyperModel: one Node class with five relationship kinds.

    parent/children (aggregation, 5-ary), partOf/parts (1-N hierarchy),
    refTo/refFrom (association) — modelled as MAXNREF=7 references over
    NREFT=5 types on a single class.

    Note: OCB's consistency check suppresses cycles at the *class* level,
    and a one-class schema makes any self-referencing acyclic type an
    immediate class-level cycle.  HyperModel's hierarchies are acyclic at
    the *object* level only, so the aggregation/partOf types are declared
    cyclic here (the paper's check simply does not constrain them).
    """
    kwargs = {} if seed is None else {"seed": seed}
    reference_types = (
        ReferenceTypeSpec(1, "inheritance", acyclic=True, is_inheritance=True),
        ReferenceTypeSpec(2, "aggregation", acyclic=False),
        ReferenceTypeSpec(3, "partOf", acyclic=False),
        ReferenceTypeSpec(4, "refTo", acyclic=False),
        ReferenceTypeSpec(5, "refFrom", acyclic=False),
    )
    return DatabaseParameters(
        num_classes=1,
        max_nref=7,
        base_size=20,
        num_objects=num_nodes,
        num_ref_types=5,
        reference_types=reference_types,
        fixed_tref=((2, 2, 2, 3, 3, 4, 5),),
        fixed_cref=((1, 1, 1, 1, 1, 1, 1),),
        **kwargs)


def oo7_like_database_parameters(scale: float = 1.0,
                                 seed: Optional[int] = None
                                 ) -> DatabaseParameters:
    """OO7 (small): a ten-class design hierarchy approximation.

    Classes: 1 Module, 2 ComplexAssembly, 3 BaseAssembly, 4 CompositePart,
    5 AtomicPart, 6 Connection, 7 Document, 8 Manual, 9 DesignObj(base),
    10 DesignRoot.  Fan-outs follow OO7-small's shape (assemblies 3-ary,
    composite parts referencing documents and shared atomic part graphs).
    """
    kwargs = {} if seed is None else {"seed": seed}
    reference_types = (
        ReferenceTypeSpec(1, "inheritance", acyclic=True, is_inheritance=True),
        ReferenceTypeSpec(2, "assembly", acyclic=True),
        ReferenceTypeSpec(3, "component", acyclic=False),
        ReferenceTypeSpec(4, "document", acyclic=False),
    )
    max_nref = (3, 3, 3, 6, 3, 2, 1, 1, 0, 2)
    base_size = (100, 60, 60, 80, 40, 20, 200, 400, 20, 40)
    fixed_tref = (
        (2, 2, 2),          # Module -> assemblies
        (2, 2, 2),          # ComplexAssembly -> children
        (3, 3, 3),          # BaseAssembly -> composite parts
        (3, 3, 3, 3, 3, 4),  # CompositePart -> atomic parts + document
        (3, 3, 3),          # AtomicPart -> connections
        (3, 3),             # Connection -> atomic parts
        (4,),               # Document -> manual
        (1,),               # Manual inherits DesignObj
        (),                 # DesignObj
        (2, 2),             # DesignRoot -> modules
    )
    fixed_cref = (
        (2, 2, 2),
        (3, 3, 3),
        (4, 4, 4),
        (5, 5, 5, 5, 5, 7),
        (6, 6, 6),
        (5, 5),
        (8,),
        (9,),
        (),
        (1, 1),
    )
    return DatabaseParameters(
        num_classes=10,
        max_nref=max_nref,
        base_size=base_size,
        num_objects=_scaled(10000, scale),
        num_ref_types=4,
        reference_types=reference_types,
        fixed_tref=fixed_tref,
        fixed_cref=fixed_cref,
        **kwargs)


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #

PresetFactory = Callable[[], Tuple[DatabaseParameters, WorkloadParameters]]

PRESETS: Dict[str, PresetFactory] = {
    "default": lambda: (default_database_parameters(),
                        default_workload_parameters()),
    "default-small": lambda: (default_database_parameters(scale=0.1),
                              default_workload_parameters(scale=0.02)),
    "dstc-club": lambda: (dstc_club_database_parameters(),
                          dstc_club_workload_parameters()),
    "oo1": lambda: (oo1_like_database_parameters(),
                    oo1_like_workload_parameters()),
    "hypermodel": lambda: (hypermodel_like_database_parameters(),
                           default_workload_parameters(scale=0.02)),
    "oo7": lambda: (oo7_like_database_parameters(),
                    default_workload_parameters(scale=0.02)),
}


def preset(name: str) -> Tuple[DatabaseParameters, WorkloadParameters]:
    """Instantiate a named preset; raise ParameterError if unknown."""
    try:
        factory = PRESETS[name.strip().lower()]
    except KeyError:
        raise ParameterError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    return factory()


# ---------------------------------------------------------------------- #
# Scenario library (the declarative execution layer)
# ---------------------------------------------------------------------- #

def _paper_default_scenario() -> Scenario:
    """Table 2's transaction mix as a scenario (PSET..PSTOCH = 0.25)."""
    return Scenario(
        mix=WorkloadMix.from_workload_parameters(
            default_workload_parameters(), name="paper_default"),
        clients=1, cold_ops=20, warm_ops=200)


def _read_heavy_scenario() -> Scenario:
    """Traversal-dominated reads with a sprinkle of set-oriented lookups."""
    return Scenario(
        mix=WorkloadMix(name="read_heavy", entries=(
            MixEntry("set", weight=0.20, depth=2),
            MixEntry("simple", weight=0.30, depth=3),
            MixEntry("hierarchy", weight=0.20, depth=4),
            MixEntry("stochastic", weight=0.10, depth=12),
            MixEntry("range_lookup", weight=0.15, range_width=10),
            MixEntry("sequential_scan", weight=0.05),
        )),
        clients=2, cold_ops=10, warm_ops=80)


def _write_heavy_scenario() -> Scenario:
    """Mutation-dominated mix whose logical metrics never depend on what
    concurrent clients committed — inserts, reference rewires, deletes
    and partition-local range reads — so multi-process runs stay
    deterministic per client while their physical writes genuinely
    contend on the shared engine."""
    return Scenario(
        mix=WorkloadMix(name="write_heavy", entries=(
            MixEntry("insert", weight=0.30),
            MixEntry("update", weight=0.45),
            MixEntry("delete", weight=0.05),
            MixEntry("range_lookup", weight=0.20, range_width=10),
        )),
        clients=2, cold_ops=5, warm_ops=60, backend="sqlite")


def _mixed_oltp_scenario() -> Scenario:
    """The OLTP shape: short traversals interleaved with writes."""
    return Scenario(
        mix=WorkloadMix(name="mixed_oltp", entries=(
            MixEntry("set", weight=0.10, depth=2),
            MixEntry("simple", weight=0.20, depth=2),
            MixEntry("insert", weight=0.15),
            MixEntry("update", weight=0.30),
            MixEntry("delete", weight=0.05),
            MixEntry("range_lookup", weight=0.15, range_width=5),
            MixEntry("sequential_scan", weight=0.05),
        )),
        clients=2, cold_ops=5, warm_ops=60, backend="sqlite")


def _scan_heavy_scenario() -> Scenario:
    """Range- and scan-dominated reporting over a mutating trickle."""
    return Scenario(
        mix=WorkloadMix(name="scan_heavy", entries=(
            MixEntry("range_lookup", weight=0.50, range_width=20),
            MixEntry("sequential_scan", weight=0.30),
            MixEntry("set", weight=0.10, depth=1),
            MixEntry("update", weight=0.10),
        )),
        clients=1, cold_ops=5, warm_ops=40)


def _graph_walk_scenario() -> Scenario:
    """Structure-only graph expansion over the SQLite link index.

    Dominated by ``structure_traversal`` operations, which answer BFS
    frontiers from the ``refs`` table alone — with ``ref_index`` enabled
    the engine never decodes a record body, so this preset is the
    canonical way to exercise (and CI-assert) a non-zero
    ``decodes_avoided`` count."""
    return Scenario(
        mix=WorkloadMix(name="graph_walk", entries=(
            MixEntry("structure_traversal", weight=0.80, depth=5),
            MixEntry("range_lookup", weight=0.15, range_width=10),
            MixEntry("sequential_scan", weight=0.05),
        )),
        clients=1, cold_ops=10, warm_ops=80,
        backend="sqlite", backend_options={"ref_index": True})


def _hot_spot_scenario() -> Scenario:
    """Skewed hot-key traffic composed with uniform background reads.

    The dominant traversal entry carries a *per-entry* DIST5 override
    (Zipf, skew 1.2): its roots concentrate on the low-oid hot set while
    the other entries keep the mix-wide uniform draw.  Run on the
    sharded engine, the hot residue class makes shard-access imbalance
    — ``remote_reads`` off a pinned home shard, per-shard access splits
    — a *measured* property of skew + placement instead of a uniform
    wash (pinned by ``tests/core/test_hot_spot.py``).
    """
    return Scenario(
        mix=WorkloadMix(name="hot_spot", entries=(
            MixEntry("structure_traversal", weight=0.60, depth=4,
                     dist5=ZipfDistribution(skew=1.2)),
            MixEntry("simple", weight=0.25, depth=3),
            MixEntry("range_lookup", weight=0.15, range_width=10),
        )),
        clients=1, cold_ops=10, warm_ops=80,
        backend="sharded-sqlite", backend_options={"shards": 4})


ScenarioFactory = Callable[[], Scenario]

SCENARIO_PRESETS: Dict[str, ScenarioFactory] = {
    "paper_default": _paper_default_scenario,
    "read_heavy": _read_heavy_scenario,
    "write_heavy": _write_heavy_scenario,
    "mixed_oltp": _mixed_oltp_scenario,
    "scan_heavy": _scan_heavy_scenario,
    "graph_walk": _graph_walk_scenario,
    "hot_spot": _hot_spot_scenario,
}


def scenario_preset(name: str) -> Scenario:
    """Instantiate a named scenario; raise ParameterError if unknown."""
    try:
        factory = SCENARIO_PRESETS[name.strip().lower()]
    except KeyError:
        raise ParameterError(
            f"unknown scenario {name!r}; choose from "
            f"{sorted(SCENARIO_PRESETS)}") from None
    return factory()
